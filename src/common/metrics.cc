#include "common/metrics.h"

#include <algorithm>
#include <chrono>

namespace confide::metrics {

// ---------------------------------------------------------------------------
// Histogram
// ---------------------------------------------------------------------------

Histogram::Histogram(std::vector<uint64_t> bounds) : bounds_(std::move(bounds)) {
  if (bounds_.empty()) bounds_ = DefaultLatencyBoundsNs();
  std::sort(bounds_.begin(), bounds_.end());
  bounds_.erase(std::unique(bounds_.begin(), bounds_.end()), bounds_.end());
  buckets_ = std::make_unique<std::atomic<uint64_t>[]>(bounds_.size() + 1);
  for (size_t i = 0; i <= bounds_.size(); ++i) buckets_[i].store(0);
}

void Histogram::Observe(uint64_t value) {
  // First bucket whose (inclusive) upper bound holds the value; past-the-end
  // lands in the overflow bucket.
  size_t index =
      std::lower_bound(bounds_.begin(), bounds_.end(), value) - bounds_.begin();
  buckets_[index].fetch_add(1, std::memory_order_relaxed);
  count_.fetch_add(1, std::memory_order_relaxed);
  sum_.fetch_add(value, std::memory_order_relaxed);
}

std::vector<uint64_t> Histogram::DefaultLatencyBoundsNs() {
  // 1-2-5 ladder from 1 µs to 10 s.
  std::vector<uint64_t> bounds;
  for (uint64_t decade = 1'000; decade <= 1'000'000'000; decade *= 10) {
    bounds.push_back(decade);
    bounds.push_back(2 * decade);
    bounds.push_back(5 * decade);
  }
  bounds.push_back(10'000'000'000ull);
  return bounds;
}

void Histogram::Reset() {
  for (size_t i = 0; i <= bounds_.size(); ++i) {
    buckets_[i].store(0, std::memory_order_relaxed);
  }
  count_.store(0, std::memory_order_relaxed);
  sum_.store(0, std::memory_order_relaxed);
}

// ---------------------------------------------------------------------------
// MetricsRegistry
// ---------------------------------------------------------------------------

MetricsRegistry& MetricsRegistry::Global() {
  static MetricsRegistry* registry = new MetricsRegistry();  // never destroyed
  return *registry;
}

Counter* MetricsRegistry::GetCounter(std::string_view name) {
  std::lock_guard<std::mutex> lock(mutex_);
  if (gauges_.count(std::string(name)) || histograms_.count(std::string(name))) {
    return nullptr;
  }
  auto it = counters_.find(name);
  if (it == counters_.end()) {
    it = counters_.emplace(std::string(name), std::make_unique<Counter>()).first;
  }
  return it->second.get();
}

Gauge* MetricsRegistry::GetGauge(std::string_view name) {
  std::lock_guard<std::mutex> lock(mutex_);
  if (counters_.count(std::string(name)) || histograms_.count(std::string(name))) {
    return nullptr;
  }
  auto it = gauges_.find(name);
  if (it == gauges_.end()) {
    it = gauges_.emplace(std::string(name), std::make_unique<Gauge>()).first;
  }
  return it->second.get();
}

Histogram* MetricsRegistry::GetHistogram(std::string_view name,
                                         std::vector<uint64_t> bounds) {
  std::lock_guard<std::mutex> lock(mutex_);
  if (counters_.count(std::string(name)) || gauges_.count(std::string(name))) {
    return nullptr;
  }
  auto it = histograms_.find(name);
  if (it == histograms_.end()) {
    it = histograms_
             .emplace(std::string(name),
                      std::make_unique<Histogram>(std::move(bounds)))
             .first;
  }
  return it->second.get();
}

MetricsSnapshot MetricsRegistry::Snapshot() const {
  std::lock_guard<std::mutex> lock(mutex_);
  MetricsSnapshot snapshot;
  for (const auto& [name, counter] : counters_) {
    snapshot.counters[name] = counter->Value();
  }
  for (const auto& [name, gauge] : gauges_) {
    snapshot.gauges[name] = gauge->Value();
  }
  for (const auto& [name, histogram] : histograms_) {
    MetricsSnapshot::HistogramData data;
    data.bounds = histogram->bounds();
    data.counts.reserve(data.bounds.size() + 1);
    for (size_t i = 0; i <= data.bounds.size(); ++i) {
      data.counts.push_back(histogram->bucket_count(i));
    }
    data.count = histogram->count();
    data.sum = histogram->sum();
    snapshot.histograms[name] = std::move(data);
  }
  return snapshot;
}

void MetricsRegistry::ResetAll() {
  std::lock_guard<std::mutex> lock(mutex_);
  for (auto& [name, counter] : counters_) counter->Reset();
  for (auto& [name, gauge] : gauges_) gauge->Reset();
  for (auto& [name, histogram] : histograms_) histogram->Reset();
}

// ---------------------------------------------------------------------------
// JSON export
// ---------------------------------------------------------------------------

namespace {

void AppendEscaped(std::string* out, const std::string& s) {
  out->push_back('"');
  for (char c : s) {
    if (c == '"' || c == '\\') out->push_back('\\');
    out->push_back(c);
  }
  out->push_back('"');
}

void AppendU64Array(std::string* out, const std::vector<uint64_t>& values) {
  out->push_back('[');
  for (size_t i = 0; i < values.size(); ++i) {
    if (i) out->push_back(',');
    *out += std::to_string(values[i]);
  }
  out->push_back(']');
}

}  // namespace

std::string MetricsSnapshot::ToJson() const {
  std::string out = "{\n  \"counters\": {";
  bool first = true;
  for (const auto& [name, value] : counters) {
    out += first ? "\n    " : ",\n    ";
    first = false;
    AppendEscaped(&out, name);
    out += ": " + std::to_string(value);
  }
  out += first ? "},\n" : "\n  },\n";
  out += "  \"gauges\": {";
  first = true;
  for (const auto& [name, value] : gauges) {
    out += first ? "\n    " : ",\n    ";
    first = false;
    AppendEscaped(&out, name);
    out += ": " + std::to_string(value);
  }
  out += first ? "},\n" : "\n  },\n";
  out += "  \"histograms\": {";
  first = true;
  for (const auto& [name, data] : histograms) {
    out += first ? "\n    " : ",\n    ";
    first = false;
    AppendEscaped(&out, name);
    out += ": {\"bounds\": ";
    AppendU64Array(&out, data.bounds);
    out += ", \"counts\": ";
    AppendU64Array(&out, data.counts);
    out += ", \"count\": " + std::to_string(data.count);
    out += ", \"sum\": " + std::to_string(data.sum);
    out += "}";
  }
  out += first ? "}\n}\n" : "\n  }\n}\n";
  return out;
}

// ---------------------------------------------------------------------------
// JSON import — a minimal recursive-descent parser covering the subset the
// exporter emits (objects, arrays, integers, escaped strings).
// ---------------------------------------------------------------------------

namespace {

class JsonCursor {
 public:
  explicit JsonCursor(std::string_view text) : text_(text) {}

  void SkipWs() {
    while (pos_ < text_.size() &&
           (text_[pos_] == ' ' || text_[pos_] == '\n' || text_[pos_] == '\t' ||
            text_[pos_] == '\r')) {
      ++pos_;
    }
  }

  bool Consume(char c) {
    SkipWs();
    if (pos_ < text_.size() && text_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }

  bool Peek(char c) {
    SkipWs();
    return pos_ < text_.size() && text_[pos_] == c;
  }

  Result<std::string> ParseString() {
    if (!Consume('"')) return Status::Corruption("metrics json: expected string");
    std::string out;
    while (pos_ < text_.size() && text_[pos_] != '"') {
      char c = text_[pos_++];
      if (c == '\\' && pos_ < text_.size()) c = text_[pos_++];
      out.push_back(c);
    }
    if (!Consume('"')) return Status::Corruption("metrics json: unterminated string");
    return out;
  }

  Result<int64_t> ParseInt() {
    SkipWs();
    bool negative = false;
    if (pos_ < text_.size() && text_[pos_] == '-') {
      negative = true;
      ++pos_;
    }
    if (pos_ >= text_.size() || text_[pos_] < '0' || text_[pos_] > '9') {
      return Status::Corruption("metrics json: expected number");
    }
    uint64_t magnitude = 0;
    while (pos_ < text_.size() && text_[pos_] >= '0' && text_[pos_] <= '9') {
      magnitude = magnitude * 10 + uint64_t(text_[pos_++] - '0');
    }
    return negative ? -int64_t(magnitude) : int64_t(magnitude);
  }

  Result<uint64_t> ParseU64() {
    CONFIDE_ASSIGN_OR_RETURN(int64_t value, ParseInt());
    return uint64_t(value);
  }

  Result<std::vector<uint64_t>> ParseU64Array() {
    if (!Consume('[')) return Status::Corruption("metrics json: expected array");
    std::vector<uint64_t> values;
    if (Consume(']')) return values;
    do {
      CONFIDE_ASSIGN_OR_RETURN(uint64_t value, ParseU64());
      values.push_back(value);
    } while (Consume(','));
    if (!Consume(']')) return Status::Corruption("metrics json: unterminated array");
    return values;
  }

 private:
  std::string_view text_;
  size_t pos_ = 0;
};

Status ParseHistogramBody(JsonCursor* cur, MetricsSnapshot::HistogramData* out) {
  if (!cur->Consume('{')) return Status::Corruption("metrics json: expected object");
  if (cur->Consume('}')) return Status::OK();
  do {
    CONFIDE_ASSIGN_OR_RETURN(std::string field, cur->ParseString());
    if (!cur->Consume(':')) return Status::Corruption("metrics json: expected ':'");
    if (field == "bounds") {
      CONFIDE_ASSIGN_OR_RETURN(out->bounds, cur->ParseU64Array());
    } else if (field == "counts") {
      CONFIDE_ASSIGN_OR_RETURN(out->counts, cur->ParseU64Array());
    } else if (field == "count") {
      CONFIDE_ASSIGN_OR_RETURN(out->count, cur->ParseU64());
    } else if (field == "sum") {
      CONFIDE_ASSIGN_OR_RETURN(out->sum, cur->ParseU64());
    } else {
      return Status::Corruption("metrics json: unknown histogram field " + field);
    }
  } while (cur->Consume(','));
  if (!cur->Consume('}')) return Status::Corruption("metrics json: unterminated object");
  return Status::OK();
}

}  // namespace

Result<MetricsSnapshot> MetricsSnapshot::FromJson(std::string_view json) {
  JsonCursor cur(json);
  MetricsSnapshot snapshot;
  if (!cur.Consume('{')) return Status::Corruption("metrics json: expected '{'");
  if (cur.Consume('}')) return snapshot;
  do {
    CONFIDE_ASSIGN_OR_RETURN(std::string section, cur.ParseString());
    if (!cur.Consume(':')) return Status::Corruption("metrics json: expected ':'");
    if (!cur.Consume('{')) return Status::Corruption("metrics json: expected '{'");
    if (cur.Consume('}')) continue;
    do {
      CONFIDE_ASSIGN_OR_RETURN(std::string name, cur.ParseString());
      if (!cur.Consume(':')) return Status::Corruption("metrics json: expected ':'");
      if (section == "counters") {
        CONFIDE_ASSIGN_OR_RETURN(snapshot.counters[name], cur.ParseU64());
      } else if (section == "gauges") {
        CONFIDE_ASSIGN_OR_RETURN(snapshot.gauges[name], cur.ParseInt());
      } else if (section == "histograms") {
        CONFIDE_RETURN_NOT_OK(
            ParseHistogramBody(&cur, &snapshot.histograms[name]));
      } else {
        return Status::Corruption("metrics json: unknown section " + section);
      }
    } while (cur.Consume(','));
    if (!cur.Consume('}')) return Status::Corruption("metrics json: unterminated object");
  } while (cur.Consume(','));
  if (!cur.Consume('}')) return Status::Corruption("metrics json: expected '}'");
  return snapshot;
}

// ---------------------------------------------------------------------------
// ScopedLatencyTimer
// ---------------------------------------------------------------------------

namespace {
uint64_t WallNowNs() {
  return uint64_t(std::chrono::duration_cast<std::chrono::nanoseconds>(
                      std::chrono::steady_clock::now().time_since_epoch())
                      .count());
}
}  // namespace

ScopedLatencyTimer::ScopedLatencyTimer(Histogram* histogram)
    : histogram_(histogram), start_ns_(WallNowNs()) {}

ScopedLatencyTimer::~ScopedLatencyTimer() {
  if (histogram_ != nullptr) histogram_->Observe(WallNowNs() - start_ns_);
}

}  // namespace confide::metrics
