#include "common/crc32.h"

#include <array>

namespace confide {

namespace {

std::array<uint32_t, 256> BuildTable() {
  std::array<uint32_t, 256> table;
  for (uint32_t i = 0; i < 256; ++i) {
    uint32_t crc = i;
    for (int bit = 0; bit < 8; ++bit) {
      crc = (crc & 1) ? (crc >> 1) ^ 0xEDB88320u : crc >> 1;
    }
    table[i] = crc;
  }
  return table;
}

}  // namespace

uint32_t Crc32(ByteView data, uint32_t seed) {
  static const std::array<uint32_t, 256> kTable = BuildTable();
  uint32_t crc = ~seed;
  for (uint8_t byte : data) {
    crc = kTable[(crc ^ byte) & 0xff] ^ (crc >> 8);
  }
  return ~crc;
}

}  // namespace confide
