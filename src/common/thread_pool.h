/// \file thread_pool.h
/// \brief Reusable work-stealing thread pool shared by the block pipeline
/// and the parallel executor/pre-verifier (replaces the per-block
/// `std::vector<std::thread>` spawns).
///
/// Each worker owns a deque: the owner pops from the front, idle workers
/// steal from the back of their neighbours. Submissions round-robin
/// across the deques so independent long-running tasks (pipeline stages)
/// spread out while short helper tasks stay stealable.
///
/// Deadlock freedom: `RunOnWorkers` always runs the function inline on
/// the calling thread in addition to the pool helpers, and only waits
/// for helpers that actually *started*. A fully saturated pool therefore
/// degrades to inline execution instead of blocking — safe to call from
/// inside a pool task (the pipeline's pre-verify stage does exactly
/// that).

#pragma once

#include <atomic>
#include <condition_variable>
#include <deque>
#include <functional>
#include <future>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

namespace confide {

class ThreadPool {
 public:
  /// \brief Starts `workers` threads (at least 1).
  explicit ThreadPool(uint32_t workers);

  /// \brief Drains every queued task, then joins the workers. Work
  /// submitted before destruction is guaranteed to run.
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// \brief Enqueues `fn`; the future completes when it ran (and carries
  /// any exception it threw).
  std::future<void> Submit(std::function<void()> fn);

  /// \brief Runs `fn` on up to `helpers` pool workers *and* inline on the
  /// calling thread; returns when the inline run and every helper that
  /// started have finished. Helpers that never got a worker are cancelled.
  /// The first exception thrown (inline run preferred) is rethrown.
  void RunOnWorkers(uint32_t helpers, const std::function<void()>& fn);

  uint32_t worker_count() const { return uint32_t(workers_.size()); }

 private:
  struct WorkQueue {
    std::mutex mu;
    std::deque<std::packaged_task<void()>> tasks;
  };

  void WorkerLoop(size_t self);
  /// \brief Pops own front or steals a neighbour's back; runs one task.
  bool TryRunOne(size_t self);

  std::vector<std::unique_ptr<WorkQueue>> queues_;
  std::vector<std::thread> workers_;
  std::mutex wake_mu_;
  std::condition_variable wake_cv_;
  std::atomic<size_t> next_queue_{0};
  std::atomic<size_t> pending_{0};  ///< queued, not yet popped
  bool stopping_ = false;           ///< guarded by wake_mu_
};

}  // namespace confide
