#include "common/fault.h"

#include "common/metrics.h"

namespace confide::fault {

namespace {

/// splitmix64: tiny, deterministic, and dependency-free (the common
/// library sits below crypto, so Drbg is unavailable here). Quality is
/// more than enough for fire/no-fire draws.
uint64_t SplitMix64(uint64_t* state) {
  uint64_t z = (*state += 0x9e3779b97f4a7c15ull);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
  return z ^ (z >> 31);
}

metrics::Counter* SiteCounter(std::string_view site, const char* suffix) {
  return metrics::GetCounter(std::string(site) + suffix);
}

}  // namespace

FaultInjector& FaultInjector::Global() {
  static FaultInjector* injector = new FaultInjector();
  return *injector;
}

void FaultInjector::Seed(uint64_t seed) {
  std::lock_guard<std::mutex> lock(mutex_);
  rng_state_ = seed ^ 0x9e3779b97f4a7c15ull;
}

void FaultInjector::Arm(const std::string& site, Trigger trigger) {
  std::lock_guard<std::mutex> lock(mutex_);
  Site& s = sites_[site];
  if (!s.armed) armed_count_.fetch_add(1, std::memory_order_relaxed);
  s.trigger = trigger;
  s.armed = true;
  s.hits = 0;
  s.fired = 0;
}

void FaultInjector::Disarm(const std::string& site) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = sites_.find(site);
  if (it != sites_.end() && it->second.armed) {
    it->second.armed = false;
    armed_count_.fetch_sub(1, std::memory_order_relaxed);
  }
}

void FaultInjector::DisarmAll() {
  std::lock_guard<std::mutex> lock(mutex_);
  sites_.clear();
  armed_count_.store(0, std::memory_order_relaxed);
}

bool FaultInjector::ShouldFail(std::string_view site, uint64_t* arg_out) {
  // Production fast path: nothing armed anywhere.
  if (armed_count_.load(std::memory_order_relaxed) == 0) return false;

  std::lock_guard<std::mutex> lock(mutex_);
  auto it = sites_.find(site);
  if (it == sites_.end() || !it->second.armed) return false;
  Site& s = it->second;
  ++s.hits;
  if (s.hits <= s.trigger.after_hits) return false;
  if (s.trigger.probability < 1.0) {
    // Draw in [0, 1) with 53-bit resolution.
    double draw = double(SplitMix64(&rng_state_) >> 11) * 0x1.0p-53;
    if (draw >= s.trigger.probability) return false;
  }
  ++s.fired;
  if (s.trigger.one_shot) {
    s.armed = false;
    armed_count_.fetch_sub(1, std::memory_order_relaxed);
  }
  if (arg_out != nullptr) *arg_out = s.trigger.arg;
  SiteCounter(site, ".injected")->Increment();
  return true;
}

uint64_t FaultInjector::HitCount(const std::string& site) const {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = sites_.find(site);
  return it == sites_.end() ? 0 : it->second.hits;
}

uint64_t FaultInjector::FiredCount(const std::string& site) const {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = sites_.find(site);
  return it == sites_.end() ? 0 : it->second.fired;
}

void NoteInjected(std::string_view site) {
  SiteCounter(site, ".injected")->Increment();
}

void NoteRecovered(std::string_view site) {
  SiteCounter(site, ".recovered")->Increment();
}

}  // namespace confide::fault
