/// \file bytes.h
/// \brief Byte-buffer aliases and hex/concat helpers used across the library.

#pragma once

#include <cstdint>
#include <cstring>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "common/status.h"

namespace confide {

/// \brief Owning byte buffer.
using Bytes = std::vector<uint8_t>;

/// \brief Non-owning read-only view of bytes.
using ByteView = std::span<const uint8_t>;

/// \brief Builds an owning buffer from a view.
inline Bytes ToBytes(ByteView v) { return Bytes(v.begin(), v.end()); }

/// \brief Builds an owning buffer from a string's bytes.
inline Bytes ToBytes(std::string_view s) {
  return Bytes(s.begin(), s.end());
}

/// \brief Interprets a byte buffer as a string (copy).
inline std::string ToString(ByteView v) {
  return std::string(reinterpret_cast<const char*>(v.data()), v.size());
}

/// \brief Views a string's bytes without copying.
inline ByteView AsByteView(std::string_view s) {
  return ByteView(reinterpret_cast<const uint8_t*>(s.data()), s.size());
}

/// \brief Appends `src` to `dst`.
inline void Append(Bytes* dst, ByteView src) {
  dst->insert(dst->end(), src.begin(), src.end());
}

/// \brief Concatenates any number of byte views.
template <typename... Views>
Bytes Concat(const Views&... views) {
  Bytes out;
  size_t total = (static_cast<size_t>(0) + ... + ByteView(views).size());
  out.reserve(total);
  (Append(&out, ByteView(views)), ...);
  return out;
}

/// \brief Lower-case hex encoding.
std::string HexEncode(ByteView data);

/// \brief Decodes hex (with optional "0x" prefix); rejects odd length and
/// non-hex characters.
Result<Bytes> HexDecode(std::string_view hex);

/// \brief Constant-time equality for secrets (length leak only).
bool ConstantTimeEqual(ByteView a, ByteView b);

/// \brief Best-effort zeroization that the optimizer cannot elide.
void SecureZero(uint8_t* data, size_t len);
inline void SecureZero(Bytes* b) { SecureZero(b->data(), b->size()); }

}  // namespace confide
