/// \file crc32.h
/// \brief CRC-32 (IEEE 802.3) used for WAL record integrity.

#pragma once

#include <cstdint>

#include "common/bytes.h"

namespace confide {

/// \brief Computes the CRC-32 of `data` with optional chaining seed.
uint32_t Crc32(ByteView data, uint32_t seed = 0);

}  // namespace confide
