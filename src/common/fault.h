/// \file fault.h
/// \brief Deterministic, seeded fault injection for chaos testing.
///
/// Every layer of the system declares named *fault sites* — fixed points
/// where an artificial failure can be injected (a torn WAL write, a
/// dropped PBFT message, an enclave crash). Sites follow the naming
/// convention `fault.<layer>.<event>` (DESIGN.md §Fault injection). In
/// production nothing is armed and a site check is one relaxed atomic
/// load; tests arm sites through a scoped FaultPlan with per-site
/// triggers (probability, one-shot, nth-hit) driven by a seeded PRNG so
/// every chaos run replays bit-identically for a fixed seed.
///
/// Observability: each fired injection increments the registry counter
/// `<site>.injected`; recovery paths report `<site>.recovered` — so
/// `metrics.json` shows exactly which faults a run survived.

#pragma once

#include <atomic>
#include <cstdint>
#include <map>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

#include "common/status.h"

namespace confide::fault {

/// \brief When an armed site fires. Fields compose: the site must first
/// survive `after_hits` hits, then fires with `probability` per hit, and
/// disarms after the first fire when `one_shot` is set.
struct Trigger {
  /// Chance of firing per eligible hit, in [0, 1]. 1.0 = always.
  double probability = 1.0;
  /// Number of initial hits that can never fire (nth-hit triggers:
  /// `after_hits = n - 1` fires on the nth hit at probability 1).
  uint64_t after_hits = 0;
  /// Disarm the site after its first fire.
  bool one_shot = false;
  /// Site-interpreted parameter, e.g. how many bytes of a WAL record to
  /// persist before the injected crash.
  uint64_t arg = 0;
};

/// \brief Process-wide injector. Thread-safe; the unarmed fast path is a
/// single relaxed atomic load.
class FaultInjector {
 public:
  /// \brief The process-wide instance every fault site consults.
  static FaultInjector& Global();

  /// \brief Reseeds the PRNG driving probabilistic triggers. Chaos runs
  /// call this once up front so the whole run is a pure function of the
  /// seed.
  void Seed(uint64_t seed);

  /// \brief Arms (or re-arms) `site` with `trigger`. Resets the site's
  /// hit/fire counts.
  void Arm(const std::string& site, Trigger trigger);

  /// \brief Disarms one site (its counters are kept for inspection).
  void Disarm(const std::string& site);

  /// \brief Disarms every site and drops all per-site counters.
  void DisarmAll();

  /// \brief Called by instrumented code at a fault site. Counts a hit
  /// and returns true when the armed trigger fires; `arg_out` (optional)
  /// receives the trigger's `arg`. Unarmed sites never fire.
  bool ShouldFail(std::string_view site, uint64_t* arg_out = nullptr);

  uint64_t HitCount(const std::string& site) const;
  uint64_t FiredCount(const std::string& site) const;

  /// \brief True when at least one site is armed (tests).
  bool AnyArmed() const {
    return armed_count_.load(std::memory_order_relaxed) != 0;
  }

 private:
  FaultInjector() = default;

  struct Site {
    Trigger trigger;
    bool armed = false;
    uint64_t hits = 0;
    uint64_t fired = 0;
  };

  mutable std::mutex mutex_;
  std::map<std::string, Site, std::less<>> sites_;
  std::atomic<uint64_t> armed_count_{0};
  uint64_t rng_state_ = 0x9e3779b97f4a7c15ull;  // splitmix64 state
};

/// \brief Scoped arming for tests: arms sites on construction/Arm() and
/// disarms everything at scope exit, so a failing test cannot leak armed
/// faults into the next one.
class FaultPlan {
 public:
  explicit FaultPlan(uint64_t seed) { FaultInjector::Global().Seed(seed); }
  ~FaultPlan() { FaultInjector::Global().DisarmAll(); }
  FaultPlan(const FaultPlan&) = delete;
  FaultPlan& operator=(const FaultPlan&) = delete;

  FaultPlan& Arm(const std::string& site, Trigger trigger = Trigger{}) {
    FaultInjector::Global().Arm(site, trigger);
    return *this;
  }

  FaultPlan& Disarm(const std::string& site) {
    FaultInjector::Global().Disarm(site);
    return *this;
  }
};

/// \brief Records an injected fault that came from explicit model
/// configuration rather than an armed site (e.g. a PBFT replica declared
/// crashed in a PbftFaultModel). Increments `<site>.injected`.
void NoteInjected(std::string_view site);

/// \brief Records that the system recovered from a fault at `site`
/// (view-change completed, WAL replay survived a torn record, enclave
/// re-provisioned). Increments `<site>.recovered`.
void NoteRecovered(std::string_view site);

}  // namespace confide::fault
