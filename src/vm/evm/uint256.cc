#include "vm/evm/uint256.h"

#include <cstring>

#include "common/endian.h"

namespace confide::vm::evm {

U256 U256::FromBytesBe(ByteView bytes) {
  U256 out;
  size_t n = std::min<size_t>(bytes.size(), 32);
  // Right-align: the last byte of input is the least significant.
  for (size_t i = 0; i < n; ++i) {
    uint8_t byte = bytes[bytes.size() - 1 - i];
    out.limb[i / 8] |= uint64_t(byte) << (8 * (i % 8));
  }
  return out;
}

void U256::ToBytesBe(uint8_t out[32]) const {
  for (int i = 0; i < 4; ++i) StoreBe64(out + 8 * i, limb[3 - i]);
}

Bytes U256::ToBytes() const {
  Bytes out(32);
  ToBytesBe(out.data());
  return out;
}

std::string U256::ToHex() const {
  Bytes b = ToBytes();
  return "0x" + HexEncode(b);
}

int Cmp(const U256& a, const U256& b) {
  for (int i = 3; i >= 0; --i) {
    if (a.limb[i] < b.limb[i]) return -1;
    if (a.limb[i] > b.limb[i]) return 1;
  }
  return 0;
}

bool SLt(const U256& a, const U256& b) {
  bool a_neg = a.Bit(255);
  bool b_neg = b.Bit(255);
  if (a_neg != b_neg) return a_neg;
  return Lt(a, b);
}

U256 Add(const U256& a, const U256& b) {
  U256 r;
  unsigned __int128 carry = 0;
  for (int i = 0; i < 4; ++i) {
    unsigned __int128 s = (unsigned __int128)a.limb[i] + b.limb[i] + carry;
    r.limb[i] = uint64_t(s);
    carry = s >> 64;
  }
  return r;
}

U256 Sub(const U256& a, const U256& b) {
  U256 r;
  unsigned __int128 borrow = 0;
  for (int i = 0; i < 4; ++i) {
    unsigned __int128 d = (unsigned __int128)a.limb[i] - b.limb[i] - borrow;
    r.limb[i] = uint64_t(d);
    borrow = (d >> 64) & 1;
  }
  return r;
}

U256 Mul(const U256& a, const U256& b) {
  U256 r;
  for (int i = 0; i < 4; ++i) {
    unsigned __int128 carry = 0;
    for (int j = 0; i + j < 4; ++j) {
      unsigned __int128 cur = (unsigned __int128)a.limb[i] * b.limb[j] +
                              r.limb[i + j] + carry;
      r.limb[i + j] = uint64_t(cur);
      carry = cur >> 64;
    }
  }
  return r;
}

namespace {

// Shift-subtract long division; returns quotient, sets *rem.
U256 DivMod(const U256& a, const U256& b, U256* rem) {
  U256 quotient;
  U256 remainder;
  if (b.IsZero()) {
    *rem = U256();
    return U256();  // EVM: division by zero yields zero
  }
  for (int i = 255; i >= 0; --i) {
    remainder = Shl(remainder, 1);
    if (a.Bit(unsigned(i))) remainder.limb[0] |= 1;
    if (Cmp(remainder, b) >= 0) {
      remainder = Sub(remainder, b);
      quotient.limb[i >> 6] |= uint64_t(1) << (i & 63);
    }
  }
  *rem = remainder;
  return quotient;
}

}  // namespace

U256 Div(const U256& a, const U256& b) {
  U256 rem;
  return DivMod(a, b, &rem);
}

U256 Mod(const U256& a, const U256& b) {
  U256 rem;
  DivMod(a, b, &rem);
  return rem;
}

U256 SDiv(const U256& a, const U256& b) {
  if (b.IsZero()) return U256();
  bool a_neg = a.Bit(255);
  bool b_neg = b.Bit(255);
  U256 ua = a_neg ? Neg(a) : a;
  U256 ub = b_neg ? Neg(b) : b;
  U256 q = Div(ua, ub);
  return (a_neg != b_neg) ? Neg(q) : q;
}

U256 SMod(const U256& a, const U256& b) {
  if (b.IsZero()) return U256();
  bool a_neg = a.Bit(255);
  U256 ua = a_neg ? Neg(a) : a;
  U256 ub = b.Bit(255) ? Neg(b) : b;
  U256 r = Mod(ua, ub);
  return a_neg ? Neg(r) : r;
}

U256 And(const U256& a, const U256& b) {
  U256 r;
  for (int i = 0; i < 4; ++i) r.limb[i] = a.limb[i] & b.limb[i];
  return r;
}

U256 Or(const U256& a, const U256& b) {
  U256 r;
  for (int i = 0; i < 4; ++i) r.limb[i] = a.limb[i] | b.limb[i];
  return r;
}

U256 Xor(const U256& a, const U256& b) {
  U256 r;
  for (int i = 0; i < 4; ++i) r.limb[i] = a.limb[i] ^ b.limb[i];
  return r;
}

U256 Not(const U256& a) {
  U256 r;
  for (int i = 0; i < 4; ++i) r.limb[i] = ~a.limb[i];
  return r;
}

U256 Neg(const U256& a) { return Add(Not(a), U256(1)); }

U256 Shl(const U256& a, uint64_t shift) {
  if (shift >= 256) return U256();
  U256 r;
  uint64_t limb_shift = shift / 64;
  uint64_t bit_shift = shift % 64;
  for (int i = 3; i >= 0; --i) {
    uint64_t v = 0;
    int src = i - int(limb_shift);
    if (src >= 0) {
      v = a.limb[src] << bit_shift;
      if (bit_shift != 0 && src - 1 >= 0) {
        v |= a.limb[src - 1] >> (64 - bit_shift);
      }
    }
    r.limb[i] = v;
  }
  return r;
}

U256 Shr(const U256& a, uint64_t shift) {
  if (shift >= 256) return U256();
  U256 r;
  uint64_t limb_shift = shift / 64;
  uint64_t bit_shift = shift % 64;
  for (int i = 0; i < 4; ++i) {
    uint64_t v = 0;
    int src = i + int(limb_shift);
    if (src <= 3) {
      v = a.limb[src] >> bit_shift;
      if (bit_shift != 0 && src + 1 <= 3) {
        v |= a.limb[src + 1] << (64 - bit_shift);
      }
    }
    r.limb[i] = v;
  }
  return r;
}

U256 Sar(const U256& a, uint64_t shift) {
  bool neg = a.Bit(255);
  if (shift >= 256) {
    return neg ? Not(U256()) : U256();
  }
  U256 r = Shr(a, shift);
  if (neg && shift > 0) {
    // Fill the vacated high bits with ones.
    U256 mask = Shl(Not(U256()), 256 - shift);
    r = Or(r, mask);
  }
  return r;
}

U256 SignExtend(uint64_t byte_index, const U256& a) {
  if (byte_index >= 31) return a;
  unsigned sign_bit = unsigned(byte_index * 8 + 7);
  if (!a.Bit(sign_bit)) {
    // Clear everything above the sign bit.
    U256 mask = Sub(Shl(U256(1), sign_bit + 1), U256(1));
    return And(a, mask);
  }
  U256 ones = Shl(Not(U256()), sign_bit + 1);
  return Or(a, ones);
}

uint64_t ByteAt(const U256& a, uint64_t i) {
  if (i >= 32) return 0;
  uint8_t bytes[32];
  a.ToBytesBe(bytes);
  return bytes[i];
}

}  // namespace confide::vm::evm
