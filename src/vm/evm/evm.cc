#include "vm/evm/evm.h"

#include <cstring>

#include "common/endian.h"
#include "crypto/keccak.h"
#include "crypto/sha256.h"

namespace confide::vm::evm {

// ---------------------------------------------------------------------------
// Assembler
// ---------------------------------------------------------------------------

EvmAssembler& EvmAssembler::Push(const U256& value) {
  Bytes be = value.ToBytes();
  size_t first = 0;
  while (first < 31 && be[first] == 0) ++first;
  size_t n = 32 - first;
  code_.push_back(uint8_t(OP_PUSH1 + n - 1));
  code_.insert(code_.end(), be.begin() + first, be.end());
  return *this;
}

EvmAssembler& EvmAssembler::PushLabel(Label label) {
  code_.push_back(OP_PUSH1 + 1);  // PUSH2
  fixups_.push_back({code_.size(), label});
  code_.push_back(0);
  code_.push_back(0);
  return *this;
}

Result<Bytes> EvmAssembler::Finish() {
  for (const Fixup& fixup : fixups_) {
    size_t target = label_offsets_[fixup.label];
    if (target == kUnbound) {
      return Status::InvalidArgument("evm asm: unbound label");
    }
    if (target > 0xffff) {
      return Status::OutOfRange("evm asm: code exceeds PUSH2 addressing");
    }
    code_[fixup.code_offset] = uint8_t(target >> 8);
    code_[fixup.code_offset + 1] = uint8_t(target);
  }
  return code_;
}

// ---------------------------------------------------------------------------
// Interpreter
// ---------------------------------------------------------------------------

namespace {

/// Shaped Istanbul-style gas costs.
struct Gas {
  static constexpr uint64_t kVeryLow = 3;
  static constexpr uint64_t kLow = 5;
  static constexpr uint64_t kMid = 8;
  static constexpr uint64_t kJumpdest = 1;
  static constexpr uint64_t kSha3 = 30;
  static constexpr uint64_t kSha3Word = 6;
  static constexpr uint64_t kSload = 800;
  static constexpr uint64_t kSstoreSet = 20000;
  static constexpr uint64_t kSstoreReset = 5000;
  static constexpr uint64_t kLog = 375;
  static constexpr uint64_t kXcall = 700;
  static constexpr uint64_t kMemWord = 3;
  static constexpr uint64_t kCopyWord = 3;
};

std::vector<bool> ScanJumpdests(ByteView code) {
  std::vector<bool> valid(code.size(), false);
  for (size_t pc = 0; pc < code.size();) {
    uint8_t op = code[pc];
    if (op == OP_JUMPDEST) valid[pc] = true;
    if (op >= OP_PUSH1 && op <= OP_PUSH1 + 31) {
      pc += size_t(op - OP_PUSH1 + 1) + 1;
    } else {
      ++pc;
    }
  }
  return valid;
}

struct EvmState {
  std::vector<U256> stack;
  std::vector<uint8_t> memory;
  uint64_t gas = 0;
  uint64_t gas_limit = 0;
  uint64_t mem_words_charged = 0;

  Status ChargeGas(uint64_t amount) {
    gas += amount;
    if (gas > gas_limit) return Status::ResourceExhausted("evm: out of gas");
    return Status::OK();
  }

  // Memory expansion with linear + quadratic cost, per yellow paper shape.
  Status TouchMemory(uint64_t offset, uint64_t len) {
    if (len == 0) return Status::OK();
    uint64_t end = offset + len;
    if (end < offset || end > (64u << 20)) {
      return Status::VmTrap("evm: memory limit exceeded");
    }
    uint64_t words = (end + 31) / 32;
    if (words > mem_words_charged) {
      uint64_t new_cost = Gas::kMemWord * words + words * words / 512;
      uint64_t old_cost =
          Gas::kMemWord * mem_words_charged +
          mem_words_charged * mem_words_charged / 512;
      CONFIDE_RETURN_NOT_OK(ChargeGas(new_cost - old_cost));
      mem_words_charged = words;
      memory.resize(words * 32, 0);
    }
    return Status::OK();
  }

  Status Pop(U256* out) {
    if (stack.empty()) return Status::VmTrap("evm: stack underflow");
    *out = stack.back();
    stack.pop_back();
    return Status::OK();
  }

  Status Push(U256 v) {
    if (stack.size() >= 1024) return Status::VmTrap("evm: stack overflow");
    stack.push_back(v);
    return Status::OK();
  }
};

// Word-granular byte-range storage: base slot = keccak(key), length slot =
// keccak(key || "len"). This loops through the same SLOAD/SSTORE host path
// a Solidity `bytes` value would.
Bytes SlotKey(const U256& slot) { return slot.ToBytes(); }

U256 SlotOf(ByteView key, const char* salt) {
  crypto::Keccak256 ctx;
  ctx.Update(key);
  ctx.Update(AsByteView(salt));
  crypto::Hash256 h = ctx.Finish();
  return U256::FromBytesBe(crypto::HashView(h));
}

}  // namespace

Result<ExecutionResult> EvmVm::Execute(ByteView code, ByteView input,
                                       HostEnv* env, const ExecConfig& config) const {
  std::vector<bool> jumpdests = ScanJumpdests(code);
  EvmState st;
  st.gas_limit = config.gas_limit;
  st.stack.reserve(128);
  uint64_t instructions = 0;
  Bytes output;

  auto sload_word = [&](const U256& slot) -> Result<U256> {
    CONFIDE_RETURN_NOT_OK(st.ChargeGas(Gas::kSload));
    auto value = env->GetStorage(SlotKey(slot));
    if (!value.ok()) {
      if (value.status().IsNotFound()) return U256();
      return value.status();
    }
    return U256::FromBytesBe(*value);
  };
  auto sstore_word = [&](const U256& slot, const U256& value) -> Status {
    CONFIDE_RETURN_NOT_OK(st.ChargeGas(Gas::kSstoreReset));
    return env->SetStorage(SlotKey(slot), value.ToBytes());
  };

  for (size_t pc = 0; pc < code.size();) {
    uint8_t op = code[pc];
    ++instructions;
    ++pc;

    // PUSH family.
    if (op >= OP_PUSH1 && op <= OP_PUSH1 + 31) {
      CONFIDE_RETURN_NOT_OK(st.ChargeGas(Gas::kVeryLow));
      size_t n = size_t(op - OP_PUSH1) + 1;
      if (pc + n > code.size()) return Status::VmTrap("evm: truncated push");
      CONFIDE_RETURN_NOT_OK(st.Push(U256::FromBytesBe(code.subspan(pc, n))));
      pc += n;
      continue;
    }
    // DUP family.
    if (op >= OP_DUP1 && op <= OP_DUP1 + 15) {
      CONFIDE_RETURN_NOT_OK(st.ChargeGas(Gas::kVeryLow));
      size_t n = size_t(op - OP_DUP1) + 1;
      if (st.stack.size() < n) return Status::VmTrap("evm: stack underflow");
      CONFIDE_RETURN_NOT_OK(st.Push(st.stack[st.stack.size() - n]));
      continue;
    }
    // SWAP family.
    if (op >= OP_SWAP1 && op <= OP_SWAP1 + 15) {
      CONFIDE_RETURN_NOT_OK(st.ChargeGas(Gas::kVeryLow));
      size_t n = size_t(op - OP_SWAP1) + 1;
      if (st.stack.size() < n + 1) return Status::VmTrap("evm: stack underflow");
      std::swap(st.stack.back(), st.stack[st.stack.size() - 1 - n]);
      continue;
    }

    U256 a, b, c;
    switch (op) {
      case OP_STOP:
        pc = code.size();
        break;
      case OP_ADD:
        CONFIDE_RETURN_NOT_OK(st.ChargeGas(Gas::kVeryLow));
        CONFIDE_RETURN_NOT_OK(st.Pop(&a));
        CONFIDE_RETURN_NOT_OK(st.Pop(&b));
        CONFIDE_RETURN_NOT_OK(st.Push(Add(a, b)));
        break;
      case OP_MUL:
        CONFIDE_RETURN_NOT_OK(st.ChargeGas(Gas::kLow));
        CONFIDE_RETURN_NOT_OK(st.Pop(&a));
        CONFIDE_RETURN_NOT_OK(st.Pop(&b));
        CONFIDE_RETURN_NOT_OK(st.Push(Mul(a, b)));
        break;
      case OP_SUB:
        CONFIDE_RETURN_NOT_OK(st.ChargeGas(Gas::kVeryLow));
        CONFIDE_RETURN_NOT_OK(st.Pop(&a));
        CONFIDE_RETURN_NOT_OK(st.Pop(&b));
        CONFIDE_RETURN_NOT_OK(st.Push(Sub(a, b)));
        break;
      case OP_DIV:
        CONFIDE_RETURN_NOT_OK(st.ChargeGas(Gas::kLow));
        CONFIDE_RETURN_NOT_OK(st.Pop(&a));
        CONFIDE_RETURN_NOT_OK(st.Pop(&b));
        CONFIDE_RETURN_NOT_OK(st.Push(Div(a, b)));
        break;
      case OP_SDIV:
        CONFIDE_RETURN_NOT_OK(st.ChargeGas(Gas::kLow));
        CONFIDE_RETURN_NOT_OK(st.Pop(&a));
        CONFIDE_RETURN_NOT_OK(st.Pop(&b));
        CONFIDE_RETURN_NOT_OK(st.Push(SDiv(a, b)));
        break;
      case OP_MOD:
        CONFIDE_RETURN_NOT_OK(st.ChargeGas(Gas::kLow));
        CONFIDE_RETURN_NOT_OK(st.Pop(&a));
        CONFIDE_RETURN_NOT_OK(st.Pop(&b));
        CONFIDE_RETURN_NOT_OK(st.Push(Mod(a, b)));
        break;
      case OP_SMOD:
        CONFIDE_RETURN_NOT_OK(st.ChargeGas(Gas::kLow));
        CONFIDE_RETURN_NOT_OK(st.Pop(&a));
        CONFIDE_RETURN_NOT_OK(st.Pop(&b));
        CONFIDE_RETURN_NOT_OK(st.Push(SMod(a, b)));
        break;
      case OP_SIGNEXTEND:
        CONFIDE_RETURN_NOT_OK(st.ChargeGas(Gas::kLow));
        CONFIDE_RETURN_NOT_OK(st.Pop(&a));
        CONFIDE_RETURN_NOT_OK(st.Pop(&b));
        CONFIDE_RETURN_NOT_OK(st.Push(SignExtend(a.AsU64(), b)));
        break;
      case OP_LT:
        CONFIDE_RETURN_NOT_OK(st.ChargeGas(Gas::kVeryLow));
        CONFIDE_RETURN_NOT_OK(st.Pop(&a));
        CONFIDE_RETURN_NOT_OK(st.Pop(&b));
        CONFIDE_RETURN_NOT_OK(st.Push(U256(Lt(a, b) ? 1 : 0)));
        break;
      case OP_GT:
        CONFIDE_RETURN_NOT_OK(st.ChargeGas(Gas::kVeryLow));
        CONFIDE_RETURN_NOT_OK(st.Pop(&a));
        CONFIDE_RETURN_NOT_OK(st.Pop(&b));
        CONFIDE_RETURN_NOT_OK(st.Push(U256(Lt(b, a) ? 1 : 0)));
        break;
      case OP_SLT:
        CONFIDE_RETURN_NOT_OK(st.ChargeGas(Gas::kVeryLow));
        CONFIDE_RETURN_NOT_OK(st.Pop(&a));
        CONFIDE_RETURN_NOT_OK(st.Pop(&b));
        CONFIDE_RETURN_NOT_OK(st.Push(U256(SLt(a, b) ? 1 : 0)));
        break;
      case OP_SGT:
        CONFIDE_RETURN_NOT_OK(st.ChargeGas(Gas::kVeryLow));
        CONFIDE_RETURN_NOT_OK(st.Pop(&a));
        CONFIDE_RETURN_NOT_OK(st.Pop(&b));
        CONFIDE_RETURN_NOT_OK(st.Push(U256(SLt(b, a) ? 1 : 0)));
        break;
      case OP_EQ:
        CONFIDE_RETURN_NOT_OK(st.ChargeGas(Gas::kVeryLow));
        CONFIDE_RETURN_NOT_OK(st.Pop(&a));
        CONFIDE_RETURN_NOT_OK(st.Pop(&b));
        CONFIDE_RETURN_NOT_OK(st.Push(U256(a == b ? 1 : 0)));
        break;
      case OP_ISZERO:
        CONFIDE_RETURN_NOT_OK(st.ChargeGas(Gas::kVeryLow));
        CONFIDE_RETURN_NOT_OK(st.Pop(&a));
        CONFIDE_RETURN_NOT_OK(st.Push(U256(a.IsZero() ? 1 : 0)));
        break;
      case OP_AND:
        CONFIDE_RETURN_NOT_OK(st.ChargeGas(Gas::kVeryLow));
        CONFIDE_RETURN_NOT_OK(st.Pop(&a));
        CONFIDE_RETURN_NOT_OK(st.Pop(&b));
        CONFIDE_RETURN_NOT_OK(st.Push(And(a, b)));
        break;
      case OP_OR:
        CONFIDE_RETURN_NOT_OK(st.ChargeGas(Gas::kVeryLow));
        CONFIDE_RETURN_NOT_OK(st.Pop(&a));
        CONFIDE_RETURN_NOT_OK(st.Pop(&b));
        CONFIDE_RETURN_NOT_OK(st.Push(Or(a, b)));
        break;
      case OP_XOR:
        CONFIDE_RETURN_NOT_OK(st.ChargeGas(Gas::kVeryLow));
        CONFIDE_RETURN_NOT_OK(st.Pop(&a));
        CONFIDE_RETURN_NOT_OK(st.Pop(&b));
        CONFIDE_RETURN_NOT_OK(st.Push(Xor(a, b)));
        break;
      case OP_NOT:
        CONFIDE_RETURN_NOT_OK(st.ChargeGas(Gas::kVeryLow));
        CONFIDE_RETURN_NOT_OK(st.Pop(&a));
        CONFIDE_RETURN_NOT_OK(st.Push(Not(a)));
        break;
      case OP_BYTE:
        CONFIDE_RETURN_NOT_OK(st.ChargeGas(Gas::kVeryLow));
        CONFIDE_RETURN_NOT_OK(st.Pop(&a));
        CONFIDE_RETURN_NOT_OK(st.Pop(&b));
        CONFIDE_RETURN_NOT_OK(st.Push(U256(ByteAt(b, a.AsU64()))));
        break;
      case OP_SHL:
        CONFIDE_RETURN_NOT_OK(st.ChargeGas(Gas::kVeryLow));
        CONFIDE_RETURN_NOT_OK(st.Pop(&a));
        CONFIDE_RETURN_NOT_OK(st.Pop(&b));
        CONFIDE_RETURN_NOT_OK(st.Push(a.FitsU64() ? Shl(b, a.AsU64()) : U256()));
        break;
      case OP_SHR:
        CONFIDE_RETURN_NOT_OK(st.ChargeGas(Gas::kVeryLow));
        CONFIDE_RETURN_NOT_OK(st.Pop(&a));
        CONFIDE_RETURN_NOT_OK(st.Pop(&b));
        CONFIDE_RETURN_NOT_OK(st.Push(a.FitsU64() ? Shr(b, a.AsU64()) : U256()));
        break;
      case OP_SAR:
        CONFIDE_RETURN_NOT_OK(st.ChargeGas(Gas::kVeryLow));
        CONFIDE_RETURN_NOT_OK(st.Pop(&a));
        CONFIDE_RETURN_NOT_OK(st.Pop(&b));
        CONFIDE_RETURN_NOT_OK(
            st.Push(a.FitsU64() ? Sar(b, a.AsU64())
                                : (b.Bit(255) ? Not(U256()) : U256())));
        break;
      case OP_SHA3: {
        CONFIDE_RETURN_NOT_OK(st.Pop(&a));  // offset
        CONFIDE_RETURN_NOT_OK(st.Pop(&b));  // len
        uint64_t off = a.AsU64(), len = b.AsU64();
        CONFIDE_RETURN_NOT_OK(st.TouchMemory(off, len));
        CONFIDE_RETURN_NOT_OK(
            st.ChargeGas(Gas::kSha3 + Gas::kSha3Word * ((len + 31) / 32)));
        crypto::Hash256 h =
            crypto::Keccak256::Digest(ByteView(st.memory.data() + off, len));
        CONFIDE_RETURN_NOT_OK(st.Push(U256::FromBytesBe(crypto::HashView(h))));
        break;
      }
      case OP_CALLDATALOAD: {
        CONFIDE_RETURN_NOT_OK(st.ChargeGas(Gas::kVeryLow));
        CONFIDE_RETURN_NOT_OK(st.Pop(&a));
        uint8_t word[32] = {0};
        uint64_t off = a.FitsU64() ? a.AsU64() : input.size();
        for (int i = 0; i < 32; ++i) {
          if (off + uint64_t(i) < input.size()) word[i] = input[off + i];
        }
        CONFIDE_RETURN_NOT_OK(st.Push(U256::FromBytesBe(ByteView(word, 32))));
        break;
      }
      case OP_CALLDATASIZE:
        CONFIDE_RETURN_NOT_OK(st.ChargeGas(Gas::kVeryLow));
        CONFIDE_RETURN_NOT_OK(st.Push(U256(input.size())));
        break;
      case OP_CALLDATACOPY: {
        CONFIDE_RETURN_NOT_OK(st.Pop(&a));  // mem offset
        CONFIDE_RETURN_NOT_OK(st.Pop(&b));  // data offset
        CONFIDE_RETURN_NOT_OK(st.Pop(&c));  // len
        uint64_t mem_off = a.AsU64(), data_off = b.AsU64(), len = c.AsU64();
        CONFIDE_RETURN_NOT_OK(st.TouchMemory(mem_off, len));
        CONFIDE_RETURN_NOT_OK(
            st.ChargeGas(Gas::kVeryLow + Gas::kCopyWord * ((len + 31) / 32)));
        for (uint64_t i = 0; i < len; ++i) {
          st.memory[mem_off + i] =
              (data_off + i < input.size()) ? input[data_off + i] : 0;
        }
        break;
      }
      case OP_CODESIZE:
        CONFIDE_RETURN_NOT_OK(st.ChargeGas(Gas::kVeryLow));
        CONFIDE_RETURN_NOT_OK(st.Push(U256(code.size())));
        break;
      case OP_CODECOPY: {
        CONFIDE_RETURN_NOT_OK(st.Pop(&a));  // mem offset
        CONFIDE_RETURN_NOT_OK(st.Pop(&b));  // code offset
        CONFIDE_RETURN_NOT_OK(st.Pop(&c));  // len
        uint64_t mem_off = a.AsU64(), code_off = b.AsU64(), len = c.AsU64();
        CONFIDE_RETURN_NOT_OK(st.TouchMemory(mem_off, len));
        CONFIDE_RETURN_NOT_OK(
            st.ChargeGas(Gas::kVeryLow + Gas::kCopyWord * ((len + 31) / 32)));
        for (uint64_t i = 0; i < len; ++i) {
          st.memory[mem_off + i] =
              (code_off + i < code.size()) ? code[code_off + i] : 0;
        }
        break;
      }
      case OP_XSETOUTPUT: {
        CONFIDE_RETURN_NOT_OK(st.Pop(&a));  // ptr
        CONFIDE_RETURN_NOT_OK(st.Pop(&b));  // len
        uint64_t off = a.AsU64(), len = b.AsU64();
        CONFIDE_RETURN_NOT_OK(st.TouchMemory(off, len));
        output.assign(st.memory.begin() + off, st.memory.begin() + off + len);
        break;
      }
      case OP_POP:
        CONFIDE_RETURN_NOT_OK(st.ChargeGas(2));
        CONFIDE_RETURN_NOT_OK(st.Pop(&a));
        break;
      case OP_MLOAD: {
        CONFIDE_RETURN_NOT_OK(st.ChargeGas(Gas::kVeryLow));
        CONFIDE_RETURN_NOT_OK(st.Pop(&a));
        uint64_t off = a.AsU64();
        CONFIDE_RETURN_NOT_OK(st.TouchMemory(off, 32));
        CONFIDE_RETURN_NOT_OK(
            st.Push(U256::FromBytesBe(ByteView(st.memory.data() + off, 32))));
        break;
      }
      case OP_MSTORE: {
        CONFIDE_RETURN_NOT_OK(st.ChargeGas(Gas::kVeryLow));
        CONFIDE_RETURN_NOT_OK(st.Pop(&a));
        CONFIDE_RETURN_NOT_OK(st.Pop(&b));
        uint64_t off = a.AsU64();
        CONFIDE_RETURN_NOT_OK(st.TouchMemory(off, 32));
        b.ToBytesBe(st.memory.data() + off);
        break;
      }
      case OP_MSTORE8: {
        CONFIDE_RETURN_NOT_OK(st.ChargeGas(Gas::kVeryLow));
        CONFIDE_RETURN_NOT_OK(st.Pop(&a));
        CONFIDE_RETURN_NOT_OK(st.Pop(&b));
        uint64_t off = a.AsU64();
        CONFIDE_RETURN_NOT_OK(st.TouchMemory(off, 1));
        st.memory[off] = uint8_t(b.AsU64());
        break;
      }
      case OP_SLOAD: {
        CONFIDE_RETURN_NOT_OK(st.Pop(&a));
        CONFIDE_ASSIGN_OR_RETURN(U256 value, sload_word(a));
        CONFIDE_RETURN_NOT_OK(st.Push(value));
        break;
      }
      case OP_SSTORE: {
        CONFIDE_RETURN_NOT_OK(st.Pop(&a));
        CONFIDE_RETURN_NOT_OK(st.Pop(&b));
        CONFIDE_RETURN_NOT_OK(sstore_word(a, b));
        break;
      }
      case OP_JUMP: {
        CONFIDE_RETURN_NOT_OK(st.ChargeGas(Gas::kMid));
        CONFIDE_RETURN_NOT_OK(st.Pop(&a));
        uint64_t target = a.AsU64();
        if (!a.FitsU64() || target >= code.size() || !jumpdests[target]) {
          return Status::VmTrap("evm: invalid jump destination");
        }
        pc = target;
        break;
      }
      case OP_JUMPI: {
        CONFIDE_RETURN_NOT_OK(st.ChargeGas(10));
        CONFIDE_RETURN_NOT_OK(st.Pop(&a));
        CONFIDE_RETURN_NOT_OK(st.Pop(&b));
        if (!b.IsZero()) {
          uint64_t target = a.AsU64();
          if (!a.FitsU64() || target >= code.size() || !jumpdests[target]) {
            return Status::VmTrap("evm: invalid jump destination");
          }
          pc = target;
        }
        break;
      }
      case OP_PC:
        CONFIDE_RETURN_NOT_OK(st.ChargeGas(2));
        CONFIDE_RETURN_NOT_OK(st.Push(U256(pc - 1)));
        break;
      case OP_MSIZE:
        CONFIDE_RETURN_NOT_OK(st.ChargeGas(2));
        CONFIDE_RETURN_NOT_OK(st.Push(U256(st.memory.size())));
        break;
      case OP_GAS:
        CONFIDE_RETURN_NOT_OK(st.ChargeGas(2));
        CONFIDE_RETURN_NOT_OK(st.Push(U256(st.gas_limit - st.gas)));
        break;
      case OP_JUMPDEST:
        CONFIDE_RETURN_NOT_OK(st.ChargeGas(Gas::kJumpdest));
        break;
      case OP_LOG0: {
        CONFIDE_RETURN_NOT_OK(st.Pop(&a));
        CONFIDE_RETURN_NOT_OK(st.Pop(&b));
        uint64_t off = a.AsU64(), len = b.AsU64();
        CONFIDE_RETURN_NOT_OK(st.TouchMemory(off, len));
        CONFIDE_RETURN_NOT_OK(st.ChargeGas(Gas::kLog + 8 * len));
        env->EmitLog(ByteView(st.memory.data() + off, len));
        break;
      }
      case OP_RETURN: {
        CONFIDE_RETURN_NOT_OK(st.Pop(&a));
        CONFIDE_RETURN_NOT_OK(st.Pop(&b));
        uint64_t off = a.AsU64(), len = b.AsU64();
        CONFIDE_RETURN_NOT_OK(st.TouchMemory(off, len));
        output.assign(st.memory.begin() + off, st.memory.begin() + off + len);
        pc = code.size();
        break;
      }
      case OP_REVERT:
        return Status::VmTrap("evm: revert");
      case OP_INVALID:
        return Status::VmTrap("evm: invalid opcode executed");

      // --- CONFIDE platform extensions ---
      case OP_XGETSTORAGE: {
        // (key_ptr, key_len, val_ptr, val_cap) -> pushes actual length.
        U256 cap, vptr, klen, kptr;
        CONFIDE_RETURN_NOT_OK(st.Pop(&kptr));
        CONFIDE_RETURN_NOT_OK(st.Pop(&klen));
        CONFIDE_RETURN_NOT_OK(st.Pop(&vptr));
        CONFIDE_RETURN_NOT_OK(st.Pop(&cap));
        CONFIDE_RETURN_NOT_OK(st.TouchMemory(kptr.AsU64(), klen.AsU64()));
        // Copy the key out: later TouchMemory calls may reallocate memory.
        Bytes key(st.memory.begin() + kptr.AsU64(),
                  st.memory.begin() + kptr.AsU64() + klen.AsU64());
        // Word-granular read: length slot then ceil(len/32) value slots.
        U256 len_slot = SlotOf(key, ":len");
        CONFIDE_ASSIGN_OR_RETURN(U256 len_word, sload_word(len_slot));
        uint64_t len = len_word.AsU64();
        uint64_t copy = std::min(len, cap.AsU64());
        CONFIDE_RETURN_NOT_OK(st.TouchMemory(vptr.AsU64(), copy));
        U256 base_slot = SlotOf(key, ":data");
        for (uint64_t w = 0; w * 32 < copy; ++w) {
          CONFIDE_ASSIGN_OR_RETURN(U256 word, sload_word(Add(base_slot, U256(w))));
          uint8_t word_bytes[32];
          word.ToBytesBe(word_bytes);
          uint64_t n = std::min<uint64_t>(32, copy - w * 32);
          std::memcpy(st.memory.data() + vptr.AsU64() + w * 32, word_bytes, n);
        }
        CONFIDE_RETURN_NOT_OK(st.Push(U256(len)));
        break;
      }
      case OP_XSETSTORAGE: {
        // (key_ptr, key_len, val_ptr, val_len)
        U256 vlen, vptr, klen, kptr;
        CONFIDE_RETURN_NOT_OK(st.Pop(&kptr));
        CONFIDE_RETURN_NOT_OK(st.Pop(&klen));
        CONFIDE_RETURN_NOT_OK(st.Pop(&vptr));
        CONFIDE_RETURN_NOT_OK(st.Pop(&vlen));
        CONFIDE_RETURN_NOT_OK(st.TouchMemory(kptr.AsU64(), klen.AsU64()));
        CONFIDE_RETURN_NOT_OK(st.TouchMemory(vptr.AsU64(), vlen.AsU64()));
        Bytes key(st.memory.begin() + kptr.AsU64(),
                  st.memory.begin() + kptr.AsU64() + klen.AsU64());
        uint64_t len = vlen.AsU64();
        CONFIDE_RETURN_NOT_OK(sstore_word(SlotOf(key, ":len"), U256(len)));
        U256 base_slot = SlotOf(key, ":data");
        for (uint64_t w = 0; w * 32 < len; ++w) {
          uint8_t word_bytes[32] = {0};
          uint64_t n = std::min<uint64_t>(32, len - w * 32);
          std::memcpy(word_bytes, st.memory.data() + vptr.AsU64() + w * 32, n);
          CONFIDE_RETURN_NOT_OK(sstore_word(Add(base_slot, U256(w)),
                                            U256::FromBytesBe(ByteView(word_bytes, 32))));
        }
        CONFIDE_RETURN_NOT_OK(st.Push(U256(0)));
        break;
      }
      case OP_XSHA256: {
        // (ptr, len, out_ptr) — stands in for the 0x02 precompile CALL.
        U256 out_ptr, len, ptr;
        CONFIDE_RETURN_NOT_OK(st.Pop(&ptr));
        CONFIDE_RETURN_NOT_OK(st.Pop(&len));
        CONFIDE_RETURN_NOT_OK(st.Pop(&out_ptr));
        CONFIDE_RETURN_NOT_OK(st.TouchMemory(ptr.AsU64(), len.AsU64()));
        CONFIDE_RETURN_NOT_OK(st.TouchMemory(out_ptr.AsU64(), 32));
        // Precompile pricing: 60 + 12/word, plus the CALL stipend shape.
        CONFIDE_RETURN_NOT_OK(
            st.ChargeGas(Gas::kXcall + 60 + 12 * ((len.AsU64() + 31) / 32)));
        crypto::Hash256 h = crypto::Sha256::Digest(
            ByteView(st.memory.data() + ptr.AsU64(), len.AsU64()));
        std::memcpy(st.memory.data() + out_ptr.AsU64(), h.data(), 32);
        CONFIDE_RETURN_NOT_OK(st.Push(U256(0)));
        break;
      }
      case OP_XCALL: {
        // (addr_ptr, addr_len, in_ptr, in_len, out_ptr, out_cap) -> out_len
        U256 out_cap, out_ptr, in_len, in_ptr, addr_len, addr_ptr;
        CONFIDE_RETURN_NOT_OK(st.Pop(&addr_ptr));
        CONFIDE_RETURN_NOT_OK(st.Pop(&addr_len));
        CONFIDE_RETURN_NOT_OK(st.Pop(&in_ptr));
        CONFIDE_RETURN_NOT_OK(st.Pop(&in_len));
        CONFIDE_RETURN_NOT_OK(st.Pop(&out_ptr));
        CONFIDE_RETURN_NOT_OK(st.Pop(&out_cap));
        CONFIDE_RETURN_NOT_OK(st.TouchMemory(addr_ptr.AsU64(), addr_len.AsU64()));
        CONFIDE_RETURN_NOT_OK(st.TouchMemory(in_ptr.AsU64(), in_len.AsU64()));
        CONFIDE_RETURN_NOT_OK(st.ChargeGas(Gas::kXcall));
        ByteView addr(st.memory.data() + addr_ptr.AsU64(), addr_len.AsU64());
        ByteView in(st.memory.data() + in_ptr.AsU64(), in_len.AsU64());
        CONFIDE_ASSIGN_OR_RETURN(Bytes out, env->CallContract(addr, in));
        uint64_t n = std::min<uint64_t>(out.size(), out_cap.AsU64());
        CONFIDE_RETURN_NOT_OK(st.TouchMemory(out_ptr.AsU64(), n));
        std::memcpy(st.memory.data() + out_ptr.AsU64(), out.data(), n);
        CONFIDE_RETURN_NOT_OK(st.Push(U256(out.size())));
        break;
      }

      default:
        return Status::VmTrap("evm: unknown opcode " + std::to_string(op));
    }
  }

  ExecutionResult result;
  result.output = std::move(output);
  result.return_value =
      st.stack.empty() ? 0 : st.stack.back().AsU64();
  result.gas_used = st.gas;
  result.instructions_retired = instructions;
  return result;
}

}  // namespace confide::vm::evm
