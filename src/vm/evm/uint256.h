/// \file uint256.h
/// \brief 256-bit unsigned integer arithmetic for the EVM baseline.
///
/// Every EVM stack slot is one of these — the word size is the root of
/// the EVM-vs-Wasm performance gap the paper measures in Figure 10.

#pragma once

#include <array>
#include <cstdint>
#include <string>

#include "common/bytes.h"

namespace confide::vm::evm {

/// \brief Little-endian 4x64 256-bit unsigned integer, wrapping semantics.
struct U256 {
  std::array<uint64_t, 4> limb{0, 0, 0, 0};

  constexpr U256() = default;
  constexpr explicit U256(uint64_t v) : limb{v, 0, 0, 0} {}

  static U256 FromBytesBe(ByteView bytes);  ///< right-aligned, <=32 bytes
  void ToBytesBe(uint8_t out[32]) const;
  Bytes ToBytes() const;

  bool IsZero() const { return (limb[0] | limb[1] | limb[2] | limb[3]) == 0; }
  uint64_t AsU64() const { return limb[0]; }  ///< low 64 bits
  bool FitsU64() const { return (limb[1] | limb[2] | limb[3]) == 0; }
  bool Bit(unsigned i) const { return (limb[i >> 6] >> (i & 63)) & 1; }

  bool operator==(const U256& o) const { return limb == o.limb; }
  std::string ToHex() const;
};

int Cmp(const U256& a, const U256& b);
inline bool Lt(const U256& a, const U256& b) { return Cmp(a, b) < 0; }
/// \brief Two's-complement signed comparison.
bool SLt(const U256& a, const U256& b);

U256 Add(const U256& a, const U256& b);
U256 Sub(const U256& a, const U256& b);
U256 Mul(const U256& a, const U256& b);
/// \brief Unsigned division; x/0 == 0 (EVM semantics).
U256 Div(const U256& a, const U256& b);
/// \brief Unsigned modulo; x%0 == 0 (EVM semantics).
U256 Mod(const U256& a, const U256& b);
/// \brief Signed division with EVM semantics.
U256 SDiv(const U256& a, const U256& b);
/// \brief Signed modulo with EVM semantics (sign follows dividend).
U256 SMod(const U256& a, const U256& b);

U256 And(const U256& a, const U256& b);
U256 Or(const U256& a, const U256& b);
U256 Xor(const U256& a, const U256& b);
U256 Not(const U256& a);
U256 Neg(const U256& a);

/// \brief Logical shifts; shift >= 256 yields zero.
U256 Shl(const U256& a, uint64_t shift);
U256 Shr(const U256& a, uint64_t shift);
/// \brief Arithmetic right shift (SAR).
U256 Sar(const U256& a, uint64_t shift);

/// \brief EVM SIGNEXTEND: treat `a` as a (b+1)-byte signed value.
U256 SignExtend(uint64_t byte_index, const U256& a);

/// \brief EVM BYTE: the `i`-th byte counting from the most significant.
uint64_t ByteAt(const U256& a, uint64_t i);

}  // namespace confide::vm::evm
