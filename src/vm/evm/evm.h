/// \file evm.h
/// \brief EVM-compatible baseline interpreter.
///
/// CONFIDE "enables EVM for a traditional smart contract ecosystem"
/// (§3.2.1) and Figure 10 compares it against CONFIDE-VM. This is a
/// faithful stack machine over 256-bit words with the core opcode set,
/// word-granular storage, quadratic memory expansion and a shaped gas
/// schedule.
///
/// Substitution note: instead of precompile CALLs, four extension opcodes
/// (XGETSTORAGE/XSETSTORAGE/XSHA256/XCALL) bridge to the platform host
/// interface. XSETSTORAGE/XGETSTORAGE internally loop over 32-byte words
/// through the same storage path as SSTORE/SLOAD — reproducing the
/// Solidity-style cost amplification for byte-string state.

#pragma once

#include <vector>

#include "vm/evm/uint256.h"
#include "vm/host_env.h"

namespace confide::vm::evm {

/// \brief Opcode values (Ethereum yellow-paper numbering where shared).
enum Opcode : uint8_t {
  OP_STOP = 0x00, OP_ADD = 0x01, OP_MUL = 0x02, OP_SUB = 0x03,
  OP_DIV = 0x04, OP_SDIV = 0x05, OP_MOD = 0x06, OP_SMOD = 0x07,
  OP_SIGNEXTEND = 0x0b,
  OP_LT = 0x10, OP_GT = 0x11, OP_SLT = 0x12, OP_SGT = 0x13,
  OP_EQ = 0x14, OP_ISZERO = 0x15, OP_AND = 0x16, OP_OR = 0x17,
  OP_XOR = 0x18, OP_NOT = 0x19, OP_BYTE = 0x1a,
  OP_SHL = 0x1b, OP_SHR = 0x1c, OP_SAR = 0x1d,
  OP_SHA3 = 0x20,
  OP_CALLDATALOAD = 0x35, OP_CALLDATASIZE = 0x36, OP_CALLDATACOPY = 0x37,
  OP_CODESIZE = 0x38, OP_CODECOPY = 0x39,
  OP_POP = 0x50, OP_MLOAD = 0x51, OP_MSTORE = 0x52, OP_MSTORE8 = 0x53,
  OP_SLOAD = 0x54, OP_SSTORE = 0x55, OP_JUMP = 0x56, OP_JUMPI = 0x57,
  OP_PC = 0x58, OP_MSIZE = 0x59, OP_GAS = 0x5a, OP_JUMPDEST = 0x5b,
  OP_PUSH1 = 0x60,   // ..PUSH32 = 0x7f
  OP_DUP1 = 0x80,    // ..DUP16 = 0x8f
  OP_SWAP1 = 0x90,   // ..SWAP16 = 0x9f
  OP_LOG0 = 0xa0,
  OP_XGETSTORAGE = 0xf5, OP_XSETSTORAGE = 0xf6,
  OP_XSHA256 = 0xf7, OP_XCALL = 0xf8,
  OP_XSETOUTPUT = 0xf9,  ///< (ptr, len): records output without halting
  OP_RETURN = 0xf3, OP_REVERT = 0xfd, OP_INVALID = 0xfe,
};

/// \brief The EVM engine. Stateless; safe to share across threads.
class EvmVm {
 public:
  /// \brief Runs `code` with `input` as calldata.
  Result<ExecutionResult> Execute(ByteView code, ByteView input, HostEnv* env,
                                  const ExecConfig& config) const;
};

/// \brief Label-based EVM bytecode assembler (the CCL EVM backend's
/// output stage). Labels become PUSH2 immediates patched at Finish().
class EvmAssembler {
 public:
  using Label = size_t;

  EvmAssembler& Op(uint8_t opcode) {
    code_.push_back(opcode);
    return *this;
  }

  /// \brief PUSHn with the minimal width for `value` (at least PUSH1).
  EvmAssembler& Push(const U256& value);
  EvmAssembler& Push(uint64_t value) { return Push(U256(value)); }

  Label NewLabel() {
    label_offsets_.push_back(kUnbound);
    return label_offsets_.size() - 1;
  }

  /// \brief Binds `label` here and emits a JUMPDEST.
  EvmAssembler& Bind(Label label) {
    label_offsets_[label] = code_.size();
    return Op(OP_JUMPDEST);
  }

  /// \brief Binds `label` to the current offset without a JUMPDEST (for
  /// non-jump references such as the CODECOPY literal-pool offset).
  EvmAssembler& BindHere(Label label) {
    label_offsets_[label] = code_.size();
    return *this;
  }

  /// \brief PUSH2 of a label's offset (patched later).
  EvmAssembler& PushLabel(Label label);

  /// \brief Current byte offset (for inspection).
  size_t size() const { return code_.size(); }

  Result<Bytes> Finish();

 private:
  static constexpr size_t kUnbound = size_t(-1);
  Bytes code_;
  std::vector<size_t> label_offsets_;
  struct Fixup {
    size_t code_offset;  // where the 2 placeholder bytes live
    Label label;
  };
  std::vector<Fixup> fixups_;
};

}  // namespace confide::vm::evm
