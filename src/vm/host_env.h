/// \file host_env.h
/// \brief The environment a smart-contract VM executes against.
///
/// Both engines (Public-Engine and Confidential-Engine, paper §3.1) hand a
/// HostEnv to whichever VM runs the transaction. In the confidential
/// engine the implementation is the SDM: every GetStorage/SetStorage
/// passes through D-Protocol encryption and an enclave-boundary ocall.

#pragma once

#include <cstdint>
#include <string>

#include "common/bytes.h"
#include "common/status.h"

namespace confide::vm {

/// \brief Host services visible to contract code.
class HostEnv {
 public:
  virtual ~HostEnv() = default;

  /// \brief Reads a contract state value; empty bytes when absent.
  virtual Result<Bytes> GetStorage(ByteView key) = 0;

  /// \brief Writes a contract state value.
  virtual Status SetStorage(ByteView key, ByteView value) = 0;

  /// \brief Appends a log/event record to the receipt.
  virtual void EmitLog(ByteView data) = 0;

  /// \brief Synchronous cross-contract call (the SCF-AR flow makes 31 of
  /// these per transfer, paper Table 1). Returns the callee's output.
  virtual Result<Bytes> CallContract(ByteView address, ByteView input) = 0;
};

/// \brief Outcome of one contract execution.
struct ExecutionResult {
  Bytes output;                      ///< bytes the contract wrote as output
  uint64_t return_value = 0;         ///< entry function's scalar return
  uint64_t gas_used = 0;
  uint64_t instructions_retired = 0;
};

/// \brief Per-execution limits and feature toggles.
struct ExecConfig {
  uint64_t gas_limit = 100'000'000;
  /// OPT1: reuse decoded modules keyed by code hash.
  bool enable_code_cache = true;
  /// OPT4: superinstruction fusion + reduced dispatch table.
  bool enable_fusion = true;
  /// Maximum value-stack depth.
  uint32_t max_stack = 64 * 1024;
  /// Maximum call depth (intra-module).
  uint32_t max_call_depth = 256;
};

}  // namespace confide::vm
