#include "vm/cvm/interpreter.h"

#include <cstring>

#include "common/endian.h"
#include "crypto/keccak.h"
#include "crypto/sha256.h"

namespace confide::vm::cvm {

// ---------------------------------------------------------------------------
// CvmInstance
// ---------------------------------------------------------------------------

Result<ByteView> CvmInstance::MemRead(uint64_t ptr, uint64_t len) const {
  if (ptr + len > memory_.size() || ptr + len < ptr) {
    return Status::VmTrap("memory read out of bounds");
  }
  return ByteView(memory_.data() + ptr, len);
}

Status CvmInstance::MemWrite(uint64_t ptr, ByteView data) {
  if (ptr + data.size() > memory_.size() || ptr + data.size() < ptr) {
    return Status::VmTrap("memory write out of bounds");
  }
  std::memcpy(memory_.data() + ptr, data.data(), data.size());
  return Status::OK();
}

Status CvmInstance::ChargeGas(uint64_t amount) {
  gas_used_ += amount;
  if (gas_used_ > gas_limit_) {
    return Status::ResourceExhausted("out of gas");
  }
  return Status::OK();
}

// ---------------------------------------------------------------------------
// Standard host functions
// ---------------------------------------------------------------------------

namespace {

std::vector<HostFunction> StandardHostFunctions() {
  std::vector<HostFunction> fns(10);
  fns[kHostGetStorage] = {"get_storage", 4,
      [](CvmInstance* vm, const uint64_t* a) -> Result<uint64_t> {
        CONFIDE_ASSIGN_OR_RETURN(ByteView key, vm->MemRead(a[0], a[1]));
        CONFIDE_RETURN_NOT_OK(vm->ChargeGas(100 + a[1]));
        auto value = vm->env()->GetStorage(key);
        if (!value.ok()) {
          if (value.status().IsNotFound()) return uint64_t(0);
          return value.status();
        }
        uint64_t n = std::min<uint64_t>(value->size(), a[3]);
        CONFIDE_RETURN_NOT_OK(vm->MemWrite(a[2], ByteView(value->data(), n)));
        return uint64_t(value->size());
      }};
  fns[kHostSetStorage] = {"set_storage", 4,
      [](CvmInstance* vm, const uint64_t* a) -> Result<uint64_t> {
        CONFIDE_ASSIGN_OR_RETURN(ByteView key, vm->MemRead(a[0], a[1]));
        CONFIDE_ASSIGN_OR_RETURN(ByteView value, vm->MemRead(a[2], a[3]));
        CONFIDE_RETURN_NOT_OK(vm->ChargeGas(200 + a[1] + a[3]));
        CONFIDE_RETURN_NOT_OK(vm->env()->SetStorage(key, value));
        return uint64_t(0);
      }};
  fns[kHostSha256] = {"sha256", 3,
      [](CvmInstance* vm, const uint64_t* a) -> Result<uint64_t> {
        CONFIDE_ASSIGN_OR_RETURN(ByteView data, vm->MemRead(a[0], a[1]));
        CONFIDE_RETURN_NOT_OK(vm->ChargeGas(60 + a[1] / 8));
        crypto::Hash256 digest = crypto::Sha256::Digest(data);
        CONFIDE_RETURN_NOT_OK(vm->MemWrite(a[2], crypto::HashView(digest)));
        return uint64_t(0);
      }};
  fns[kHostKeccak256] = {"keccak256", 3,
      [](CvmInstance* vm, const uint64_t* a) -> Result<uint64_t> {
        CONFIDE_ASSIGN_OR_RETURN(ByteView data, vm->MemRead(a[0], a[1]));
        CONFIDE_RETURN_NOT_OK(vm->ChargeGas(60 + a[1] / 8));
        crypto::Hash256 digest = crypto::Keccak256::Digest(data);
        CONFIDE_RETURN_NOT_OK(vm->MemWrite(a[2], crypto::HashView(digest)));
        return uint64_t(0);
      }};
  fns[kHostInputSize] = {"input_size", 0,
      [](CvmInstance* vm, const uint64_t*) -> Result<uint64_t> {
        return uint64_t(vm->input().size());
      }};
  fns[kHostReadInput] = {"read_input", 2,
      [](CvmInstance* vm, const uint64_t* a) -> Result<uint64_t> {
        uint64_t n = std::min<uint64_t>(vm->input().size(), a[1]);
        CONFIDE_RETURN_NOT_OK(vm->MemWrite(a[0], vm->input().first(n)));
        return n;
      }};
  fns[kHostWriteOutput] = {"write_output", 2,
      [](CvmInstance* vm, const uint64_t* a) -> Result<uint64_t> {
        CONFIDE_ASSIGN_OR_RETURN(ByteView data, vm->MemRead(a[0], a[1]));
        vm->SetOutput(ToBytes(data));
        return uint64_t(0);
      }};
  fns[kHostCall] = {"call", 6,
      [](CvmInstance* vm, const uint64_t* a) -> Result<uint64_t> {
        CONFIDE_ASSIGN_OR_RETURN(ByteView addr, vm->MemRead(a[0], a[1]));
        CONFIDE_ASSIGN_OR_RETURN(ByteView in, vm->MemRead(a[2], a[3]));
        CONFIDE_RETURN_NOT_OK(vm->ChargeGas(700));
        CONFIDE_ASSIGN_OR_RETURN(Bytes out, vm->env()->CallContract(addr, in));
        uint64_t n = std::min<uint64_t>(out.size(), a[5]);
        CONFIDE_RETURN_NOT_OK(vm->MemWrite(a[4], ByteView(out.data(), n)));
        return uint64_t(out.size());
      }};
  fns[kHostLog] = {"log", 2,
      [](CvmInstance* vm, const uint64_t* a) -> Result<uint64_t> {
        CONFIDE_ASSIGN_OR_RETURN(ByteView data, vm->MemRead(a[0], a[1]));
        vm->env()->EmitLog(data);
        return uint64_t(0);
      }};
  fns[kHostAbort] = {"abort", 1,
      [](CvmInstance*, const uint64_t* a) -> Result<uint64_t> {
        return Status::VmTrap("contract abort(" + std::to_string(a[0]) + ")");
      }};
  return fns;
}

}  // namespace

// ---------------------------------------------------------------------------
// CvmVm
// ---------------------------------------------------------------------------

CvmVm::CvmVm() : host_functions_(StandardHostFunctions()) {}

uint32_t CvmVm::RegisterHost(HostFunction fn) {
  host_functions_.push_back(std::move(fn));
  return uint32_t(host_functions_.size() - 1);
}

CvmStats CvmVm::stats() const {
  std::lock_guard<std::mutex> lock(cache_mutex_);
  return stats_;
}

void CvmVm::ResetStats() {
  std::lock_guard<std::mutex> lock(cache_mutex_);
  stats_ = CvmStats{};
}

Result<std::shared_ptr<const Module>> CvmVm::LoadModule(ByteView wire,
                                                        const ExecConfig& config) {
  if (config.enable_code_cache) {
    crypto::Hash256 hash = crypto::Sha256::Digest(wire);
    std::string key = HexEncode(crypto::HashView(hash)) +
                      (config.enable_fusion ? "/f" : "/p");
    {
      std::lock_guard<std::mutex> lock(cache_mutex_);
      auto it = code_cache_.find(key);
      if (it != code_cache_.end()) {
        ++stats_.cache_hits;
        return it->second;
      }
      ++stats_.cache_misses;
    }
    CONFIDE_ASSIGN_OR_RETURN(Module module, DecodeModule(wire, config.enable_fusion));
    auto shared = std::make_shared<const Module>(std::move(module));
    std::lock_guard<std::mutex> lock(cache_mutex_);
    code_cache_[key] = shared;
    return std::shared_ptr<const Module>(shared);
  }
  {
    std::lock_guard<std::mutex> lock(cache_mutex_);
    ++stats_.cache_misses;
  }
  CONFIDE_ASSIGN_OR_RETURN(Module module, DecodeModule(wire, config.enable_fusion));
  return std::make_shared<const Module>(std::move(module));
}

Result<ExecutionResult> CvmVm::Execute(ByteView wire, std::string_view entry,
                                       ByteView input, HostEnv* env,
                                       const ExecConfig& config) {
  CONFIDE_ASSIGN_OR_RETURN(std::shared_ptr<const Module> module,
                           LoadModule(wire, config));
  return ExecuteModule(*module, entry, input, env, config);
}

namespace {

struct Frame {
  const Function* fn;
  size_t pc = 0;
  size_t stack_base = 0;   // value-stack height at entry
  size_t locals_base = 0;  // offset into the shared locals arena
};

inline uint64_t EvalCompare(Op op, uint64_t lhs, uint64_t rhs) {
  switch (op) {
    case Op::kEq: return lhs == rhs;
    case Op::kNe: return lhs != rhs;
    case Op::kLtS: return int64_t(lhs) < int64_t(rhs);
    case Op::kLtU: return lhs < rhs;
    case Op::kGtS: return int64_t(lhs) > int64_t(rhs);
    case Op::kGtU: return lhs > rhs;
    case Op::kLeS: return int64_t(lhs) <= int64_t(rhs);
    case Op::kLeU: return lhs <= rhs;
    case Op::kGeS: return int64_t(lhs) >= int64_t(rhs);
    case Op::kGeU: return lhs >= rhs;
    default: return 0;
  }
}

}  // namespace

Result<ExecutionResult> CvmVm::ExecuteModule(const Module& module,
                                             std::string_view entry, ByteView input,
                                             HostEnv* env, const ExecConfig& config) {
  auto entry_it = module.exports.find(std::string(entry));
  if (entry_it == module.exports.end()) {
    return Status::NotFound("cvm: no exported function '" + std::string(entry) + "'");
  }

  CvmInstance inst;
  inst.env_ = env;
  inst.input_ = input;
  inst.gas_limit_ = config.gas_limit;
  inst.memory_.assign(module.memory_bytes, 0);
  for (const auto& [offset, bytes] : module.data_segments) {
    std::memcpy(inst.memory_.data() + offset, bytes.data(), bytes.size());
  }

  std::vector<uint64_t> stack;
  stack.reserve(1024);
  std::vector<uint64_t> locals;
  locals.reserve(1024);
  std::vector<Frame> frames;
  frames.reserve(64);

  const Function& entry_fn = module.functions[entry_it->second];
  if (entry_fn.param_count != 0) {
    return Status::InvalidArgument("cvm: entry function must take no parameters");
  }
  locals.resize(entry_fn.param_count + entry_fn.local_count, 0);
  frames.push_back({&entry_fn, 0, 0, 0});

  uint8_t* mem = inst.memory_.data();
  const uint64_t mem_size = inst.memory_.size();

  auto trap = [&](const std::string& what) -> Status {
    return Status::VmTrap("cvm: " + what);
  };

  uint64_t gas = 0;
  const uint64_t gas_limit = config.gas_limit;
  uint64_t instructions = 0;

  while (!frames.empty()) {
    Frame& frame = frames.back();
    const std::vector<Instr>& code = frame.fn->code;
    if (frame.pc >= code.size()) {
      return trap("fell off end of function");
    }
    const Instr& instr = code[frame.pc++];
    ++instructions;
    gas += CvmGas::kBase;
    if (gas > gas_limit) return Status::ResourceExhausted("out of gas");

    switch (instr.op) {
      case Op::kUnreachable:
        return trap("unreachable executed");
      case Op::kNop:
        break;
      case Op::kReturn: {
        if (stack.size() <= frame.stack_base) return trap("return with empty stack");
        uint64_t ret = stack.back();
        stack.resize(frame.stack_base);
        stack.push_back(ret);
        locals.resize(frame.locals_base);
        frames.pop_back();
        break;
      }
      case Op::kCall: {
        if (frames.size() >= config.max_call_depth) return trap("call depth exceeded");
        const Function& callee = module.functions[instr.a];
        if (stack.size() < frame.stack_base + callee.param_count) {
          return trap("call with insufficient arguments");
        }
        gas += CvmGas::kCall;
        size_t locals_base = locals.size();
        locals.resize(locals_base + callee.param_count + callee.local_count, 0);
        // Pop args into the callee's leading locals.
        for (uint32_t p = callee.param_count; p > 0; --p) {
          locals[locals_base + p - 1] = stack.back();
          stack.pop_back();
        }
        frames.push_back({&callee, 0, stack.size(), locals_base});
        break;
      }
      case Op::kCallHost: {
        if (instr.a >= host_functions_.size()) return trap("unknown host function");
        const HostFunction& host = host_functions_[instr.a];
        if (stack.size() < frame.stack_base + host.arity) {
          return trap("host call with insufficient arguments");
        }
        gas += CvmGas::kHostCall;
        uint64_t args[8] = {0};
        for (uint32_t p = host.arity; p > 0; --p) {
          args[p - 1] = stack.back();
          stack.pop_back();
        }
        inst.gas_used_ = gas;
        Result<uint64_t> result = host.fn(&inst, args);
        gas = inst.gas_used_;
        if (gas > gas_limit) return Status::ResourceExhausted("out of gas");
        if (!result.ok()) return result.status();
        stack.push_back(*result);
        break;
      }
      case Op::kBr:
        frame.pc = size_t(instr.a);
        break;
      case Op::kBrIf: {
        if (stack.empty()) return trap("brif on empty stack");
        uint64_t cond = stack.back();
        stack.pop_back();
        if (cond != 0) frame.pc = size_t(instr.a);
        break;
      }
      case Op::kDrop:
        if (stack.empty()) return trap("drop on empty stack");
        stack.pop_back();
        break;
      case Op::kSelect: {
        if (stack.size() < 3) return trap("select needs three operands");
        uint64_t cond = stack.back(); stack.pop_back();
        uint64_t v2 = stack.back(); stack.pop_back();
        uint64_t v1 = stack.back(); stack.pop_back();
        stack.push_back(cond != 0 ? v1 : v2);
        break;
      }
      case Op::kI64Const:
        if (stack.size() >= config.max_stack) return trap("value stack overflow");
        stack.push_back(instr.a);
        break;
      case Op::kLocalGet:
        stack.push_back(locals[frame.locals_base + instr.a]);
        break;
      case Op::kLocalSet:
        if (stack.empty()) return trap("local.set on empty stack");
        locals[frame.locals_base + instr.a] = stack.back();
        stack.pop_back();
        break;
      case Op::kLocalTee:
        if (stack.empty()) return trap("local.tee on empty stack");
        locals[frame.locals_base + instr.a] = stack.back();
        break;

#define CONFIDE_BINOP(opcode, expr)                                     \
      case opcode: {                                                    \
        if (stack.size() < 2) return trap("binary op needs operands");  \
        uint64_t rhs = stack.back(); stack.pop_back();                  \
        uint64_t lhs = stack.back();                                    \
        (void)rhs; (void)lhs;                                           \
        stack.back() = (expr);                                          \
        break;                                                          \
      }

      CONFIDE_BINOP(Op::kAdd, lhs + rhs)
      CONFIDE_BINOP(Op::kSub, lhs - rhs)
      CONFIDE_BINOP(Op::kMul, lhs * rhs)
      case Op::kDivS: case Op::kDivU: case Op::kRemS: case Op::kRemU: {
        if (stack.size() < 2) return trap("binary op needs operands");
        uint64_t rhs = stack.back(); stack.pop_back();
        uint64_t lhs = stack.back();
        if (rhs == 0) return trap("integer divide by zero");
        switch (instr.op) {
          case Op::kDivS: stack.back() = uint64_t(int64_t(lhs) / int64_t(rhs)); break;
          case Op::kDivU: stack.back() = lhs / rhs; break;
          case Op::kRemS: stack.back() = uint64_t(int64_t(lhs) % int64_t(rhs)); break;
          default: stack.back() = lhs % rhs; break;
        }
        break;
      }
      CONFIDE_BINOP(Op::kAnd, lhs & rhs)
      CONFIDE_BINOP(Op::kOr, lhs | rhs)
      CONFIDE_BINOP(Op::kXor, lhs ^ rhs)
      CONFIDE_BINOP(Op::kShl, lhs << (rhs & 63))
      CONFIDE_BINOP(Op::kShrS, uint64_t(int64_t(lhs) >> (rhs & 63)))
      CONFIDE_BINOP(Op::kShrU, lhs >> (rhs & 63))
      case Op::kEqz:
        if (stack.empty()) return trap("eqz on empty stack");
        stack.back() = (stack.back() == 0);
        break;
      CONFIDE_BINOP(Op::kEq, EvalCompare(Op::kEq, lhs, rhs))
      CONFIDE_BINOP(Op::kNe, EvalCompare(Op::kNe, lhs, rhs))
      CONFIDE_BINOP(Op::kLtS, EvalCompare(Op::kLtS, lhs, rhs))
      CONFIDE_BINOP(Op::kLtU, EvalCompare(Op::kLtU, lhs, rhs))
      CONFIDE_BINOP(Op::kGtS, EvalCompare(Op::kGtS, lhs, rhs))
      CONFIDE_BINOP(Op::kGtU, EvalCompare(Op::kGtU, lhs, rhs))
      CONFIDE_BINOP(Op::kLeS, EvalCompare(Op::kLeS, lhs, rhs))
      CONFIDE_BINOP(Op::kLeU, EvalCompare(Op::kLeU, lhs, rhs))
      CONFIDE_BINOP(Op::kGeS, EvalCompare(Op::kGeS, lhs, rhs))
      CONFIDE_BINOP(Op::kGeU, EvalCompare(Op::kGeU, lhs, rhs))
#undef CONFIDE_BINOP

      case Op::kLoad8U: {
        if (stack.empty()) return trap("load on empty stack");
        uint64_t addr = stack.back();
        if (addr >= mem_size) return trap("memory read out of bounds");
        gas += CvmGas::kMemOp;
        stack.back() = mem[addr];
        break;
      }
      case Op::kLoad32U: {
        if (stack.empty()) return trap("load on empty stack");
        uint64_t addr = stack.back();
        if (addr + 4 > mem_size) return trap("memory read out of bounds");
        gas += CvmGas::kMemOp;
        stack.back() = LoadLe32(mem + addr);
        break;
      }
      case Op::kLoad64: {
        if (stack.empty()) return trap("load on empty stack");
        uint64_t addr = stack.back();
        if (addr + 8 > mem_size) return trap("memory read out of bounds");
        gas += CvmGas::kMemOp;
        stack.back() = LoadLe64(mem + addr);
        break;
      }
      case Op::kStore8: {
        if (stack.size() < 2) return trap("store needs operands");
        uint64_t value = stack.back(); stack.pop_back();
        uint64_t addr = stack.back(); stack.pop_back();
        if (addr >= mem_size) return trap("memory write out of bounds");
        gas += CvmGas::kMemOp;
        mem[addr] = uint8_t(value);
        break;
      }
      case Op::kStore32: {
        if (stack.size() < 2) return trap("store needs operands");
        uint64_t value = stack.back(); stack.pop_back();
        uint64_t addr = stack.back(); stack.pop_back();
        if (addr + 4 > mem_size) return trap("memory write out of bounds");
        gas += CvmGas::kMemOp;
        StoreLe32(mem + addr, uint32_t(value));
        break;
      }
      case Op::kStore64: {
        if (stack.size() < 2) return trap("store needs operands");
        uint64_t value = stack.back(); stack.pop_back();
        uint64_t addr = stack.back(); stack.pop_back();
        if (addr + 8 > mem_size) return trap("memory write out of bounds");
        gas += CvmGas::kMemOp;
        StoreLe64(mem + addr, value);
        break;
      }
      case Op::kMemCopy: {
        if (stack.size() < 3) return trap("memcopy needs operands");
        uint64_t len = stack.back(); stack.pop_back();
        uint64_t src = stack.back(); stack.pop_back();
        uint64_t dst = stack.back(); stack.pop_back();
        if (src + len > mem_size || dst + len > mem_size ||
            src + len < src || dst + len < dst) {
          return trap("memcopy out of bounds");
        }
        gas += CvmGas::kPerByteBulk * (len / 8 + 1);
        std::memmove(mem + dst, mem + src, len);
        break;
      }
      case Op::kMemFill: {
        if (stack.size() < 3) return trap("memfill needs operands");
        uint64_t len = stack.back(); stack.pop_back();
        uint64_t byte = stack.back(); stack.pop_back();
        uint64_t dst = stack.back(); stack.pop_back();
        if (dst + len > mem_size || dst + len < dst) {
          return trap("memfill out of bounds");
        }
        gas += CvmGas::kPerByteBulk * (len / 8 + 1);
        std::memset(mem + dst, int(byte), len);
        break;
      }
      case Op::kMemSize:
        stack.push_back(mem_size);
        break;

      // --- superinstructions ---
      case Op::kFusedAddImm:
        if (stack.empty()) return trap("addimm on empty stack");
        stack.back() += instr.a;
        break;
      case Op::kFusedIncLocal:
        locals[frame.locals_base + instr.a] += instr.b;
        break;
      case Op::kFusedCmpBrIf: {
        if (stack.size() < 2) return trap("cmpbrif needs operands");
        uint64_t rhs = stack.back(); stack.pop_back();
        uint64_t lhs = stack.back(); stack.pop_back();
        if (EvalCompare(Op(instr.b), lhs, rhs)) frame.pc = size_t(instr.a);
        break;
      }
      case Op::kFusedLocalGet2:
        stack.push_back(locals[frame.locals_base + instr.a]);
        stack.push_back(locals[frame.locals_base + instr.b]);
        break;
      case Op::kFusedConstStore64: {
        if (stack.empty()) return trap("conststore on empty stack");
        uint64_t addr = stack.back(); stack.pop_back();
        if (addr + 8 > mem_size) return trap("memory write out of bounds");
        gas += CvmGas::kMemOp;
        StoreLe64(mem + addr, instr.a);
        break;
      }
    }
    if (stack.size() > config.max_stack) return trap("value stack overflow");
  }

  ExecutionResult result;
  result.output = std::move(inst.output_);
  result.return_value = stack.empty() ? 0 : stack.back();
  result.gas_used = gas;
  result.instructions_retired = instructions;
  return result;
}

}  // namespace confide::vm::cvm
