/// \file builder.h
/// \brief Programmatic CONFIDE-VM module construction with label-based
/// control flow. Used by the CCL compiler backend and by tests.

#pragma once

#include <string>
#include <vector>

#include "vm/cvm/bytecode.h"

namespace confide::vm::cvm {

class ModuleBuilder;

/// \brief Builds one function body. Branch targets are labels resolved at
/// Finish() time.
class FunctionBuilder {
 public:
  using Label = size_t;

  FunctionBuilder(uint32_t param_count, uint32_t local_count)
      : param_count_(param_count), local_count_(local_count) {}

  /// \brief Emits an instruction with an optional immediate.
  FunctionBuilder& Emit(Op op, uint64_t a = 0) {
    code_.push_back({op, a, 0});
    return *this;
  }

  FunctionBuilder& I64Const(int64_t v) { return Emit(Op::kI64Const, uint64_t(v)); }
  FunctionBuilder& LocalGet(uint32_t idx) { return Emit(Op::kLocalGet, idx); }
  FunctionBuilder& LocalSet(uint32_t idx) { return Emit(Op::kLocalSet, idx); }
  FunctionBuilder& LocalTee(uint32_t idx) { return Emit(Op::kLocalTee, idx); }
  FunctionBuilder& Call(uint32_t fn) { return Emit(Op::kCall, fn); }
  FunctionBuilder& CallHost(uint64_t host_fn) { return Emit(Op::kCallHost, host_fn); }
  FunctionBuilder& Return() { return Emit(Op::kReturn); }

  /// \brief Creates an unbound label.
  Label NewLabel() {
    labels_.push_back(kUnbound);
    return labels_.size() - 1;
  }

  /// \brief Binds `label` to the next emitted instruction.
  FunctionBuilder& Bind(Label label) {
    labels_[label] = code_.size();
    return *this;
  }

  FunctionBuilder& Br(Label label) {
    fixups_.push_back({code_.size(), label});
    return Emit(Op::kBr, 0);
  }

  FunctionBuilder& BrIf(Label label) {
    fixups_.push_back({code_.size(), label});
    return Emit(Op::kBrIf, 0);
  }

  /// \brief Adds extra local slots; returns the first new index.
  uint32_t AddLocal() { return param_count_ + local_count_++; }

  uint32_t param_count() const { return param_count_; }

 private:
  friend class ModuleBuilder;
  static constexpr size_t kUnbound = size_t(-1);

  Result<Function> Finish() const;

  uint32_t param_count_;
  uint32_t local_count_;
  std::vector<Instr> code_;
  std::vector<size_t> labels_;
  struct Fixup {
    size_t instr_index;
    Label label;
  };
  std::vector<Fixup> fixups_;
};

/// \brief Accumulates functions, exports and data into a Module.
class ModuleBuilder {
 public:
  /// \brief Adds a function; returns its index.
  Result<uint32_t> AddFunction(const FunctionBuilder& fn);

  /// \brief Exports function `index` under `name`.
  void Export(const std::string& name, uint32_t index) { exports_[name] = index; }

  /// \brief Places `bytes` at `offset` in linear memory at instantiation.
  void AddData(uint32_t offset, Bytes bytes) {
    data_.emplace_back(offset, std::move(bytes));
  }

  void SetMemoryBytes(uint32_t bytes) { memory_bytes_ = bytes; }

  /// \brief Produces the decoded module (and via EncodeModule, wire bytes).
  Module Finish() const;

 private:
  std::vector<Function> functions_;
  std::unordered_map<std::string, uint32_t> exports_;
  std::vector<std::pair<uint32_t, Bytes>> data_;
  uint32_t memory_bytes_ = 1 << 20;
};

}  // namespace confide::vm::cvm
