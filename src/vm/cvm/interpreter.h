/// \file interpreter.h
/// \brief CONFIDE-VM bytecode interpreter.
///
/// Features mapped to the paper's optimizations:
///  * decoded-module **code cache** keyed by code hash (OPT1) — without it
///    every execution re-parses the LEB128 wire format;
///  * **superinstruction fusion** and the reduced dispatch table (OPT4);
///  * fixed-size linear memory + value stack (§3.2.1), no growth, so the
///    enclave working set is bounded and a **memory pool** recycles the
///    instance buffers across executions (§5.3 "memory pool").

#pragma once

#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "vm/cvm/bytecode.h"
#include "vm/host_env.h"

namespace confide::vm::cvm {

class CvmInstance;

/// \brief Host function: receives the live instance and `arity` args,
/// returns one value.
struct HostFunction {
  std::string name;
  uint32_t arity = 0;
  std::function<Result<uint64_t>(CvmInstance*, const uint64_t*)> fn;
};

/// \brief Well-known host function indices (the CCL compiler hard-codes
/// these; keep in sync with RegisterStandardHostFunctions()).
enum HostFn : uint64_t {
  kHostGetStorage = 0,   ///< (key_ptr, key_len, val_ptr, val_cap) -> len
  kHostSetStorage = 1,   ///< (key_ptr, key_len, val_ptr, val_len) -> 0
  kHostSha256 = 2,       ///< (ptr, len, out_ptr) -> 0
  kHostKeccak256 = 3,    ///< (ptr, len, out_ptr) -> 0
  kHostInputSize = 4,    ///< () -> byte count
  kHostReadInput = 5,    ///< (dst_ptr, cap) -> copied
  kHostWriteOutput = 6,  ///< (ptr, len) -> 0
  kHostCall = 7,         ///< (addr_ptr, addr_len, in_ptr, in_len, out_ptr, out_cap) -> out_len
  kHostLog = 8,          ///< (ptr, len) -> 0
  kHostAbort = 9,        ///< (code) -> trap
};

/// \brief A running execution's state, visible to host functions.
class CvmInstance {
 public:
  /// \brief Bounds-checked linear-memory read.
  Result<ByteView> MemRead(uint64_t ptr, uint64_t len) const;

  /// \brief Bounds-checked linear-memory write.
  Status MemWrite(uint64_t ptr, ByteView data);

  HostEnv* env() { return env_; }
  ByteView input() const { return input_; }
  void SetOutput(Bytes output) { output_ = std::move(output); }

  /// \brief Charges extra gas from host-function work; traps the
  /// execution when the budget is exceeded.
  Status ChargeGas(uint64_t amount);

 private:
  friend class CvmVm;
  CvmInstance() = default;

  std::vector<uint8_t> memory_;
  HostEnv* env_ = nullptr;
  ByteView input_;
  Bytes output_;
  uint64_t gas_used_ = 0;
  uint64_t gas_limit_ = 0;
  uint64_t instructions_ = 0;
};

/// \brief Statistics exposed for tests/benchmarks.
struct CvmStats {
  uint64_t cache_hits = 0;
  uint64_t cache_misses = 0;
};

/// \brief The CONFIDE-VM engine. Thread-safe; one instance can be shared
/// by concurrent executors (the code cache is internally locked).
class CvmVm {
 public:
  CvmVm();

  /// \brief Runs `entry` of the wire-format module against `env`.
  Result<ExecutionResult> Execute(ByteView wire, std::string_view entry,
                                  ByteView input, HostEnv* env,
                                  const ExecConfig& config);

  /// \brief Runs an already-decoded module (used by tests and by engines
  /// that manage their own module cache).
  Result<ExecutionResult> ExecuteModule(const Module& module, std::string_view entry,
                                        ByteView input, HostEnv* env,
                                        const ExecConfig& config);

  /// \brief Registers a custom host function; returns its index.
  uint32_t RegisterHost(HostFunction fn);

  CvmStats stats() const;
  void ResetStats();

 private:
  Result<std::shared_ptr<const Module>> LoadModule(ByteView wire, const ExecConfig& config);

  std::vector<HostFunction> host_functions_;

  mutable std::mutex cache_mutex_;
  // Key: code hash hex + fused flag.
  std::unordered_map<std::string, std::shared_ptr<const Module>> code_cache_;
  CvmStats stats_;
};

/// \brief Gas schedule for CONFIDE-VM (uniform base cost, extra for memory
/// traffic and calls; storage costs are charged by the SDM layer).
struct CvmGas {
  static constexpr uint64_t kBase = 1;
  static constexpr uint64_t kMemOp = 2;
  static constexpr uint64_t kCall = 10;
  static constexpr uint64_t kHostCall = 50;
  static constexpr uint64_t kPerByteBulk = 1;  ///< per 8 bytes of memcpy/fill
};

}  // namespace confide::vm::cvm
