/// \file bytecode.h
/// \brief CONFIDE-VM instruction set and module format.
///
/// CONFIDE-VM is the paper's "WASM-derived smart contract virtual machine"
/// (§3.2.1): a stack machine over 64-bit values with a fixed-size linear
/// memory, LEB128-encoded modules, and a deliberately *reduced* opcode set
/// ("we optimize the instruction set for smart contract, reducing about
/// 50% instructions which helps to shrink the jumping table", §6.4 OPT4).
/// Control flow is flattened to branch offsets at decode time; the decoder
/// can additionally fuse hot instruction pairs into superinstructions.

#pragma once

#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/bytes.h"
#include "common/status.h"
#include "crypto/sha256.h"

namespace confide::vm::cvm {

/// \brief Wire + decoded opcodes. Values above kFusionBase exist only in
/// decoded form (produced by the fusion pass, never serialized).
enum class Op : uint8_t {
  kUnreachable = 0x00,
  kNop = 0x01,
  kReturn = 0x02,  ///< returns top-of-stack
  kCall = 0x03,    ///< a = function index
  kCallHost = 0x04,///< a = host function index
  kBr = 0x05,      ///< a = absolute decoded-instruction target
  kBrIf = 0x06,
  kDrop = 0x07,
  kSelect = 0x08,  ///< cond ? v1 : v2 (pops cond, v2, v1)

  kI64Const = 0x10,///< a = immediate
  kLocalGet = 0x11,
  kLocalSet = 0x12,
  kLocalTee = 0x13,

  kAdd = 0x20, kSub = 0x21, kMul = 0x22,
  kDivS = 0x23, kDivU = 0x24, kRemS = 0x25, kRemU = 0x26,
  kAnd = 0x27, kOr = 0x28, kXor = 0x29,
  kShl = 0x2a, kShrS = 0x2b, kShrU = 0x2c,

  kEqz = 0x30, kEq = 0x31, kNe = 0x32,
  kLtS = 0x33, kLtU = 0x34, kGtS = 0x35, kGtU = 0x36,
  kLeS = 0x37, kLeU = 0x38, kGeS = 0x39, kGeU = 0x3a,

  kLoad8U = 0x40,  ///< pops addr, pushes zero-extended byte
  kLoad32U = 0x41,
  kLoad64 = 0x42,
  kStore8 = 0x43,  ///< pops value, addr
  kStore32 = 0x44,
  kStore64 = 0x45,
  kMemCopy = 0x46, ///< pops len, src, dst
  kMemFill = 0x47, ///< pops len, byte, dst
  kMemSize = 0x48, ///< pushes linear memory size in bytes

  // --- decoded-only superinstructions (OPT4) ---
  kFusedAddImm = 0x60,      ///< push(pop() + a)
  kFusedIncLocal = 0x61,    ///< locals[a] += b
  kFusedCmpBrIf = 0x62,     ///< a = target, b = comparison Op; pops rhs, lhs
  kFusedLocalGet2 = 0x63,   ///< push locals[a]; push locals[b]
  kFusedConstStore64 = 0x64,///< mem[pop()] = a  (constant value store)
};

/// \brief One decoded instruction.
struct Instr {
  Op op;
  uint64_t a = 0;
  uint64_t b = 0;
};

/// \brief A function body.
struct Function {
  uint32_t param_count = 0;
  uint32_t local_count = 0;  ///< additional locals beyond params
  std::vector<Instr> code;   ///< decoded form
};

/// \brief A fully decoded, executable module.
struct Module {
  std::vector<Function> functions;
  std::unordered_map<std::string, uint32_t> exports;
  std::vector<std::pair<uint32_t, Bytes>> data_segments;  ///< (offset, bytes)
  uint32_t memory_bytes = 1 << 20;  ///< fixed linear memory size
  crypto::Hash256 code_hash{};      ///< hash of the wire bytes
  bool fused = false;               ///< fusion pass applied
};

/// \brief Serializes a module to the LEB128 wire format.
Bytes EncodeModule(const Module& module);

/// \brief Decodes and validates a wire module. When `fuse` is set, the
/// superinstruction pass rewrites hot patterns (OPT4).
Result<Module> DecodeModule(ByteView wire, bool fuse);

/// \brief Applies superinstruction fusion to a decoded module in place.
/// Branch targets are remapped to the shortened instruction stream.
Status FuseModule(Module* module);

}  // namespace confide::vm::cvm
