#include "vm/cvm/bytecode.h"

#include <unordered_set>

#include "serialize/leb128.h"

namespace confide::vm::cvm {

namespace {

using serialize::ReadSleb128;
using serialize::ReadUleb128;
using serialize::WriteSleb128;
using serialize::WriteUleb128;

constexpr char kMagic[4] = {'C', 'V', 'M', '1'};

bool HasImmediateU(Op op) {
  switch (op) {
    case Op::kLocalGet:
    case Op::kLocalSet:
    case Op::kLocalTee:
    case Op::kCall:
    case Op::kCallHost:
      return true;
    default:
      return false;
  }
}

bool IsComparison(Op op) {
  uint8_t v = uint8_t(op);
  return v >= uint8_t(Op::kEq) && v <= uint8_t(Op::kGeU);
}

bool IsWireOp(uint8_t v) {
  Op op = Op(v);
  switch (op) {
    case Op::kUnreachable: case Op::kNop: case Op::kReturn: case Op::kCall:
    case Op::kCallHost: case Op::kBr: case Op::kBrIf: case Op::kDrop:
    case Op::kSelect: case Op::kI64Const: case Op::kLocalGet:
    case Op::kLocalSet: case Op::kLocalTee:
      return true;
    default:
      break;
  }
  if (v >= uint8_t(Op::kAdd) && v <= uint8_t(Op::kShrU)) return true;
  if (v >= uint8_t(Op::kEqz) && v <= uint8_t(Op::kGeU)) return true;
  if (v >= uint8_t(Op::kLoad8U) && v <= uint8_t(Op::kMemSize)) return true;
  return false;
}

}  // namespace

Bytes EncodeModule(const Module& module) {
  Bytes out;
  Append(&out, ByteView(reinterpret_cast<const uint8_t*>(kMagic), 4));
  WriteUleb128(&out, module.memory_bytes);
  WriteUleb128(&out, module.data_segments.size());
  for (const auto& [offset, bytes] : module.data_segments) {
    WriteUleb128(&out, offset);
    WriteUleb128(&out, bytes.size());
    Append(&out, bytes);
  }
  WriteUleb128(&out, module.functions.size());
  for (const Function& fn : module.functions) {
    WriteUleb128(&out, fn.param_count);
    WriteUleb128(&out, fn.local_count);
    WriteUleb128(&out, fn.code.size());
    for (size_t i = 0; i < fn.code.size(); ++i) {
      const Instr& instr = fn.code[i];
      out.push_back(uint8_t(instr.op));
      if (instr.op == Op::kI64Const) {
        WriteSleb128(&out, int64_t(instr.a));
      } else if (instr.op == Op::kBr || instr.op == Op::kBrIf) {
        WriteSleb128(&out, int64_t(instr.a) - int64_t(i));  // relative
      } else if (HasImmediateU(instr.op)) {
        WriteUleb128(&out, instr.a);
      }
    }
  }
  WriteUleb128(&out, module.exports.size());
  for (const auto& [name, index] : module.exports) {
    WriteUleb128(&out, name.size());
    Append(&out, AsByteView(name));
    WriteUleb128(&out, index);
  }
  return out;
}

Result<Module> DecodeModule(ByteView wire, bool fuse) {
  if (wire.size() < 4 || std::memcmp(wire.data(), kMagic, 4) != 0) {
    return Status::Corruption("cvm: bad module magic");
  }
  size_t pos = 4;
  Module module;
  module.code_hash = crypto::Sha256::Digest(wire);

  CONFIDE_ASSIGN_OR_RETURN(uint64_t mem_bytes, ReadUleb128(wire, &pos));
  if (mem_bytes > (256u << 20)) {
    return Status::Corruption("cvm: memory request too large");
  }
  module.memory_bytes = uint32_t(mem_bytes);

  CONFIDE_ASSIGN_OR_RETURN(uint64_t n_segments, ReadUleb128(wire, &pos));
  for (uint64_t s = 0; s < n_segments; ++s) {
    CONFIDE_ASSIGN_OR_RETURN(uint64_t offset, ReadUleb128(wire, &pos));
    CONFIDE_ASSIGN_OR_RETURN(uint64_t len, ReadUleb128(wire, &pos));
    if (pos + len > wire.size()) return Status::Corruption("cvm: truncated data segment");
    if (offset + len > module.memory_bytes) {
      return Status::Corruption("cvm: data segment outside memory");
    }
    module.data_segments.emplace_back(
        uint32_t(offset), Bytes(wire.begin() + pos, wire.begin() + pos + len));
    pos += len;
  }

  CONFIDE_ASSIGN_OR_RETURN(uint64_t n_functions, ReadUleb128(wire, &pos));
  for (uint64_t f = 0; f < n_functions; ++f) {
    Function fn;
    CONFIDE_ASSIGN_OR_RETURN(uint64_t params, ReadUleb128(wire, &pos));
    CONFIDE_ASSIGN_OR_RETURN(uint64_t locals, ReadUleb128(wire, &pos));
    fn.param_count = uint32_t(params);
    fn.local_count = uint32_t(locals);
    CONFIDE_ASSIGN_OR_RETURN(uint64_t n_instrs, ReadUleb128(wire, &pos));
    fn.code.reserve(n_instrs);
    for (uint64_t i = 0; i < n_instrs; ++i) {
      if (pos >= wire.size()) return Status::Corruption("cvm: truncated code");
      uint8_t byte = wire[pos++];
      if (!IsWireOp(byte)) {
        return Status::Corruption("cvm: unknown opcode " + std::to_string(byte));
      }
      Instr instr{Op(byte), 0, 0};
      if (instr.op == Op::kI64Const) {
        CONFIDE_ASSIGN_OR_RETURN(int64_t v, ReadSleb128(wire, &pos));
        instr.a = uint64_t(v);
      } else if (instr.op == Op::kBr || instr.op == Op::kBrIf) {
        CONFIDE_ASSIGN_OR_RETURN(int64_t rel, ReadSleb128(wire, &pos));
        int64_t target = int64_t(i) + rel;
        if (target < 0 || uint64_t(target) > n_instrs) {
          return Status::Corruption("cvm: branch target out of range");
        }
        instr.a = uint64_t(target);
      } else if (HasImmediateU(instr.op)) {
        CONFIDE_ASSIGN_OR_RETURN(uint64_t v, ReadUleb128(wire, &pos));
        instr.a = v;
      }
      fn.code.push_back(instr);
    }
    // Validate local indices now that counts are known.
    uint64_t n_locals = uint64_t(fn.param_count) + fn.local_count;
    for (const Instr& instr : fn.code) {
      if ((instr.op == Op::kLocalGet || instr.op == Op::kLocalSet ||
           instr.op == Op::kLocalTee) &&
          instr.a >= n_locals) {
        return Status::Corruption("cvm: local index out of range");
      }
    }
    module.functions.push_back(std::move(fn));
  }

  // Validate call targets.
  for (const Function& fn : module.functions) {
    for (const Instr& instr : fn.code) {
      if (instr.op == Op::kCall && instr.a >= module.functions.size()) {
        return Status::Corruption("cvm: call target out of range");
      }
    }
  }

  CONFIDE_ASSIGN_OR_RETURN(uint64_t n_exports, ReadUleb128(wire, &pos));
  for (uint64_t e = 0; e < n_exports; ++e) {
    CONFIDE_ASSIGN_OR_RETURN(uint64_t name_len, ReadUleb128(wire, &pos));
    if (pos + name_len > wire.size()) return Status::Corruption("cvm: truncated export");
    std::string name(reinterpret_cast<const char*>(wire.data() + pos), name_len);
    pos += name_len;
    CONFIDE_ASSIGN_OR_RETURN(uint64_t index, ReadUleb128(wire, &pos));
    if (index >= module.functions.size()) {
      return Status::Corruption("cvm: export references unknown function");
    }
    module.exports[name] = uint32_t(index);
  }
  if (pos != wire.size()) return Status::Corruption("cvm: trailing bytes");

  if (fuse) {
    CONFIDE_RETURN_NOT_OK(FuseModule(&module));
  }
  return module;
}

Status FuseModule(Module* module) {
  if (module->fused) return Status::OK();
  for (Function& fn : module->functions) {
    const std::vector<Instr>& old_code = fn.code;
    const size_t n = old_code.size();

    // Instructions that are branch targets must stay at pattern starts.
    std::unordered_set<uint64_t> branch_targets;
    for (const Instr& instr : old_code) {
      if (instr.op == Op::kBr || instr.op == Op::kBrIf ||
          instr.op == Op::kFusedCmpBrIf) {
        branch_targets.insert(instr.a);
      }
    }
    auto interior_ok = [&](size_t start, size_t count) {
      for (size_t k = start + 1; k < start + count; ++k) {
        if (branch_targets.count(k)) return false;
      }
      return true;
    };

    std::vector<Instr> new_code;
    new_code.reserve(n);
    std::vector<uint64_t> index_map(n + 1);  // old index -> new index
    size_t i = 0;
    while (i < n) {
      index_map[i] = new_code.size();
      const Instr& a = old_code[i];

      // Pattern: LocalGet x; I64Const c; Add; LocalSet x  -> IncLocal(x, c)
      if (i + 3 < n && a.op == Op::kLocalGet &&
          old_code[i + 1].op == Op::kI64Const && old_code[i + 2].op == Op::kAdd &&
          old_code[i + 3].op == Op::kLocalSet && old_code[i + 3].a == a.a &&
          interior_ok(i, 4)) {
        for (size_t k = 1; k < 4; ++k) index_map[i + k] = new_code.size();
        new_code.push_back({Op::kFusedIncLocal, a.a, old_code[i + 1].a});
        i += 4;
        continue;
      }
      // Pattern: I64Const c; Add -> AddImm(c)
      if (i + 1 < n && a.op == Op::kI64Const && old_code[i + 1].op == Op::kAdd &&
          interior_ok(i, 2)) {
        index_map[i + 1] = new_code.size();
        new_code.push_back({Op::kFusedAddImm, a.a, 0});
        i += 2;
        continue;
      }
      // Pattern: <cmp>; BrIf t -> CmpBrIf(t, cmp)
      if (i + 1 < n && IsComparison(a.op) && old_code[i + 1].op == Op::kBrIf &&
          interior_ok(i, 2)) {
        index_map[i + 1] = new_code.size();
        new_code.push_back({Op::kFusedCmpBrIf, old_code[i + 1].a, uint64_t(a.op)});
        i += 2;
        continue;
      }
      // Pattern: LocalGet a; LocalGet b -> LocalGet2(a, b)
      if (i + 1 < n && a.op == Op::kLocalGet && old_code[i + 1].op == Op::kLocalGet &&
          interior_ok(i, 2)) {
        index_map[i + 1] = new_code.size();
        new_code.push_back({Op::kFusedLocalGet2, a.a, old_code[i + 1].a});
        i += 2;
        continue;
      }
      // Pattern: I64Const c; Store64 -> ConstStore64(c)
      if (i + 1 < n && a.op == Op::kI64Const && old_code[i + 1].op == Op::kStore64 &&
          interior_ok(i, 2)) {
        index_map[i + 1] = new_code.size();
        new_code.push_back({Op::kFusedConstStore64, a.a, 0});
        i += 2;
        continue;
      }

      new_code.push_back(a);
      ++i;
    }
    index_map[n] = new_code.size();

    // Remap branch targets into the fused stream.
    for (Instr& instr : new_code) {
      if (instr.op == Op::kBr || instr.op == Op::kBrIf ||
          instr.op == Op::kFusedCmpBrIf) {
        instr.a = index_map[instr.a];
      }
    }
    fn.code = std::move(new_code);
  }
  module->fused = true;
  return Status::OK();
}

}  // namespace confide::vm::cvm
