#include "vm/cvm/builder.h"

namespace confide::vm::cvm {

Result<Function> FunctionBuilder::Finish() const {
  Function fn;
  fn.param_count = param_count_;
  fn.local_count = local_count_;
  fn.code = code_;
  for (const Fixup& fixup : fixups_) {
    size_t target = labels_[fixup.label];
    if (target == kUnbound) {
      return Status::InvalidArgument("builder: unbound label");
    }
    fn.code[fixup.instr_index].a = target;
  }
  return fn;
}

Result<uint32_t> ModuleBuilder::AddFunction(const FunctionBuilder& builder) {
  CONFIDE_ASSIGN_OR_RETURN(Function fn, builder.Finish());
  functions_.push_back(std::move(fn));
  return uint32_t(functions_.size() - 1);
}

Module ModuleBuilder::Finish() const {
  Module module;
  module.functions = functions_;
  module.exports = exports_;
  module.data_segments = data_;
  module.memory_bytes = memory_bytes_;
  return module;
}

}  // namespace confide::vm::cvm
