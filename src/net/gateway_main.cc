/// \file gateway_main.cc
/// \brief The HTTP/JSON gateway daemon fronting a `confided` cluster.
///
/// See gateway.h for the endpoint surface and docs/OPERATIONS.md for the
/// launch recipe. SIGINT/SIGTERM stop the listener, dumping the metrics
/// registry when --metrics-out is set.

#include <csignal>
#include <cstdio>
#include <thread>

#include "common/metrics.h"
#include "net/config.h"
#include "net/gateway.h"

namespace {

std::atomic<bool> g_stop{false};

void HandleSignal(int) { g_stop.store(true); }

void DumpMetricsTo(const std::string& path) {
  if (path.empty()) return;
  const std::string json =
      confide::metrics::MetricsRegistry::Global().Snapshot().ToJson();
  std::FILE* file = std::fopen(path.c_str(), "wb");
  if (file == nullptr) {
    std::fprintf(stderr, "confide_gateway: cannot write %s\n", path.c_str());
    return;
  }
  std::fwrite(json.data(), 1, json.size(), file);
  std::fputc('\n', file);
  std::fclose(file);
}

}  // namespace

int main(int argc, char** argv) {
  using namespace confide;

  auto cfg = net::GatewayConfig::FromArgs(argc, argv);
  if (!cfg.ok()) {
    std::fprintf(stderr, "confide_gateway: %s\n", cfg.status().ToString().c_str());
    return 2;
  }

  net::GatewayOptions options;
  options.nodes = cfg->nodes;
  options.listen_host = cfg->listen_host;
  options.listen_port = cfg->listen_port;
  net::Gateway gateway(options);
  if (Status st = gateway.Start(); !st.ok()) {
    std::fprintf(stderr, "confide_gateway: start: %s\n", st.ToString().c_str());
    return 1;
  }

  std::signal(SIGINT, HandleSignal);
  std::signal(SIGTERM, HandleSignal);

  // Readiness line (parsed by tools/cluster_smoke.py).
  std::printf("confide_gateway: ready on port %u (%zu nodes)\n", gateway.port(),
              cfg->nodes.size());
  std::fflush(stdout);

  while (!g_stop.load()) {
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
  }

  gateway.Stop();
  DumpMetricsTo(cfg->metrics_out);
  return 0;
}
