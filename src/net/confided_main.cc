/// \file confided_main.cc
/// \brief The CONFIDE node daemon: one process per cluster member.
///
/// Bootstraps a full node (platform + enclaves + engines + chain node,
/// system.h) from the shared consortium seed, joins the cluster over the
/// framed TCP transport, catches up from a live peer, then replicates
/// blocks — the leader of the current view (node view % n) proposes on a
/// tick, replicas follow the PBFT-lite vote rounds and elect a new
/// leader when the current one falls silent (cluster.h §Leader
/// failover). SIGINT/SIGTERM drain and exit, dumping the metrics
/// registry when --metrics-out is set.
///
/// docs/OPERATIONS.md walks through launching a 3-node cluster.

#include <algorithm>
#include <csignal>
#include <cstdio>
#include <thread>

#include "common/metrics.h"
#include "net/cluster.h"
#include "net/config.h"
#include "net/tcp_transport.h"

namespace {

std::atomic<bool> g_stop{false};

void HandleSignal(int) { g_stop.store(true); }

void DumpMetricsTo(const std::string& path) {
  if (path.empty()) return;
  const std::string json =
      confide::metrics::MetricsRegistry::Global().Snapshot().ToJson();
  std::FILE* file = std::fopen(path.c_str(), "wb");
  if (file == nullptr) {
    std::fprintf(stderr, "confided: cannot write %s\n", path.c_str());
    return;
  }
  std::fwrite(json.data(), 1, json.size(), file);
  std::fputc('\n', file);
  std::fclose(file);
}

}  // namespace

int main(int argc, char** argv) {
  using namespace confide;

  auto cfg = net::NodeConfig::FromArgs(argc, argv);
  if (!cfg.ok()) {
    std::fprintf(stderr, "confided: %s\n", cfg.status().ToString().c_str());
    return 2;
  }

  core::SystemOptions sys_options;
  sys_options.seed = cfg->seed;
  sys_options.block_max_bytes = cfg->block_max_bytes;
  sys_options.parallelism = cfg->parallelism;
  sys_options.state_wal_dir = cfg->state_dir;
  // Every node runs BootstrapFirst with the shared seed: KM-enclave key
  // derivation is a pure function of the seed, so all processes hold the
  // same consortium keys (the simulated stand-in for MAP/KMS
  // provisioning — see system.h and docs/OPERATIONS.md §Keys).
  auto system = core::ConfideSystem::BootstrapFirst(sys_options);
  if (!system.ok()) {
    std::fprintf(stderr, "confided: bootstrap: %s\n",
                 system.status().ToString().c_str());
    return 1;
  }

  net::TcpTransportOptions transport_options;
  transport_options.self_id = cfg->node_id;
  transport_options.peers = cfg->peers;
  transport_options.listen_host = cfg->listen_host;
  auto transport = std::make_unique<net::TcpTransport>(transport_options);
  net::TcpTransport* tcp = transport.get();

  net::ClusterOptions cluster_options;
  cluster_options.heartbeat_ms = cfg->heartbeat_ms;
  cluster_options.view_timeout_ms = cfg->view_timeout_ms;
  cluster_options.view_timeout_max_ms =
      std::max<uint64_t>(cfg->view_timeout_ms * 16, cfg->view_timeout_ms);
  // Distinct per-node jitter so replicas' election timers do not stampede.
  cluster_options.election_seed = cfg->seed + cfg->node_id;
  net::ClusterNode cluster(system->get(), std::move(transport),
                           cluster_options);
  if (Status st = cluster.Start(); !st.ok()) {
    std::fprintf(stderr, "confided: start: %s\n", st.ToString().c_str());
    return 1;
  }

  std::signal(SIGINT, HandleSignal);
  std::signal(SIGTERM, HandleSignal);

  // Readiness line (parsed by tools/cluster_smoke.py).
  std::printf("confided: node %u ready on port %u (height %llu)\n",
              cfg->node_id, tcp->listen_port(),
              static_cast<unsigned long long>(cluster.Height()));
  std::fflush(stdout);

  // Rejoin: pull any blocks committed while this node was down, trying
  // every peer (the old leader may be the one that crashed). Peers may
  // not be up yet on a cold start — failures are benign (the gap-repair
  // pull fires on the first pre-prepare or heartbeat past our tip).
  if (!cluster.is_leader()) {
    const uint32_t n = uint32_t(cfg->peers.size());
    for (int attempt = 0; attempt < 5 && !g_stop.load(); ++attempt) {
      const uint32_t peer = (cluster.leader() + attempt) % n;
      if (peer != cfg->node_id && cluster.CatchUp(peer).ok()) break;
      std::this_thread::sleep_for(std::chrono::milliseconds(200));
    }
  }

  while (!g_stop.load()) {
    // Leadership is per-view: re-check every iteration so this process
    // starts proposing the moment it wins an election and stops the
    // moment it is deposed.
    if (cluster.is_leader()) {
      auto committed = cluster.LeaderTick();
      if (!committed.ok()) {
        std::fprintf(stderr, "confided: leader tick: %s\n",
                     committed.status().ToString().c_str());
      } else if (*committed > 0) {
        continue;  // keep draining a busy pool without sleeping
      }
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(cfg->tick_ms));
  }

  std::printf("confided: node %u stopping at height %llu\n", cfg->node_id,
              static_cast<unsigned long long>(cluster.Height()));
  std::fflush(stdout);
  cluster.Stop();
  DumpMetricsTo(cfg->metrics_out);
  return 0;
}
