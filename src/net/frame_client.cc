#include "net/frame_client.h"

#include <netdb.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

#include "net/tcp_transport.h"

namespace confide::net {

Result<FrameClient> FrameClient::Dial(const std::string& addr) {
  CONFIDE_ASSIGN_OR_RETURN(auto host_port, SplitHostPort(addr));
  return FrameClient(host_port.first, host_port.second);
}

FrameClient::FrameClient(FrameClient&& other) noexcept
    : host_(std::move(other.host_)),
      port_(other.port_),
      fd_(other.fd_),
      assembler_(std::move(other.assembler_)) {
  other.fd_ = -1;
}

FrameClient& FrameClient::operator=(FrameClient&& other) noexcept {
  if (this != &other) {
    Disconnect();
    host_ = std::move(other.host_);
    port_ = other.port_;
    fd_ = other.fd_;
    assembler_ = std::move(other.assembler_);
    other.fd_ = -1;
  }
  return *this;
}

FrameClient::~FrameClient() { Disconnect(); }

void FrameClient::Disconnect() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
  assembler_ = FrameAssembler();
}

Status FrameClient::EnsureConnected() {
  if (fd_ >= 0) return Status::OK();
  addrinfo hints{};
  hints.ai_family = AF_INET;
  hints.ai_socktype = SOCK_STREAM;
  addrinfo* res = nullptr;
  const std::string port_str = std::to_string(port_);
  int rc = ::getaddrinfo(host_.c_str(), port_str.c_str(), &hints, &res);
  if (rc != 0 || res == nullptr) {
    return Status::Unavailable("frame client: resolve " + host_ + ": " +
                               gai_strerror(rc));
  }
  int fd = ::socket(res->ai_family, res->ai_socktype, res->ai_protocol);
  if (fd < 0) {
    ::freeaddrinfo(res);
    return Status::Unavailable("frame client: socket(): " +
                               std::string(std::strerror(errno)));
  }
  rc = ::connect(fd, res->ai_addr, res->ai_addrlen);
  ::freeaddrinfo(res);
  if (rc != 0) {
    ::close(fd);
    return Status::Unavailable("frame client: connect " + host_ + ":" +
                               port_str + ": " + std::strerror(errno));
  }
  int one = 1;
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  fd_ = fd;
  assembler_ = FrameAssembler();
  return Status::OK();
}

Result<OwnedFrame> FrameClient::RoundTrip(MsgType type, ByteView body) {
  CONFIDE_RETURN_NOT_OK(EnsureConnected());
  const Bytes frame = EncodeFrame(type, body);
  size_t off = 0;
  while (off < frame.size()) {
    ssize_t n = ::send(fd_, frame.data() + off, frame.size() - off, MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      Disconnect();
      return Status::Unavailable("frame client: send: " +
                                 std::string(std::strerror(errno)));
    }
    off += size_t(n);
  }
  uint8_t chunk[4096];
  while (true) {
    FrameView view;
    CONFIDE_ASSIGN_OR_RETURN(bool ready, assembler_.Next(&view));
    if (ready) {
      return OwnedFrame{view.type, ToBytes(view.body)};
    }
    ssize_t n = ::read(fd_, chunk, sizeof(chunk));
    if (n <= 0) {
      if (n < 0 && errno == EINTR) continue;
      Disconnect();
      return Status::Unavailable("frame client: connection closed mid-reply");
    }
    assembler_.Append(ByteView(chunk, size_t(n)));
  }
}

Result<OwnedFrame> FrameClient::Call(MsgType type, ByteView body) {
  std::lock_guard<std::mutex> lock(mu_);
  auto reply = RoundTrip(type, body);
  if (reply.ok()) return reply;
  // One retry on a fresh connection: the node may have restarted, or a
  // kept-alive connection may have been closed under us.
  Disconnect();
  return RoundTrip(type, body);
}

}  // namespace confide::net
