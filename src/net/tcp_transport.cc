#include "net/tcp_transport.h"

#include <arpa/inet.h>
#include <netdb.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cstdlib>
#include <cstring>

#include "common/fault.h"
#include "common/logging.h"
#include "common/metrics.h"
#include "serialize/rlp.h"

namespace confide::net {

namespace {

struct NetMetrics {
  metrics::Counter* send = metrics::GetCounter("net.send.count");
  metrics::Counter* send_bytes = metrics::GetCounter("net.send.bytes");
  metrics::Counter* send_drop = metrics::GetCounter("net.send.drop.count");
  metrics::Counter* send_error = metrics::GetCounter("net.send.error.count");
  metrics::Counter* recv = metrics::GetCounter("net.recv.count");
  metrics::Counter* recv_bytes = metrics::GetCounter("net.recv.bytes");
  metrics::Counter* frame_corrupt = metrics::GetCounter("net.frame.corrupt.count");
  metrics::Counter* conn_accept = metrics::GetCounter("net.conn.accept.count");
  metrics::Counter* conn_connect = metrics::GetCounter("net.conn.connect.count");
  metrics::Counter* conn_close = metrics::GetCounter("net.conn.close.count");
  metrics::Counter* conn_error = metrics::GetCounter("net.conn.error.count");

  static NetMetrics& Get() {
    static NetMetrics m;
    return m;
  }
};

/// Encodes the kHello body: [node_id, role].
Bytes HelloBody(uint32_t node_id, PeerRole role) {
  serialize::RlpWriter w;
  size_t list = w.BeginList();
  w.WriteU64(node_id);
  w.WriteU64(uint64_t(role));
  w.EndList(list);
  return std::move(w).Take();
}

}  // namespace

Result<std::pair<std::string, uint16_t>> SplitHostPort(const std::string& addr) {
  size_t colon = addr.rfind(':');
  if (colon == std::string::npos || colon == 0 || colon + 1 == addr.size()) {
    return Status::InvalidArgument("net: address '" + addr +
                                   "' is not host:port");
  }
  char* end = nullptr;
  unsigned long port = std::strtoul(addr.c_str() + colon + 1, &end, 10);
  if (end == nullptr || *end != '\0' || port > 65535) {
    return Status::InvalidArgument("net: bad port in '" + addr + "'");
  }
  return std::make_pair(addr.substr(0, colon), uint16_t(port));
}

struct TcpTransport::Connection {
  int fd = -1;
  /// Peer node id, or kClientPeer until a kHello identifies the peer.
  std::atomic<uint32_t> peer_id{kClientPeer};
  std::atomic<bool> alive{true};
  std::atomic<bool> closed{false};
  std::mutex write_mu;

  /// Shutdown-only: unblocks any reader parked in ::read(), but the fd
  /// stays open until the last shared_ptr drops. Closing the fd here would
  /// race a concurrent read and could hand the fd number to an unrelated
  /// accept() before the reader notices.
  void Close() {
    alive.store(false, std::memory_order_relaxed);
    bool expected = false;
    if (closed.compare_exchange_strong(expected, true)) {
      ::shutdown(fd, SHUT_RDWR);
      NetMetrics::Get().conn_close->Increment();
    }
  }

  ~Connection() {
    Close();
    if (fd >= 0) ::close(fd);
  }

  /// Write exactly `data`, looping over short writes. Returns false on
  /// any socket error (connection is marked dead).
  bool WriteAll(ByteView data) {
    size_t off = 0;
    while (off < data.size()) {
      ssize_t n = ::send(fd, data.data() + off, data.size() - off, MSG_NOSIGNAL);
      if (n < 0) {
        if (errno == EINTR) continue;
        alive.store(false, std::memory_order_relaxed);
        return false;
      }
      off += size_t(n);
    }
    return true;
  }
};

TcpTransport::TcpTransport(TcpTransportOptions options)
    : options_(std::move(options)) {}

TcpTransport::~TcpTransport() { Stop(); }

void TcpTransport::SetHandler(HandlerFn handler) { handler_ = std::move(handler); }

Status TcpTransport::Start() {
  if (options_.self_id >= options_.peers.size()) {
    return Status::InvalidArgument("tcp transport: self_id out of range");
  }
  uint16_t port = options_.listen_port;
  if (port == 0) {
    CONFIDE_ASSIGN_OR_RETURN(auto self_addr,
                             SplitHostPort(options_.peers[options_.self_id]));
    port = self_addr.second;
  }

  listen_fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  if (listen_fd_ < 0) {
    return Status::Unavailable("tcp transport: socket(): " +
                               std::string(std::strerror(errno)));
  }
  int one = 1;
  ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  if (options_.listen_host == "0.0.0.0") {
    addr.sin_addr.s_addr = INADDR_ANY;
  } else if (::inet_pton(AF_INET, options_.listen_host.c_str(), &addr.sin_addr) != 1) {
    ::close(listen_fd_);
    listen_fd_ = -1;
    return Status::InvalidArgument("tcp transport: bad listen host '" +
                                   options_.listen_host + "'");
  }
  if (::bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) < 0) {
    Status st = Status::Unavailable("tcp transport: bind(" + std::to_string(port) +
                                    "): " + std::strerror(errno));
    ::close(listen_fd_);
    listen_fd_ = -1;
    return st;
  }
  if (::listen(listen_fd_, 64) < 0) {
    Status st = Status::Unavailable("tcp transport: listen(): " +
                                    std::string(std::strerror(errno)));
    ::close(listen_fd_);
    listen_fd_ = -1;
    return st;
  }
  sockaddr_in bound{};
  socklen_t bound_len = sizeof(bound);
  ::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&bound), &bound_len);
  bound_port_ = ntohs(bound.sin_port);

  running_.store(true);
  accept_thread_ = std::thread([this] { AcceptLoop(); });
  return Status::OK();
}

void TcpTransport::Stop() {
  bool was_running = running_.exchange(false);
  if (!was_running && listen_fd_ < 0) return;
  std::vector<std::shared_ptr<Connection>> conns;
  std::vector<std::thread> readers;
  {
    std::lock_guard<std::mutex> lock(mu_);
    conns = inbound_;
    for (auto& [peer, conn] : outbound_) conns.push_back(conn);
    inbound_.clear();
    outbound_.clear();
    readers.swap(reader_threads_);
  }
  for (auto& conn : conns) conn->Close();
  for (auto& t : readers) {
    if (t.joinable()) t.join();
  }
  if (accept_thread_.joinable()) accept_thread_.join();
  // The accept thread is gone (the running_ flip bounds its poll at 100 ms),
  // so the listener can be closed without racing AcceptLoop's reads of
  // listen_fd_.
  if (listen_fd_ >= 0) {
    ::close(listen_fd_);
    listen_fd_ = -1;
  }
}

void TcpTransport::AcceptLoop() {
  while (running_.load(std::memory_order_relaxed)) {
    pollfd pfd{listen_fd_, POLLIN, 0};
    int ready = ::poll(&pfd, 1, 100);
    if (!running_.load(std::memory_order_relaxed)) break;
    if (ready <= 0) continue;
    int fd = ::accept(listen_fd_, nullptr, nullptr);
    if (fd < 0) {
      if (errno == EINTR) continue;
      break;  // listener closed
    }
    int one = 1;
    ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
    NetMetrics::Get().conn_accept->Increment();
    auto conn = std::make_shared<Connection>();
    conn->fd = fd;
    std::lock_guard<std::mutex> lock(mu_);
    if (!running_.load(std::memory_order_relaxed)) {
      conn->Close();
      break;
    }
    inbound_.push_back(conn);
    reader_threads_.emplace_back([this, conn] { ReadLoop(conn); });
  }
}

void TcpTransport::ReadLoop(std::shared_ptr<Connection> conn) {
  FrameAssembler assembler;
  uint8_t buf[64 * 1024];
  bool stream_ok = true;
  while (running_.load(std::memory_order_relaxed) &&
         conn->alive.load(std::memory_order_relaxed)) {
    ssize_t n = ::read(conn->fd, buf, sizeof(buf));
    if (n == 0) {
      // EOF: a connection that ends mid-frame was dropped (or truncated
      // by injection) while a frame was in flight.
      if (!assembler.Finish().ok()) {
        NetMetrics::Get().frame_corrupt->Increment();
      }
      break;
    }
    if (n < 0) {
      if (errno == EINTR) continue;
      break;  // reset/shutdown
    }
    if (fault::FaultInjector::Global().ShouldFail("fault.net.recv.corrupt")) {
      buf[0] ^= 0x55;
      std::lock_guard<std::mutex> lock(mu_);
      recv_corrupted_peers_[conn->peer_id.load(std::memory_order_relaxed)] = true;
    }
    assembler.Append(ByteView(buf, size_t(n)));
    while (true) {
      FrameView frame;
      auto next = assembler.Next(&frame);
      if (!next.ok()) {
        // Unrecoverable stream: count, drop the connection. The peer's
        // reconnect gives framing a clean start.
        NetMetrics::Get().frame_corrupt->Increment();
        CONFIDE_LOG(kWarn, "net", "corrupt frame stream: " +
                                      next.status().ToString());
        stream_ok = false;
        break;
      }
      if (!*next) break;  // need more bytes
      NetMetrics::Get().recv->Increment();
      NetMetrics::Get().recv_bytes->Increment(frame.body.size());
      const uint32_t from = conn->peer_id.load(std::memory_order_relaxed);
      if (frame.type == MsgType::kHello) {
        auto reader = serialize::RlpReader::AtList(frame.body);
        if (reader.ok()) {
          auto id = reader->NextU64();
          auto role = reader->NextU64();
          if (id.ok() && role.ok() && *role == uint64_t(PeerRole::kNode) &&
              *id < options_.peers.size()) {
            conn->peer_id.store(uint32_t(*id), std::memory_order_relaxed);
          }
        }
        continue;
      }
      // A clean frame from a peer whose earlier stream was corrupted by
      // injection closes the recovery loop: reconnect + redelivery works.
      if (from != kClientPeer) {
        std::lock_guard<std::mutex> lock(mu_);
        auto it = recv_corrupted_peers_.find(from);
        if (it != recv_corrupted_peers_.end() && it->second) {
          it->second = false;
          fault::NoteRecovered("fault.net.recv.corrupt");
        }
      }
      if (!handler_) continue;
      std::optional<OwnedFrame> reply = handler_(from, frame.type, frame.body);
      if (reply.has_value()) {
        Bytes wire = EncodeFrame(reply->type, reply->body);
        std::lock_guard<std::mutex> lock(conn->write_mu);
        if (conn->WriteAll(wire)) {
          NetMetrics::Get().send->Increment();
          NetMetrics::Get().send_bytes->Increment(reply->body.size());
        } else {
          NetMetrics::Get().send_error->Increment();
        }
      }
    }
    if (!stream_ok) break;
  }
  conn->Close();
  // Drop the maps' references so the destructor can release the fd; the
  // thread's own shared_ptr is then the last holder.
  {
    std::lock_guard<std::mutex> lock(mu_);
    inbound_.erase(std::remove(inbound_.begin(), inbound_.end(), conn),
                   inbound_.end());
    const uint32_t peer = conn->peer_id.load(std::memory_order_relaxed);
    auto it = outbound_.find(peer);
    if (it != outbound_.end() && it->second == conn) outbound_.erase(it);
  }
}

Result<std::shared_ptr<TcpTransport::Connection>> TcpTransport::OutboundTo(
    uint32_t peer) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = outbound_.find(peer);
    if (it != outbound_.end() && it->second->alive.load(std::memory_order_relaxed)) {
      return it->second;
    }
  }
  if (peer >= options_.peers.size()) {
    return Status::InvalidArgument("tcp transport: unknown peer " +
                                   std::to_string(peer));
  }
  CONFIDE_ASSIGN_OR_RETURN(auto host_port, SplitHostPort(options_.peers[peer]));

  uint64_t backoff_ms = options_.connect_backoff_ms;
  Status last = Status::Unavailable("tcp transport: no connect attempt made");
  for (uint32_t attempt = 0; attempt < options_.connect_attempts; ++attempt) {
    if (attempt > 0) {
      std::this_thread::sleep_for(std::chrono::milliseconds(backoff_ms));
      backoff_ms *= 2;
    }
    if (fault::FaultInjector::Global().ShouldFail("fault.net.connect.fail")) {
      std::lock_guard<std::mutex> lock(mu_);
      injected_connect_fail_ = true;
      last = Status::Unavailable("tcp transport: injected connect failure");
      NetMetrics::Get().conn_error->Increment();
      continue;
    }
    addrinfo hints{};
    hints.ai_family = AF_INET;
    hints.ai_socktype = SOCK_STREAM;
    addrinfo* res = nullptr;
    std::string port_str = std::to_string(host_port.second);
    int rc = ::getaddrinfo(host_port.first.c_str(), port_str.c_str(), &hints, &res);
    if (rc != 0 || res == nullptr) {
      last = Status::Unavailable("tcp transport: resolve " + host_port.first +
                                 ": " + gai_strerror(rc));
      NetMetrics::Get().conn_error->Increment();
      continue;
    }
    int fd = ::socket(res->ai_family, res->ai_socktype, res->ai_protocol);
    if (fd < 0) {
      ::freeaddrinfo(res);
      last = Status::Unavailable("tcp transport: socket(): " +
                                 std::string(std::strerror(errno)));
      continue;
    }
    rc = ::connect(fd, res->ai_addr, res->ai_addrlen);
    ::freeaddrinfo(res);
    if (rc != 0) {
      ::close(fd);
      last = Status::Unavailable("tcp transport: connect " +
                                 options_.peers[peer] + ": " +
                                 std::strerror(errno));
      NetMetrics::Get().conn_error->Increment();
      continue;
    }
    int one = 1;
    ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
    NetMetrics::Get().conn_connect->Increment();

    auto conn = std::make_shared<Connection>();
    conn->fd = fd;
    conn->peer_id.store(peer, std::memory_order_relaxed);
    // Identify ourselves. The hello is part of connection establishment
    // and bypasses the send fault sites (they model frame loss on an
    // established link).
    Bytes hello = EncodeFrame(MsgType::kHello,
                              HelloBody(options_.self_id, PeerRole::kNode));
    {
      std::lock_guard<std::mutex> wlock(conn->write_mu);
      if (!conn->WriteAll(hello)) {
        last = Status::Unavailable("tcp transport: hello write failed");
        NetMetrics::Get().conn_error->Increment();
        continue;
      }
    }
    {
      std::lock_guard<std::mutex> lock(mu_);
      if (injected_connect_fail_) {
        injected_connect_fail_ = false;
        fault::NoteRecovered("fault.net.connect.fail");
      }
      outbound_[peer] = conn;
      if (running_.load(std::memory_order_relaxed)) {
        reader_threads_.emplace_back([this, conn] { ReadLoop(conn); });
      }
    }
    return conn;
  }
  return last;
}

Status TcpTransport::WriteFrame(Connection* conn, uint32_t peer, MsgType type,
                                ByteView body) {
  uint64_t arg = 0;
  if (fault::FaultInjector::Global().ShouldFail("fault.net.send.delay", &arg)) {
    std::this_thread::sleep_for(std::chrono::milliseconds(arg == 0 ? 5 : arg));
  }
  if (fault::FaultInjector::Global().ShouldFail("fault.net.send.drop")) {
    NetMetrics::Get().send_drop->Increment();
    return Status::OK();  // fire-and-forget: loss is legal
  }
  Bytes wire = EncodeFrame(type, body);
  if (fault::FaultInjector::Global().ShouldFail("fault.net.send.truncate")) {
    std::lock_guard<std::mutex> wlock(conn->write_mu);
    (void)conn->WriteAll(ByteView(wire.data(), wire.size() / 2));
    conn->Close();  // peer's stream now ends mid-frame
    std::lock_guard<std::mutex> lock(mu_);
    truncate_poisoned_[peer] = true;
    return Status::OK();
  }
  bool ok;
  {
    std::lock_guard<std::mutex> wlock(conn->write_mu);
    ok = conn->WriteAll(wire);
  }
  if (!ok) {
    NetMetrics::Get().send_error->Increment();
    return Status::Unavailable("tcp transport: write to peer " +
                               std::to_string(peer) + " failed");
  }
  NetMetrics::Get().send->Increment();
  NetMetrics::Get().send_bytes->Increment(body.size());
  {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = truncate_poisoned_.find(peer);
    if (it != truncate_poisoned_.end() && it->second) {
      it->second = false;
      // A full frame reached the peer on a fresh connection after an
      // injected truncation: the reconnect path healed the link.
      fault::NoteRecovered("fault.net.send.truncate");
    }
  }
  return Status::OK();
}

Status TcpTransport::Send(uint32_t peer, MsgType type, ByteView body) {
  if (!running_.load(std::memory_order_relaxed)) {
    return Status::Unavailable("tcp transport: not started");
  }
  if (peer == options_.self_id) {
    return Status::InvalidArgument("tcp transport: send to self");
  }
  Status last = Status::OK();
  for (int attempt = 0; attempt < 2; ++attempt) {
    auto conn = OutboundTo(peer);
    if (!conn.ok()) return conn.status();
    last = WriteFrame(conn->get(), peer, type, body);
    if (last.ok()) return last;
    // Dead connection: drop it and redial once.
    std::lock_guard<std::mutex> lock(mu_);
    auto it = outbound_.find(peer);
    if (it != outbound_.end() && it->second == *conn) outbound_.erase(it);
  }
  return last;
}

Status TcpTransport::Broadcast(MsgType type, ByteView body) {
  if (!running_.load(std::memory_order_relaxed)) {
    return Status::Unavailable("tcp transport: not started");
  }
  for (uint32_t peer = 0; peer < options_.peers.size(); ++peer) {
    if (peer == options_.self_id) continue;
    Status sent = Send(peer, type, body);
    if (!sent.ok()) {
      NetMetrics::Get().send_error->Increment();
      CONFIDE_LOG(kDebug, "net",
                  "broadcast to peer " + std::to_string(peer) +
                      " failed: " + sent.ToString());
    }
  }
  return Status::OK();
}

}  // namespace confide::net
