/// \file http.h
/// \brief Minimal HTTP/1.1 server and client for the gateway plane.
///
/// Enough of HTTP/1.1 for the gateway's JSON API and the open-loop load
/// driver: request line + headers + Content-Length bodies, keep-alive
/// connections, nothing else (no chunked encoding, no TLS). Limits guard
/// every input: header block ≤ 16 KiB, body ≤ 4 MiB, and all parsing is
/// remaining-based (no length arithmetic on attacker bytes).
///
/// The server is thread-per-connection — the right shape for tens of
/// concurrent clients (a gateway fronting a consortium cluster), not a
/// C10K design. The client keeps its one connection alive across
/// requests so the load driver does not exhaust ephemeral ports.

#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "common/bytes.h"
#include "common/status.h"

namespace confide::net {

inline constexpr size_t kMaxHttpHeaderBytes = 16 * 1024;
inline constexpr size_t kMaxHttpBodyBytes = 4u << 20;

struct HttpRequest {
  std::string method;   ///< "GET", "POST", ...
  std::string path;     ///< path + query, as sent
  std::map<std::string, std::string> headers;  ///< keys lower-cased
  std::string body;
};

struct HttpResponse {
  int status = 200;
  std::string content_type = "application/json";
  std::string body;

  static HttpResponse Json(int status, std::string body) {
    HttpResponse r;
    r.status = status;
    r.body = std::move(body);
    return r;
  }
  static HttpResponse Text(int status, std::string body) {
    HttpResponse r;
    r.status = status;
    r.content_type = "text/plain";
    r.body = std::move(body);
    return r;
  }
};

/// \brief Thread-per-connection HTTP server.
class HttpServer {
 public:
  using Handler = std::function<HttpResponse(const HttpRequest&)>;

  HttpServer() = default;
  ~HttpServer();
  HttpServer(const HttpServer&) = delete;
  HttpServer& operator=(const HttpServer&) = delete;

  /// \brief Binds `host:port` (port 0 = ephemeral; see port()) and starts
  /// serving `handler` on a background accept thread.
  Status Start(const std::string& host, uint16_t port, Handler handler);

  void Stop();

  uint16_t port() const { return port_; }

 private:
  void AcceptLoop();
  void Serve(int fd);

  Handler handler_;
  std::atomic<bool> running_{false};
  int listen_fd_ = -1;
  uint16_t port_ = 0;
  std::thread accept_thread_;
  std::mutex mu_;
  std::vector<std::thread> workers_;
  std::vector<int> conn_fds_;
};

/// \brief Blocking keep-alive HTTP client bound to one host:port. Not
/// thread-safe; use one per worker thread.
class HttpClient {
 public:
  /// \brief `base_url` like "http://127.0.0.1:8080".
  static Result<HttpClient> Connect(const std::string& base_url);

  HttpClient(HttpClient&& other) noexcept;
  HttpClient& operator=(HttpClient&& other) noexcept;
  HttpClient(const HttpClient&) = delete;
  HttpClient& operator=(const HttpClient&) = delete;
  ~HttpClient();

  Result<HttpResponse> Get(const std::string& path);
  Result<HttpResponse> Post(const std::string& path, const std::string& body,
                            const std::string& content_type = "application/json");

 private:
  HttpClient(std::string host, uint16_t port) : host_(std::move(host)), port_(port) {}

  Result<HttpResponse> RoundTrip(const std::string& request);
  Status EnsureConnected();
  void Disconnect();

  std::string host_;
  uint16_t port_ = 0;
  int fd_ = -1;
};

}  // namespace confide::net
