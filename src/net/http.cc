#include "net/http.h"

#include <arpa/inet.h>
#include <netdb.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstring>

#include "common/metrics.h"

namespace confide::net {

namespace {

const char* ReasonPhrase(int status) {
  switch (status) {
    case 200: return "OK";
    case 202: return "Accepted";
    case 400: return "Bad Request";
    case 404: return "Not Found";
    case 405: return "Method Not Allowed";
    case 413: return "Payload Too Large";
    case 500: return "Internal Server Error";
    case 503: return "Service Unavailable";
    default: return "Status";
  }
}

std::string ToLower(std::string s) {
  std::transform(s.begin(), s.end(), s.begin(),
                 [](unsigned char c) { return char(std::tolower(c)); });
  return s;
}

/// Reads from `fd` until the header terminator is buffered (or limits
/// hit). Returns false on EOF-before-request / oversized headers.
bool ReadUntilHeaderEnd(int fd, std::string* buf, size_t* header_end) {
  char chunk[4096];
  while (true) {
    size_t pos = buf->find("\r\n\r\n");
    if (pos != std::string::npos) {
      *header_end = pos + 4;
      return true;
    }
    if (buf->size() > kMaxHttpHeaderBytes) return false;
    ssize_t n = ::read(fd, chunk, sizeof(chunk));
    if (n <= 0) {
      if (n < 0 && errno == EINTR) continue;
      return false;
    }
    buf->append(chunk, size_t(n));
  }
}

bool ReadExact(int fd, std::string* buf, size_t want) {
  char chunk[4096];
  while (buf->size() < want) {
    size_t need = want - buf->size();
    ssize_t n = ::read(fd, chunk, std::min(need, sizeof(chunk)));
    if (n <= 0) {
      if (n < 0 && errno == EINTR) continue;
      return false;
    }
    buf->append(chunk, size_t(n));
  }
  return true;
}

bool WriteAll(int fd, const std::string& data) {
  size_t off = 0;
  while (off < data.size()) {
    ssize_t n = ::send(fd, data.data() + off, data.size() - off, MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    off += size_t(n);
  }
  return true;
}

/// Parses one request from `buf` (headers complete at header_end).
/// Returns the number of bytes consumed, 0 when the body is not complete
/// yet, or nullopt on a malformed request.
Result<HttpRequest> ParseRequest(const std::string& head) {
  HttpRequest req;
  size_t line_end = head.find("\r\n");
  if (line_end == std::string::npos) {
    return Status::InvalidArgument("http: missing request line");
  }
  const std::string request_line = head.substr(0, line_end);
  size_t sp1 = request_line.find(' ');
  size_t sp2 = request_line.rfind(' ');
  if (sp1 == std::string::npos || sp2 == sp1) {
    return Status::InvalidArgument("http: malformed request line");
  }
  req.method = request_line.substr(0, sp1);
  req.path = request_line.substr(sp1 + 1, sp2 - sp1 - 1);
  if (req.method.empty() || req.path.empty() || req.path[0] != '/') {
    return Status::InvalidArgument("http: malformed method/path");
  }
  const std::string version = request_line.substr(sp2 + 1);
  if (version.rfind("HTTP/1.", 0) != 0) {
    return Status::InvalidArgument("http: unsupported version");
  }
  size_t pos = line_end + 2;
  while (pos < head.size()) {
    size_t eol = head.find("\r\n", pos);
    if (eol == std::string::npos) break;
    if (eol == pos) break;  // blank line
    const std::string line = head.substr(pos, eol - pos);
    size_t colon = line.find(':');
    if (colon == std::string::npos) {
      return Status::InvalidArgument("http: malformed header line");
    }
    std::string key = ToLower(line.substr(0, colon));
    size_t value_begin = line.find_first_not_of(' ', colon + 1);
    req.headers[key] =
        value_begin == std::string::npos ? "" : line.substr(value_begin);
    pos = eol + 2;
  }
  return req;
}

std::string SerializeResponse(const HttpResponse& resp, bool keep_alive) {
  std::string out = "HTTP/1.1 " + std::to_string(resp.status) + " " +
                    ReasonPhrase(resp.status) + "\r\n";
  out += "Content-Type: " + resp.content_type + "\r\n";
  out += "Content-Length: " + std::to_string(resp.body.size()) + "\r\n";
  out += keep_alive ? "Connection: keep-alive\r\n" : "Connection: close\r\n";
  out += "\r\n";
  out += resp.body;
  return out;
}

}  // namespace

HttpServer::~HttpServer() { Stop(); }

Status HttpServer::Start(const std::string& host, uint16_t port, Handler handler) {
  handler_ = std::move(handler);
  listen_fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  if (listen_fd_ < 0) {
    return Status::Unavailable("http: socket(): " + std::string(std::strerror(errno)));
  }
  int one = 1;
  ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  if (host == "0.0.0.0") {
    addr.sin_addr.s_addr = INADDR_ANY;
  } else if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
    ::close(listen_fd_);
    listen_fd_ = -1;
    return Status::InvalidArgument("http: bad listen host '" + host + "'");
  }
  if (::bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) < 0 ||
      ::listen(listen_fd_, 128) < 0) {
    Status st = Status::Unavailable("http: bind/listen(" + std::to_string(port) +
                                    "): " + std::strerror(errno));
    ::close(listen_fd_);
    listen_fd_ = -1;
    return st;
  }
  sockaddr_in bound{};
  socklen_t bound_len = sizeof(bound);
  ::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&bound), &bound_len);
  port_ = ntohs(bound.sin_port);
  running_.store(true);
  accept_thread_ = std::thread([this] { AcceptLoop(); });
  return Status::OK();
}

void HttpServer::Stop() {
  bool was_running = running_.exchange(false);
  if (!was_running && listen_fd_ < 0) return;
  std::vector<std::thread> workers;
  std::vector<int> fds;
  {
    std::lock_guard<std::mutex> lock(mu_);
    workers.swap(workers_);
    fds.swap(conn_fds_);
  }
  for (int fd : fds) ::shutdown(fd, SHUT_RDWR);
  for (auto& t : workers) {
    if (t.joinable()) t.join();
  }
  if (accept_thread_.joinable()) accept_thread_.join();
  // The accept thread is gone (the running_ flip bounds its poll at 100 ms),
  // so the listener can be closed without racing AcceptLoop's reads of
  // listen_fd_.
  if (listen_fd_ >= 0) {
    ::close(listen_fd_);
    listen_fd_ = -1;
  }
}

void HttpServer::AcceptLoop() {
  while (running_.load(std::memory_order_relaxed)) {
    pollfd pfd{listen_fd_, POLLIN, 0};
    int ready = ::poll(&pfd, 1, 100);
    if (!running_.load(std::memory_order_relaxed)) break;
    if (ready <= 0) continue;
    int fd = ::accept(listen_fd_, nullptr, nullptr);
    if (fd < 0) {
      if (errno == EINTR) continue;
      break;
    }
    int one = 1;
    ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
    std::lock_guard<std::mutex> lock(mu_);
    if (!running_.load(std::memory_order_relaxed)) {
      ::close(fd);
      break;
    }
    conn_fds_.push_back(fd);
    workers_.emplace_back([this, fd] { Serve(fd); });
  }
}

void HttpServer::Serve(int fd) {
  static metrics::Counter* requests = metrics::GetCounter("net.http.request.count");
  static metrics::Counter* bad = metrics::GetCounter("net.http.bad_request.count");
  std::string buf;
  while (running_.load(std::memory_order_relaxed)) {
    size_t header_end = 0;
    if (!ReadUntilHeaderEnd(fd, &buf, &header_end)) break;
    auto parsed = ParseRequest(buf.substr(0, header_end));
    if (!parsed.ok()) {
      bad->Increment();
      (void)WriteAll(fd, SerializeResponse(
                             HttpResponse::Text(400, parsed.status().message()),
                             /*keep_alive=*/false));
      break;
    }
    HttpRequest req = std::move(*parsed);
    size_t body_len = 0;
    auto cl = req.headers.find("content-length");
    if (cl != req.headers.end()) {
      char* end = nullptr;
      unsigned long long v = std::strtoull(cl->second.c_str(), &end, 10);
      if (end == nullptr || *end != '\0' || v > kMaxHttpBodyBytes) {
        bad->Increment();
        (void)WriteAll(fd, SerializeResponse(
                               HttpResponse::Text(413, "body too large or invalid"),
                               /*keep_alive=*/false));
        break;
      }
      body_len = size_t(v);
    }
    if (!ReadExact(fd, &buf, header_end + body_len)) break;
    req.body = buf.substr(header_end, body_len);
    buf.erase(0, header_end + body_len);

    requests->Increment();
    HttpResponse resp;
    resp = handler_ ? handler_(req) : HttpResponse::Text(500, "no handler");
    auto conn_header = req.headers.find("connection");
    const bool keep_alive = conn_header == req.headers.end() ||
                            ToLower(conn_header->second) != "close";
    if (!WriteAll(fd, SerializeResponse(resp, keep_alive))) break;
    if (!keep_alive) break;
  }
  ::close(fd);
}

Result<HttpClient> HttpClient::Connect(const std::string& base_url) {
  const std::string prefix = "http://";
  if (base_url.rfind(prefix, 0) != 0) {
    return Status::InvalidArgument("http client: url must start with http://");
  }
  std::string host_port = base_url.substr(prefix.size());
  size_t slash = host_port.find('/');
  if (slash != std::string::npos) host_port = host_port.substr(0, slash);
  size_t colon = host_port.rfind(':');
  if (colon == std::string::npos || colon + 1 == host_port.size()) {
    return Status::InvalidArgument("http client: url must carry host:port");
  }
  char* end = nullptr;
  unsigned long port = std::strtoul(host_port.c_str() + colon + 1, &end, 10);
  if (end == nullptr || *end != '\0' || port == 0 || port > 65535) {
    return Status::InvalidArgument("http client: bad port in url");
  }
  return HttpClient(host_port.substr(0, colon), uint16_t(port));
}

HttpClient::HttpClient(HttpClient&& other) noexcept
    : host_(std::move(other.host_)), port_(other.port_), fd_(other.fd_) {
  other.fd_ = -1;
}

HttpClient& HttpClient::operator=(HttpClient&& other) noexcept {
  if (this != &other) {
    Disconnect();
    host_ = std::move(other.host_);
    port_ = other.port_;
    fd_ = other.fd_;
    other.fd_ = -1;
  }
  return *this;
}

HttpClient::~HttpClient() { Disconnect(); }

void HttpClient::Disconnect() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

Status HttpClient::EnsureConnected() {
  if (fd_ >= 0) return Status::OK();
  addrinfo hints{};
  hints.ai_family = AF_INET;
  hints.ai_socktype = SOCK_STREAM;
  addrinfo* res = nullptr;
  std::string port_str = std::to_string(port_);
  int rc = ::getaddrinfo(host_.c_str(), port_str.c_str(), &hints, &res);
  if (rc != 0 || res == nullptr) {
    return Status::Unavailable("http client: resolve " + host_ + ": " +
                               gai_strerror(rc));
  }
  int fd = ::socket(res->ai_family, res->ai_socktype, res->ai_protocol);
  if (fd < 0) {
    ::freeaddrinfo(res);
    return Status::Unavailable("http client: socket(): " +
                               std::string(std::strerror(errno)));
  }
  rc = ::connect(fd, res->ai_addr, res->ai_addrlen);
  ::freeaddrinfo(res);
  if (rc != 0) {
    ::close(fd);
    return Status::Unavailable("http client: connect " + host_ + ":" + port_str +
                               ": " + std::strerror(errno));
  }
  int one = 1;
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  fd_ = fd;
  return Status::OK();
}

Result<HttpResponse> HttpClient::RoundTrip(const std::string& request) {
  // One reconnect attempt: a keep-alive connection the server closed
  // (restart, idle timeout) surfaces as a failed write/read.
  for (int attempt = 0; attempt < 2; ++attempt) {
    CONFIDE_RETURN_NOT_OK(EnsureConnected());
    if (!WriteAll(fd_, request)) {
      Disconnect();
      continue;
    }
    std::string buf;
    size_t header_end = 0;
    if (!ReadUntilHeaderEnd(fd_, &buf, &header_end)) {
      Disconnect();
      continue;
    }
    const std::string head = buf.substr(0, header_end);
    if (head.rfind("HTTP/1.", 0) != 0 || head.size() < 12) {
      Disconnect();
      return Status::Corruption("http client: malformed status line");
    }
    HttpResponse resp;
    resp.status = std::atoi(head.c_str() + 9);
    std::string lower_head = ToLower(head);
    size_t cl_pos = lower_head.find("content-length:");
    size_t body_len = 0;
    if (cl_pos != std::string::npos) {
      body_len = size_t(std::strtoull(head.c_str() + cl_pos + 15, nullptr, 10));
      if (body_len > kMaxHttpBodyBytes) {
        Disconnect();
        return Status::Corruption("http client: oversized response body");
      }
    }
    size_t ct_pos = lower_head.find("content-type:");
    if (ct_pos != std::string::npos) {
      size_t eol = head.find("\r\n", ct_pos);
      size_t value = head.find_first_not_of(' ', ct_pos + 13);
      if (value != std::string::npos && eol != std::string::npos && value < eol) {
        resp.content_type = head.substr(value, eol - value);
      }
    }
    if (!ReadExact(fd_, &buf, header_end + body_len)) {
      Disconnect();
      continue;
    }
    resp.body = buf.substr(header_end, body_len);
    if (lower_head.find("connection: close") != std::string::npos) Disconnect();
    return resp;
  }
  return Status::Unavailable("http client: request to " + host_ + " failed");
}

Result<HttpResponse> HttpClient::Get(const std::string& path) {
  std::string req = "GET " + path + " HTTP/1.1\r\nHost: " + host_ +
                    "\r\nConnection: keep-alive\r\n\r\n";
  return RoundTrip(req);
}

Result<HttpResponse> HttpClient::Post(const std::string& path,
                                      const std::string& body,
                                      const std::string& content_type) {
  std::string req = "POST " + path + " HTTP/1.1\r\nHost: " + host_ +
                    "\r\nContent-Type: " + content_type +
                    "\r\nContent-Length: " + std::to_string(body.size()) +
                    "\r\nConnection: keep-alive\r\n\r\n" + body;
  return RoundTrip(req);
}

}  // namespace confide::net
