/// \file tcp_transport.h
/// \brief Real length-prefixed TCP transport between separately deployed
/// node processes (the `confided` binary) and their clients.
///
/// One listening socket per node serves both planes: peers identify with
/// a kHello frame (consensus frames are only accepted from identified
/// node peers); connections that never send kHello are client/gateway
/// connections and see only the request/reply plane. Outbound peer
/// connections are established lazily on first Send and re-established
/// on failure. Writes loop over short writes; reads feed a FrameAssembler
/// so a frame split at any byte boundary reassembles. A corrupt inbound
/// stream (oversized/garbled/truncated frame) closes the connection —
/// framing cannot resynchronize inside a corrupt byte stream — and the
/// next Send to that peer reconnects.
///
/// Fault-injection sites (chaos suite, docs/METRICS.md appendix):
///   fault.net.connect.fail   outbound connect fails (retry recovers)
///   fault.net.send.drop      frame silently not written
///   fault.net.send.truncate  half the frame written, then the
///                            connection is closed (peer sees a stream
///                            ending mid-frame)
///   fault.net.send.delay     send stalls for `arg` milliseconds
///   fault.net.recv.corrupt   one inbound byte flipped before framing

#pragma once

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "net/transport.h"

namespace confide::net {

/// \brief "host:port" → (host, port). Rejects missing/invalid port.
Result<std::pair<std::string, uint16_t>> SplitHostPort(const std::string& addr);

struct TcpTransportOptions {
  /// This node's id; must index into `peers`.
  uint32_t self_id = 0;
  /// One "host:port" per cluster node, indexed by node id (the entry at
  /// self_id names the advertised address of this node; only its port
  /// matters when `listen_port` is unset).
  std::vector<std::string> peers;
  /// Port to bind (0 = the port from peers[self_id]; peers[self_id] port
  /// 0 = ephemeral, see listen_port()).
  uint16_t listen_port = 0;
  /// Address to bind the listener to.
  std::string listen_host = "0.0.0.0";
  /// Outbound connect attempts per Send before giving up.
  uint32_t connect_attempts = 3;
  /// Backoff between connect attempts, doubling per retry.
  uint64_t connect_backoff_ms = 10;
};

class TcpTransport : public Transport {
 public:
  explicit TcpTransport(TcpTransportOptions options);
  ~TcpTransport() override;

  void SetHandler(HandlerFn handler) override;
  Status Start() override;
  void Stop() override;
  Status Send(uint32_t peer, MsgType type, ByteView body) override;
  Status Broadcast(MsgType type, ByteView body) override;
  uint32_t self_id() const override { return options_.self_id; }
  size_t cluster_size() const override { return options_.peers.size(); }

  /// \brief Bound listener port (after Start; resolves ephemeral binds).
  uint16_t listen_port() const { return bound_port_; }

 private:
  struct Connection;

  void AcceptLoop();
  void ReadLoop(std::shared_ptr<Connection> conn);
  /// \brief Returns the established outbound connection to `peer`,
  /// dialing (with retry/backoff + kHello) when absent.
  Result<std::shared_ptr<Connection>> OutboundTo(uint32_t peer);
  /// \brief Writes one whole frame to `conn`, honoring fault sites and
  /// looping over short writes.
  Status WriteFrame(Connection* conn, uint32_t peer, MsgType type, ByteView body);

  TcpTransportOptions options_;
  HandlerFn handler_;
  std::atomic<bool> running_{false};
  int listen_fd_ = -1;
  uint16_t bound_port_ = 0;
  std::thread accept_thread_;

  std::mutex mu_;
  std::map<uint32_t, std::shared_ptr<Connection>> outbound_;  // by peer id
  std::vector<std::shared_ptr<Connection>> inbound_;
  std::vector<std::thread> reader_threads_;
  /// Peers whose outbound stream was poisoned by an injected truncation;
  /// the next successful frame to them reports fault recovery.
  std::map<uint32_t, bool> truncate_poisoned_;
  /// Peers whose inbound stream saw an injected byte flip; the next good
  /// frame from them reports fault recovery.
  std::map<uint32_t, bool> recv_corrupted_peers_;
  bool injected_connect_fail_ = false;
};

}  // namespace confide::net
