#include "net/cluster.h"

#include <algorithm>

#include "common/fault.h"
#include "common/logging.h"
#include "common/metrics.h"
#include "crypto/sha256.h"
#include "serialize/rlp.h"

namespace confide::net {

namespace {

struct ClusterMetrics {
  metrics::Counter* propose = metrics::GetCounter("cluster.propose.count");
  metrics::Counter* retransmit = metrics::GetCounter("cluster.retransmit.count");
  metrics::Counter* applied = metrics::GetCounter("cluster.block.applied.count");
  metrics::Counter* submit = metrics::GetCounter("cluster.tx.submitted.count");
  metrics::Counter* reject = metrics::GetCounter("cluster.tx.rejected.count");
  metrics::Counter* fetch = metrics::GetCounter("cluster.fetch.request.count");
  metrics::Counter* fetch_blocks = metrics::GetCounter("cluster.fetch.blocks.count");
  metrics::Counter* bad_frame = metrics::GetCounter("cluster.bad_frame.count");
  metrics::Counter* vote_rejected =
      metrics::GetCounter("cluster.vote.rejected.count");
  metrics::Counter* redirect = metrics::GetCounter("cluster.redirect.count");
  metrics::Gauge* view = metrics::GetGauge("cluster.view.current");
  metrics::Counter* view_change =
      metrics::GetCounter("cluster.view.change.count");
  metrics::Counter* view_adopted =
      metrics::GetCounter("cluster.view.adopted.count");
  metrics::Counter* view_elected =
      metrics::GetCounter("cluster.view.elected.count");
  metrics::Counter* viewchange_sent =
      metrics::GetCounter("cluster.viewchange.sent.count");
  metrics::Counter* viewchange_recv =
      metrics::GetCounter("cluster.viewchange.recv.count");
  metrics::Counter* newview_rejected =
      metrics::GetCounter("cluster.newview.rejected.count");
  metrics::Counter* abandoned =
      metrics::GetCounter("cluster.proposal.abandoned.count");
  metrics::Counter* hb_sent = metrics::GetCounter("net.heartbeat.sent.count");
  metrics::Counter* hb_recv = metrics::GetCounter("net.heartbeat.recv.count");
  metrics::Counter* hb_miss = metrics::GetCounter("net.heartbeat.miss.count");

  static ClusterMetrics& Get() {
    static ClusterMetrics m;
    return m;
  }
};

Bytes EncodeVote(uint64_t view, uint64_t seq, const crypto::Hash256& digest) {
  serialize::RlpWriter w;
  size_t mark = w.BeginList();
  w.WriteU64(view);
  w.WriteU64(seq);
  w.WriteBytes(ByteView(digest.data(), digest.size()));
  w.EndList(mark);
  return std::move(w).Take();
}

Bytes EncodePrePrepare(uint64_t view, uint64_t seq, ByteView block_wire) {
  serialize::RlpWriter w;
  size_t mark = w.BeginList();
  w.WriteU64(view);
  w.WriteU64(seq);
  w.WriteBytes(block_wire);
  w.EndList(mark);
  return std::move(w).Take();
}

Bytes EncodeHeartbeat(uint64_t view, uint64_t height) {
  serialize::RlpWriter w;
  size_t mark = w.BeginList();
  w.WriteU64(view);
  w.WriteU64(height);
  w.EndList(mark);
  return std::move(w).Take();
}

Bytes EncodeRedirect(uint32_t leader, uint64_t view) {
  serialize::RlpWriter w;
  size_t mark = w.BeginList();
  w.WriteU64(leader);
  w.WriteU64(view);
  w.EndList(mark);
  return std::move(w).Take();
}

OwnedFrame ErrorFrame(uint64_t code, std::string_view message) {
  serialize::RlpWriter w;
  size_t mark = w.BeginList();
  w.WriteU64(code);
  w.WriteString(message);
  w.EndList(mark);
  return OwnedFrame{MsgType::kError, std::move(w).Take()};
}

uint64_t SplitMix64(uint64_t* state) {
  uint64_t z = (*state += 0x9E3779B97F4A7C15ull);
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
  return z ^ (z >> 31);
}

}  // namespace

ClusterNode::ClusterNode(core::ConfideSystem* system,
                         std::unique_ptr<Transport> transport,
                         ClusterOptions options)
    : system_(system), transport_(std::move(transport)), options_(options) {}

ClusterNode::~ClusterNode() { Stop(); }

Status ClusterNode::Start() {
  transport_->SetHandler([this](uint32_t from, MsgType type, ByteView body) {
    return HandleFrame(from, type, body);
  });
  CONFIDE_RETURN_NOT_OK(transport_->Start());
  {
    std::lock_guard<std::mutex> lock(mu_);
    jitter_state_ = options_.election_seed ^
                    (uint64_t(transport_->self_id()) * 0x9E3779B97F4A7C15ull);
    last_leader_seen_ = std::chrono::steady_clock::now();
    last_heartbeat_sent_ = last_leader_seen_;
  }
  if (options_.heartbeat_ms > 0 && !started_) {
    monitor_stop_.store(false);
    monitor_ = std::thread([this] { RunMonitor(); });
  }
  started_ = true;
  return Status::OK();
}

void ClusterNode::Stop() {
  monitor_stop_.store(true);
  if (monitor_.joinable()) monitor_.join();
  transport_->Stop();
}

std::optional<OwnedFrame> ClusterNode::HandleFrame(uint32_t from, MsgType type,
                                                   ByteView body) {
  switch (type) {
    case MsgType::kSubmitTx:
      return OnSubmitTx(body);
    case MsgType::kQueryReceipt:
      return OnQueryReceipt(body);
    case MsgType::kQueryStatus:
      return OnQueryStatus();
    case MsgType::kQueryPkInfo:
      return OnQueryPkInfo();
    case MsgType::kFetchBlocks:
      return OnFetchBlocks(body);
    default:
      break;
  }
  // Consensus plane: only identified node peers may vote or propose.
  if (from == kClientPeer || from >= transport_->cluster_size()) {
    ClusterMetrics::Get().bad_frame->Increment();
    return std::nullopt;
  }
  switch (type) {
    case MsgType::kPrePrepare:
      OnPrePrepare(from, body);
      break;
    case MsgType::kPrepare:
    case MsgType::kCommit:
      OnVote(from, type, body);
      break;
    case MsgType::kBlocksReply:
      OnBlocksReply(body);
      break;
    case MsgType::kHeartbeat:
      OnHeartbeat(from, body);
      break;
    case MsgType::kViewChange:
      OnViewChange(from, body);
      break;
    case MsgType::kNewView:
      OnNewView(from, body);
      break;
    default:
      ClusterMetrics::Get().bad_frame->Increment();
      break;
  }
  return std::nullopt;
}

std::optional<OwnedFrame> ClusterNode::OnSubmitTx(ByteView body) {
  if (!is_leader()) {
    // Submissions belong on the leader: hand the client the current view's
    // leader so it can re-route (docs/WIRE_PROTOCOL.md §View change).
    ClusterMetrics::Get().redirect->Increment();
    return OwnedFrame{MsgType::kRedirect, EncodeRedirect(leader(), view())};
  }
  auto tx = chain::Transaction::Deserialize(body);
  if (!tx.ok()) {
    ClusterMetrics::Get().reject->Increment();
    return ErrorFrame(400, tx.status().message());
  }
  const crypto::Hash256 hash = tx->Hash();
  Status st = system_->node()->SubmitTransaction(std::move(*tx));
  serialize::RlpWriter w;
  size_t mark = w.BeginList();
  w.WriteU64(st.ok() ? 1 : 0);
  w.WriteBytes(ByteView(hash.data(), hash.size()));
  w.WriteString(st.ok() ? "" : st.message());
  w.EndList(mark);
  if (st.ok()) {
    ClusterMetrics::Get().submit->Increment();
  } else {
    ClusterMetrics::Get().reject->Increment();
  }
  return OwnedFrame{MsgType::kSubmitTxAck, std::move(w).Take()};
}

std::optional<OwnedFrame> ClusterNode::OnQueryReceipt(ByteView body) {
  auto r = serialize::RlpReader::AtList(body);
  if (!r.ok()) return ErrorFrame(400, "bad kQueryReceipt body");
  auto hash_bytes = r->NextFixed(32, "tx hash");
  if (!hash_bytes.ok() || !r->ExpectEnd("kQueryReceipt").ok()) {
    return ErrorFrame(400, "bad kQueryReceipt body");
  }
  crypto::Hash256 hash{};
  std::copy(hash_bytes->begin(), hash_bytes->end(), hash.begin());
  auto receipt = system_->node()->GetReceipt(hash);
  serialize::RlpWriter w;
  size_t mark = w.BeginList();
  w.WriteU64(receipt.ok() ? 1 : 0);
  w.WriteBytes(receipt.ok() ? ByteView(receipt->Serialize()) : ByteView());
  w.WriteU64(system_->node()->Height());
  w.EndList(mark);
  return OwnedFrame{MsgType::kReceiptReply, std::move(w).Take()};
}

std::optional<OwnedFrame> ClusterNode::OnQueryStatus() {
  chain::Node* node = system_->node();
  const crypto::Hash256 tip = node->TipHash();
  serialize::RlpWriter w;
  size_t mark = w.BeginList();
  w.WriteU64(transport_->self_id());
  w.WriteU64(node->Height());
  w.WriteBytes(ByteView(tip.data(), tip.size()));
  w.WriteU64(node->VerifiedPoolSize());
  w.WriteU64(node->UnverifiedPoolSize());
  // Leader hint (appended in wire v2): the redirect target for clients
  // that learned the cluster topology from a status sweep.
  w.WriteU64(view());
  w.WriteU64(leader());
  w.EndList(mark);
  return OwnedFrame{MsgType::kStatusReply, std::move(w).Take()};
}

std::optional<OwnedFrame> ClusterNode::OnQueryPkInfo() {
  serialize::RlpWriter w;
  size_t mark = w.BeginList();
  w.WriteBytes(ByteView(system_->pk_info_blob()));
  w.EndList(mark);
  return OwnedFrame{MsgType::kPkInfoReply, std::move(w).Take()};
}

void ClusterNode::InstallProposalLocked(uint64_t view, uint64_t seq,
                                        ByteView wire, uint32_t proposer) {
  const crypto::Hash256 digest = crypto::Sha256::Digest(wire);
  Pending& p = pending_[seq];
  if (p.view < view) {
    // A re-proposal in a newer view supersedes whatever this entry held —
    // including votes collected before the pre-prepare arrived: those were
    // never digest-checked and must not count toward the new block.
    p = Pending{};
    p.view = view;
  }
  if (!p.block_wire.empty() && p.digest != digest) {
    // Same view, different block at the same seq: equivocation.
    ClusterMetrics::Get().bad_frame->Increment();
    return;
  }
  if (p.block_wire.empty()) {
    p.block_wire = ToBytes(wire);
    p.digest = digest;
  }
  p.view = view;
  // The pre-prepare carries the proposer's implicit prepare; our broadcast
  // kPrepare below is our vote, counted locally too.
  p.prepares.insert(proposer);
  p.prepares.insert(transport_->self_id());
  const Bytes vote = EncodeVote(view, seq, p.digest);
  (void)transport_->Broadcast(MsgType::kPrepare, ByteView(vote));
}

void ClusterNode::MaybeFetchGapLocked(std::unique_lock<std::mutex>& lock,
                                      uint64_t seq, uint32_t peer) {
  const uint64_t tip = system_->node()->Height();
  // A pending entry at the tip only fills the gap if it carries the block —
  // votes alone (the pre-prepare itself was the lost frame) cannot apply,
  // so they must not suppress the fetch.
  const auto tip_it = pending_.find(tip);
  const bool tip_block_missing =
      tip_it == pending_.end() || tip_it->second.block_wire.empty();
  if (seq <= tip || !tip_block_missing || fetch_in_flight_) return;
  fetch_in_flight_ = true;
  serialize::RlpWriter w;
  size_t mark = w.BeginList();
  w.WriteU64(tip);
  w.WriteU64(seq);
  w.EndList(mark);
  ClusterMetrics::Get().fetch->Increment();
  lock.unlock();
  (void)transport_->Send(peer, MsgType::kFetchBlocks, ByteView(std::move(w).Take()));
  lock.lock();
}

void ClusterNode::OnPrePrepare(uint32_t from, ByteView body) {
  auto r = serialize::RlpReader::AtList(body);
  if (!r.ok()) {
    ClusterMetrics::Get().bad_frame->Increment();
    return;
  }
  auto view = r->NextU64();
  auto seq = r->NextU64();
  auto wire = r->NextBytes();
  if (!view.ok() || !seq.ok() || !wire.ok() || !r->ExpectEnd("kPrePrepare").ok()) {
    ClusterMetrics::Get().bad_frame->Increment();
    return;
  }
  std::unique_lock<std::mutex> lock(mu_);
  if (*view < view_.load(std::memory_order_relaxed)) {
    // A deposed leader still proposing in its old view. Ignore; its own
    // heartbeat/pre-prepare traffic from the current leader will heal it.
    ClusterMetrics::Get().vote_rejected->Increment();
    return;
  }
  if (LeaderOf(*view) != from) {
    ClusterMetrics::Get().bad_frame->Increment();
    return;
  }
  // A pre-prepare from the legitimate leader of a newer view is proof the
  // election completed without us (lost kNewView, or we just rejoined).
  if (*view > view_.load(std::memory_order_relaxed)) AdoptViewLocked(*view);
  last_leader_seen_ = std::chrono::steady_clock::now();
  const uint64_t tip = system_->node()->Height();
  if (*seq >= tip) {
    InstallProposalLocked(*view, *seq, *wire, from);
    MaybeAdvanceLocked(*seq);
  }
  // Seq jumped past our tip: pull the gap from the proposer (frames for
  // the intermediate blocks were lost, or we just rejoined).
  MaybeFetchGapLocked(lock, *seq, from);
}

void ClusterNode::OnVote(uint32_t from, MsgType type, ByteView body) {
  auto r = serialize::RlpReader::AtList(body);
  if (!r.ok()) {
    ClusterMetrics::Get().bad_frame->Increment();
    return;
  }
  auto view = r->NextU64();
  auto seq = r->NextU64();
  auto digest = r->NextFixed(32, "digest");
  if (!view.ok() || !seq.ok() || !digest.ok() || !r->ExpectEnd("vote").ok()) {
    ClusterMetrics::Get().bad_frame->Increment();
    return;
  }
  std::lock_guard<std::mutex> lock(mu_);
  if (*view != view_.load(std::memory_order_relaxed)) {
    // Votes are only valid in the view they were cast for: after a view
    // change every surviving entry is re-proposed and re-voted.
    ClusterMetrics::Get().vote_rejected->Increment();
    return;
  }
  if (*seq < system_->node()->Height()) return;  // stale vote
  Pending& p = pending_[*seq];
  if (p.view < *view) {
    // Entry predates the current view (or is fresh): any held votes were
    // cast for a superseded proposal — drop them with it.
    p = Pending{};
    p.view = *view;
  }
  // Votes may precede the pre-prepare (reordering across connections);
  // the digest check waits until the block is known.
  if (!p.block_wire.empty() &&
      !std::equal(digest->begin(), digest->end(), p.digest.begin())) {
    ClusterMetrics::Get().vote_rejected->Increment();
    return;
  }
  if (type == MsgType::kPrepare) {
    p.prepares.insert(from);
  } else {
    p.commits.insert(from);
  }
  MaybeAdvanceLocked(*seq);
}

void ClusterNode::MaybeAdvanceLocked(uint64_t seq) {
  auto it = pending_.find(seq);
  if (it == pending_.end()) return;
  Pending& p = it->second;
  const size_t quorum = Quorum(transport_->cluster_size());
  if (!p.commit_sent && p.prepares.size() >= quorum) {
    p.commit_sent = true;
    p.commits.insert(transport_->self_id());
    const Bytes vote = EncodeVote(p.view, seq, p.digest);
    (void)transport_->Broadcast(MsgType::kCommit, ByteView(vote));
  }
  if (!p.committed && p.commit_sent && p.commits.size() >= quorum) {
    p.committed = true;
  }
  TryApplyLocked();
}

void ClusterNode::TryApplyLocked() {
  chain::Node* node = system_->node();
  while (true) {
    auto it = pending_.find(node->Height());
    if (it == pending_.end() || !it->second.committed ||
        it->second.block_wire.empty()) {
      break;
    }
    auto block = chain::Block::Deserialize(it->second.block_wire);
    if (!block.ok()) {
      CONFIDE_LOG(kError, "cluster",
                  "committed block at seq " + std::to_string(it->first) +
                      " undecodable: " + block.status().message());
      pending_.erase(it);
      break;
    }
    auto receipts = node->ApplyBlock(*block);
    if (!receipts.ok()) {
      CONFIDE_LOG(kError, "cluster",
                  "apply at seq " + std::to_string(it->first) +
                      " failed: " + receipts.status().message());
      break;
    }
    ClusterMetrics::Get().applied->Increment();
    pending_.erase(it);
  }
  // Drop stale entries a retransmission or late vote left behind.
  while (!pending_.empty() && pending_.begin()->first < node->Height()) {
    pending_.erase(pending_.begin());
  }
  cv_.notify_all();
}

std::optional<OwnedFrame> ClusterNode::OnFetchBlocks(ByteView body) {
  auto r = serialize::RlpReader::AtList(body);
  if (!r.ok()) return ErrorFrame(400, "bad kFetchBlocks body");
  auto from_h = r->NextU64();
  auto to_h = r->NextU64();
  if (!from_h.ok() || !to_h.ok() || !r->ExpectEnd("kFetchBlocks").ok()) {
    return ErrorFrame(400, "bad kFetchBlocks body");
  }
  storage::BlockStore* blocks = system_->node()->blocks();
  const uint64_t tip = blocks->NextHeight();
  const uint64_t lo = *from_h;
  const uint64_t hi = std::min(std::min(*to_h, tip), lo + kFetchBatchBlocks);
  std::vector<Bytes> wires;
  for (uint64_t h = lo; h < hi; ++h) {
    auto wire = blocks->GetByHeight(h);
    if (!wire.ok()) break;
    wires.push_back(std::move(*wire));
  }
  serialize::RlpWriter out;
  size_t mark = out.BeginList();
  out.WriteU64(lo);
  out.WriteU64(wires.size());
  for (const Bytes& wire : wires) out.WriteBytes(ByteView(wire));
  out.EndList(mark);
  ClusterMetrics::Get().fetch_blocks->Increment(wires.size());
  return OwnedFrame{MsgType::kBlocksReply, std::move(out).Take()};
}

void ClusterNode::OnBlocksReply(ByteView body) {
  auto r = serialize::RlpReader::AtList(body);
  if (!r.ok()) {
    ClusterMetrics::Get().bad_frame->Increment();
    return;
  }
  auto from_h = r->NextU64();
  auto count = r->NextU64();
  if (!from_h.ok() || !count.ok()) {
    ClusterMetrics::Get().bad_frame->Increment();
    return;
  }
  std::lock_guard<std::mutex> lock(mu_);
  chain::Node* node = system_->node();
  size_t applied = 0;
  for (uint64_t i = 0; i < *count; ++i) {
    auto wire = r->NextBytes();
    if (!wire.ok()) break;
    const uint64_t height = *from_h + i;
    if (height < node->Height()) continue;  // already have it
    auto block = chain::Block::Deserialize(*wire);
    if (!block.ok()) break;
    auto receipts = node->ApplyBlock(*block);
    if (!receipts.ok()) {
      CONFIDE_LOG(kError, "cluster",
                  "catch-up apply at " + std::to_string(height) +
                      " failed: " + receipts.status().message());
      break;
    }
    ClusterMetrics::Get().applied->Increment();
    ++applied;
  }
  if (applied > 0) {
    // A filled gap means the cluster healed around lost frames (chaos
    // drops included) — the drop site's recovery signal.
    fault::NoteRecovered("fault.net.send.drop");
  }
  fetch_in_flight_ = false;
  ++fetch_generation_;
  TryApplyLocked();
}

void ClusterNode::OnHeartbeat(uint32_t from, ByteView body) {
  auto r = serialize::RlpReader::AtList(body);
  if (!r.ok()) {
    ClusterMetrics::Get().bad_frame->Increment();
    return;
  }
  auto view = r->NextU64();
  auto height = r->NextU64();
  if (!view.ok() || !height.ok() || !r->ExpectEnd("kHeartbeat").ok()) {
    ClusterMetrics::Get().bad_frame->Increment();
    return;
  }
  std::unique_lock<std::mutex> lock(mu_);
  if (*view < view_.load(std::memory_order_relaxed)) return;  // stale leader
  if (LeaderOf(*view) != from) {
    ClusterMetrics::Get().bad_frame->Increment();
    return;
  }
  if (*view > view_.load(std::memory_order_relaxed)) AdoptViewLocked(*view);
  last_leader_seen_ = std::chrono::steady_clock::now();
  ClusterMetrics::Get().hb_recv->Increment();
  // The heartbeat carries the leader's height: an idle-cluster rejoin
  // heals here instead of waiting for the next proposal.
  MaybeFetchGapLocked(lock, *height, from);
}

void ClusterNode::StartViewChange(uint64_t target_view) {
  std::unique_lock<std::mutex> lock(mu_);
  StartViewChangeLocked(target_view);
}

void ClusterNode::StartViewChangeLocked(uint64_t target_view) {
  if (target_view <= view_.load(std::memory_order_relaxed)) return;
  if (target_view > view_target_) {
    view_target_ = target_view;
    ClusterMetrics::Get().view_change->Increment();
  }
  ViewChangeMsg msg;
  msg.last_applied = system_->node()->Height();
  const size_t quorum = Quorum(transport_->cluster_size());
  for (const auto& [seq, p] : pending_) {
    if (p.block_wire.empty()) continue;
    if (p.prepares.size() < quorum && !p.committed) continue;
    msg.prepared[seq] = {p.view, p.block_wire};
  }
  view_changes_[target_view][transport_->self_id()] = msg;

  serialize::RlpWriter w;
  size_t mark = w.BeginList();
  w.WriteU64(target_view);
  w.WriteU64(msg.last_applied);
  w.WriteU64(msg.prepared.size());
  for (const auto& [seq, cert] : msg.prepared) {
    w.WriteU64(seq);
    w.WriteU64(cert.first);
    w.WriteBytes(ByteView(cert.second));
  }
  w.EndList(mark);
  if (fault::FaultInjector::Global().ShouldFail("fault.net.view.viewchange_drop")) {
    // Our view-change evaporates: peers must reach quorum without us (or
    // we re-broadcast on the next election timeout). Recovery = this node
    // still adopting the new view.
    fault_viewchange_dropped_ = true;
  } else {
    ClusterMetrics::Get().viewchange_sent->Increment();
    (void)transport_->Broadcast(MsgType::kViewChange, ByteView(std::move(w).Take()));
  }
  MaybeCompleteElectionLocked(target_view);
}

void ClusterNode::OnViewChange(uint32_t from, ByteView body) {
  auto r = serialize::RlpReader::AtList(body);
  if (!r.ok()) {
    ClusterMetrics::Get().bad_frame->Increment();
    return;
  }
  auto new_view = r->NextU64();
  auto last_applied = r->NextU64();
  auto count = r->NextU64();
  if (!new_view.ok() || !last_applied.ok() || !count.ok()) {
    ClusterMetrics::Get().bad_frame->Increment();
    return;
  }
  ViewChangeMsg msg;
  msg.last_applied = *last_applied;
  for (uint64_t i = 0; i < *count; ++i) {
    auto seq = r->NextU64();
    auto cert_view = r->NextU64();
    auto wire = r->NextBytes();
    if (!seq.ok() || !cert_view.ok() || !wire.ok()) {
      ClusterMetrics::Get().bad_frame->Increment();
      return;
    }
    msg.prepared[*seq] = {*cert_view, ToBytes(*wire)};
  }
  std::unique_lock<std::mutex> lock(mu_);
  if (*new_view <= view_.load(std::memory_order_relaxed)) return;  // stale
  ClusterMetrics::Get().viewchange_recv->Increment();
  view_changes_[*new_view][from] = std::move(msg);
  // Join rule: once f+1 peers are electing new_view, at least one correct
  // node timed out — join rather than straggle (and as the would-be
  // leader, our own view-change is required for quorum).
  const size_t join_threshold = (transport_->cluster_size() - 1) / 3 + 1;
  if (view_target_ < *new_view &&
      (view_changes_[*new_view].size() >= join_threshold ||
       LeaderOf(*new_view) == transport_->self_id())) {
    StartViewChangeLocked(*new_view);
  } else {
    MaybeCompleteElectionLocked(*new_view);
  }
}

void ClusterNode::MaybeCompleteElectionLocked(uint64_t target_view) {
  if (LeaderOf(target_view) != transport_->self_id()) return;
  if (new_view_sent_ >= target_view) return;
  auto it = view_changes_.find(target_view);
  if (it == view_changes_.end() ||
      it->second.size() < Quorum(transport_->cluster_size())) {
    return;
  }
  if (fault::FaultInjector::Global().ShouldFail("fault.net.view.election_crash")) {
    // The would-be leader dies mid-election: no kNewView. Replicas time
    // out again and elect the next candidate. Recovery = this node
    // adopting a later view like any other replica.
    fault_election_crashed_ = true;
    return;
  }
  new_view_sent_ = target_view;

  // Safety core of the view change: any block that could have committed
  // in an earlier view has a prepared certificate in at least one of the
  // 2f+1 collected messages (quorum intersection), so re-proposing the
  // highest-view certificate per seq preserves every possibly-committed
  // block. Seqs below the cluster's applied height are already final.
  uint64_t base = system_->node()->Height();
  uint32_t best_peer = transport_->self_id();
  for (const auto& [from, msg] : it->second) {
    if (msg.last_applied > base) {
      base = msg.last_applied;
      best_peer = from;
    }
  }
  std::map<uint64_t, std::pair<uint64_t, Bytes>> repropose;
  for (const auto& [from, msg] : it->second) {
    for (const auto& [seq, cert] : msg.prepared) {
      if (seq < base) continue;
      auto& slot = repropose[seq];
      if (slot.second.empty() || cert.first > slot.first) slot = cert;
    }
  }

  serialize::RlpWriter w;
  size_t mark = w.BeginList();
  w.WriteU64(target_view);
  w.WriteU64(repropose.size());
  for (const auto& [seq, cert] : repropose) {
    w.WriteU64(seq);
    w.WriteBytes(ByteView(cert.second));
  }
  w.EndList(mark);

  if (fault::FaultInjector::Global().ShouldFail("fault.net.view.stale_newview")) {
    // Forge a kNewView for the *current* (stale) view first: replicas
    // must reject it (cluster.newview.rejected.count) and still complete
    // the genuine election that follows.
    fault_stale_newview_sent_ = true;
    serialize::RlpWriter forged;
    size_t fmark = forged.BeginList();
    forged.WriteU64(view_.load(std::memory_order_relaxed));
    forged.WriteU64(0);
    forged.EndList(fmark);
    (void)transport_->Broadcast(MsgType::kNewView,
                                ByteView(std::move(forged).Take()));
  }
  ClusterMetrics::Get().view_elected->Increment();
  (void)transport_->Broadcast(MsgType::kNewView, ByteView(std::move(w).Take()));
  AdoptViewLocked(target_view);
  for (const auto& [seq, cert] : repropose) {
    InstallProposalLocked(target_view, seq, ByteView(cert.second),
                          transport_->self_id());
    MaybeAdvanceLocked(seq);
  }
  if (system_->node()->Height() < base) {
    // We won the election while behind the cluster tip: pull the missing
    // prefix from the most advanced peer before proposing anything new.
    // (LeaderTick proposals at a stale seq are ignored by advanced
    // replicas, so this heals before progress resumes.)
    CONFIDE_LOG(kInfo, "cluster",
                "new leader behind cluster tip, fetching " +
                    std::to_string(base - system_->node()->Height()) +
                    " blocks from node " + std::to_string(best_peer));
    serialize::RlpWriter fw;
    size_t fmark = fw.BeginList();
    fw.WriteU64(system_->node()->Height());
    fw.WriteU64(base);
    fw.EndList(fmark);
    if (!fetch_in_flight_) {
      fetch_in_flight_ = true;
      ClusterMetrics::Get().fetch->Increment();
      (void)transport_->Send(best_peer, MsgType::kFetchBlocks,
                             ByteView(std::move(fw).Take()));
    }
  }
}

void ClusterNode::OnNewView(uint32_t from, ByteView body) {
  auto r = serialize::RlpReader::AtList(body);
  if (!r.ok()) {
    ClusterMetrics::Get().bad_frame->Increment();
    return;
  }
  auto new_view = r->NextU64();
  auto count = r->NextU64();
  if (!new_view.ok() || !count.ok()) {
    ClusterMetrics::Get().bad_frame->Increment();
    return;
  }
  std::vector<std::pair<uint64_t, Bytes>> certs;
  for (uint64_t i = 0; i < *count; ++i) {
    auto seq = r->NextU64();
    auto wire = r->NextBytes();
    if (!seq.ok() || !wire.ok()) {
      ClusterMetrics::Get().bad_frame->Increment();
      return;
    }
    certs.emplace_back(*seq, ToBytes(*wire));
  }
  std::unique_lock<std::mutex> lock(mu_);
  if (LeaderOf(*new_view) != from) {
    // Only the leader of new_view may announce it.
    ClusterMetrics::Get().bad_frame->Increment();
    return;
  }
  if (*new_view <= view_.load(std::memory_order_relaxed)) {
    // Stale or forged: adopting it would roll the view number back and
    // re-admit a deposed leader.
    ClusterMetrics::Get().newview_rejected->Increment();
    return;
  }
  AdoptViewLocked(*new_view);
  uint64_t min_cert_seq = UINT64_MAX;
  for (const auto& [seq, wire] : certs) {
    if (seq < system_->node()->Height()) continue;
    min_cert_seq = std::min(min_cert_seq, seq);
    InstallProposalLocked(*new_view, seq, ByteView(wire), from);
    MaybeAdvanceLocked(seq);
  }
  if (min_cert_seq != UINT64_MAX) {
    // Re-proposals may start past our tip (we missed committed blocks).
    MaybeFetchGapLocked(lock, min_cert_seq, from);
  }
}

void ClusterNode::AdoptViewLocked(uint64_t v) {
  if (v <= view_.load(std::memory_order_relaxed)) return;
  view_.store(v, std::memory_order_release);
  if (view_target_ < v) view_target_ = v;
  failed_elections_ = 0;
  last_leader_seen_ = std::chrono::steady_clock::now();
  view_changes_.erase(view_changes_.begin(), view_changes_.upper_bound(v));
  ClusterMetrics::Get().view->Set(int64_t(v));
  ClusterMetrics::Get().view_adopted->Increment();
  if (fault_viewchange_dropped_) {
    fault_viewchange_dropped_ = false;
    fault::NoteRecovered("fault.net.view.viewchange_drop");
  }
  if (fault_election_crashed_) {
    fault_election_crashed_ = false;
    fault::NoteRecovered("fault.net.view.election_crash");
  }
  if (fault_stale_newview_sent_) {
    fault_stale_newview_sent_ = false;
    fault::NoteRecovered("fault.net.view.stale_newview");
  }
  cv_.notify_all();
}

Result<uint64_t> ClusterNode::ProposeOnce() {
  if (!is_leader()) {
    return Status::Unavailable("cluster: node " + std::to_string(self_id()) +
                               " is not the leader of view " +
                               std::to_string(view()));
  }
  chain::Node* node = system_->node();
  CONFIDE_RETURN_NOT_OK(node->PreVerify().status());
  CONFIDE_ASSIGN_OR_RETURN(chain::Block block, node->ProposeBlock());
  if (block.transactions.empty()) {
    return Status::NotFound("cluster: pools empty, nothing to propose");
  }
  const Bytes wire = block.Serialize();
  const uint64_t seq = block.header.height;
  std::lock_guard<std::mutex> lock(mu_);
  const uint64_t v = view_.load(std::memory_order_relaxed);
  last_proposed_tx_count_ = block.transactions.size();
  Pending& p = pending_[seq];
  const crypto::Hash256 digest = crypto::Sha256::Digest(ByteView(wire));
  if (!p.block_wire.empty() && p.digest != digest) {
    // A superseded proposal (abandoned round, older view) occupied this
    // seq: its votes were for a different block and must not carry over.
    p = Pending{};
  }
  p.view = v;
  p.block_wire = wire;
  p.digest = digest;
  p.prepares.insert(transport_->self_id());
  ClusterMetrics::Get().propose->Increment();
  (void)transport_->Broadcast(MsgType::kPrePrepare,
                              ByteView(EncodePrePrepare(v, seq, wire)));
  MaybeAdvanceLocked(seq);
  return seq;
}

Status ClusterNode::Retransmit(uint64_t seq) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = pending_.find(seq);
  if (it == pending_.end()) return Status::NotFound("cluster: seq not pending");
  ClusterMetrics::Get().retransmit->Increment();
  (void)transport_->Broadcast(
      MsgType::kPrePrepare,
      ByteView(EncodePrePrepare(it->second.view, seq, it->second.block_wire)));
  return Status::OK();
}

Status ClusterNode::WaitApplied(uint64_t seq, uint64_t timeout_ms) {
  std::unique_lock<std::mutex> lock(mu_);
  const bool applied = cv_.wait_for(
      lock, std::chrono::milliseconds(timeout_ms),
      [&] { return system_->node()->Height() > seq; });
  if (!applied) {
    return Status::Unavailable("cluster: seq " + std::to_string(seq) +
                               " not applied within " +
                               std::to_string(timeout_ms) + "ms");
  }
  return Status::OK();
}

void ClusterNode::AbandonProposalLocked(uint64_t seq) {
  auto it = pending_.find(seq);
  if (it == pending_.end() || it->second.committed) return;
  ClusterMetrics::Get().abandoned->Increment();
  if (it->second.prepares.size() >= Quorum(transport_->cluster_size())) {
    // Prepared: the next view's leader may carry this block forward
    // (quorum intersection guarantees it sees the certificate), so the
    // transactions must not be requeued — they could commit twice. The
    // entry stays for the view-change message; TryApplyLocked reaps it
    // once superseded or applied.
    return;
  }
  auto block = chain::Block::Deserialize(it->second.block_wire);
  if (block.ok()) {
    system_->node()->RequeueVerified(std::move(block->transactions));
  }
  pending_.erase(it);
}

Result<size_t> ClusterNode::LeaderTick() {
  const uint64_t v = view();
  auto seq = ProposeOnce();
  if (!seq.ok()) {
    if (seq.status().code() == StatusCode::kNotFound) return size_t(0);
    return seq.status();
  }
  for (uint32_t attempt = 0;; ++attempt) {
    Status st = WaitApplied(*seq, options_.propose_wait_ms);
    if (st.ok()) break;
    if (view() != v) {
      // Deposed mid-round: stop driving this proposal. Unprepared
      // transactions go back to the pool; the new leader re-proposes
      // anything that prepared.
      std::lock_guard<std::mutex> lock(mu_);
      AbandonProposalLocked(*seq);
      return Status::Unavailable("cluster: leadership lost at view " +
                                 std::to_string(view()));
    }
    if (attempt >= options_.propose_retries) {
      std::lock_guard<std::mutex> lock(mu_);
      AbandonProposalLocked(*seq);
      return st;
    }
    (void)Retransmit(*seq);
  }
  std::lock_guard<std::mutex> lock(mu_);
  return last_proposed_tx_count_;
}

Status ClusterNode::CatchUp(uint32_t peer) {
  while (true) {
    const uint64_t before = system_->node()->Height();
    uint64_t generation;
    {
      std::lock_guard<std::mutex> lock(mu_);
      fetch_in_flight_ = true;
      generation = fetch_generation_;
    }
    serialize::RlpWriter w;
    size_t mark = w.BeginList();
    w.WriteU64(before);
    w.WriteU64(before + kFetchBatchBlocks);
    w.EndList(mark);
    ClusterMetrics::Get().fetch->Increment();
    Status sent =
        transport_->Send(peer, MsgType::kFetchBlocks, ByteView(std::move(w).Take()));
    if (!sent.ok()) {
      // The peer died before the request left: release the in-flight
      // latch or every future gap-repair fetch stays suppressed.
      std::lock_guard<std::mutex> lock(mu_);
      fetch_in_flight_ = false;
      return sent;
    }
    {
      std::unique_lock<std::mutex> lock(mu_);
      const bool got_reply = cv_.wait_for(
          lock, std::chrono::milliseconds(options_.fetch_wait_ms),
          [&] { return fetch_generation_ != generation; });
      if (!got_reply) {
        fetch_in_flight_ = false;
        return Status::Unavailable("cluster: catch-up fetch from peer " +
                                   std::to_string(peer) + " timed out");
      }
    }
    if (system_->node()->Height() == before) return Status::OK();  // caught up
  }
}

uint64_t ClusterNode::NextJitterLocked() { return SplitMix64(&jitter_state_); }

uint64_t ClusterNode::CurrentTimeoutMsLocked() {
  const uint64_t shift = std::min<uint64_t>(failed_elections_, 4);
  uint64_t t = options_.view_timeout_ms << shift;
  t = std::min(t, options_.view_timeout_max_ms);
  const uint64_t jitter_span = std::max<uint64_t>(options_.view_timeout_ms / 2, 1);
  return t + NextJitterLocked() % jitter_span;
}

void ClusterNode::RunMonitor() {
  const auto tick = std::chrono::milliseconds(
      std::clamp<uint64_t>(options_.heartbeat_ms / 2, 5, 50));
  while (!monitor_stop_.load(std::memory_order_relaxed)) {
    std::this_thread::sleep_for(tick);
    std::unique_lock<std::mutex> lock(mu_);
    const auto now = std::chrono::steady_clock::now();
    if (is_leader()) {
      if (now - last_heartbeat_sent_ >=
          std::chrono::milliseconds(options_.heartbeat_ms)) {
        last_heartbeat_sent_ = now;
        ClusterMetrics::Get().hb_sent->Increment();
        (void)transport_->Broadcast(
            MsgType::kHeartbeat,
            ByteView(EncodeHeartbeat(view_.load(std::memory_order_relaxed),
                                     system_->node()->Height())));
      }
      continue;
    }
    const uint64_t timeout_ms = CurrentTimeoutMsLocked();
    if (now - last_leader_seen_ > std::chrono::milliseconds(timeout_ms)) {
      ClusterMetrics::Get().hb_miss->Increment();
      failed_elections_ = std::min<uint64_t>(failed_elections_ + 1, 16);
      last_leader_seen_ = now;  // re-arm for the election itself
      const uint64_t target =
          std::max(view_.load(std::memory_order_relaxed), view_target_) + 1;
      CONFIDE_LOG(kInfo, "cluster",
                  "node " + std::to_string(self_id()) +
                      ": leader silent past " + std::to_string(timeout_ms) +
                      "ms, starting view change to " + std::to_string(target));
      StartViewChangeLocked(target);
    }
  }
}

}  // namespace confide::net
