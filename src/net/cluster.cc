#include "net/cluster.h"

#include "common/fault.h"
#include "common/logging.h"
#include "common/metrics.h"
#include "crypto/sha256.h"
#include "serialize/rlp.h"

namespace confide::net {

namespace {

struct ClusterMetrics {
  metrics::Counter* propose = metrics::GetCounter("cluster.propose.count");
  metrics::Counter* retransmit = metrics::GetCounter("cluster.retransmit.count");
  metrics::Counter* applied = metrics::GetCounter("cluster.block.applied.count");
  metrics::Counter* submit = metrics::GetCounter("cluster.tx.submitted.count");
  metrics::Counter* reject = metrics::GetCounter("cluster.tx.rejected.count");
  metrics::Counter* fetch = metrics::GetCounter("cluster.fetch.request.count");
  metrics::Counter* fetch_blocks = metrics::GetCounter("cluster.fetch.blocks.count");
  metrics::Counter* bad_frame = metrics::GetCounter("cluster.bad_frame.count");

  static ClusterMetrics& Get() {
    static ClusterMetrics m;
    return m;
  }
};

Bytes EncodeSeqDigest(uint64_t seq, const crypto::Hash256& digest) {
  serialize::RlpWriter w;
  size_t mark = w.BeginList();
  w.WriteU64(seq);
  w.WriteBytes(ByteView(digest.data(), digest.size()));
  w.EndList(mark);
  return std::move(w).Take();
}

Bytes EncodePrePrepare(uint64_t seq, ByteView block_wire) {
  serialize::RlpWriter w;
  size_t mark = w.BeginList();
  w.WriteU64(seq);
  w.WriteBytes(block_wire);
  w.EndList(mark);
  return std::move(w).Take();
}

OwnedFrame ErrorFrame(uint64_t code, std::string_view message) {
  serialize::RlpWriter w;
  size_t mark = w.BeginList();
  w.WriteU64(code);
  w.WriteString(message);
  w.EndList(mark);
  return OwnedFrame{MsgType::kError, std::move(w).Take()};
}

}  // namespace

ClusterNode::ClusterNode(core::ConfideSystem* system,
                         std::unique_ptr<Transport> transport,
                         ClusterOptions options)
    : system_(system), transport_(std::move(transport)), options_(options) {}

ClusterNode::~ClusterNode() { Stop(); }

Status ClusterNode::Start() {
  transport_->SetHandler([this](uint32_t from, MsgType type, ByteView body) {
    return HandleFrame(from, type, body);
  });
  return transport_->Start();
}

void ClusterNode::Stop() { transport_->Stop(); }

std::optional<OwnedFrame> ClusterNode::HandleFrame(uint32_t from, MsgType type,
                                                   ByteView body) {
  switch (type) {
    case MsgType::kSubmitTx:
      return OnSubmitTx(body);
    case MsgType::kQueryReceipt:
      return OnQueryReceipt(body);
    case MsgType::kQueryStatus:
      return OnQueryStatus();
    case MsgType::kQueryPkInfo:
      return OnQueryPkInfo();
    case MsgType::kFetchBlocks:
      return OnFetchBlocks(body);
    default:
      break;
  }
  // Consensus plane: only identified node peers may vote or propose.
  if (from == kClientPeer || from >= transport_->cluster_size()) {
    ClusterMetrics::Get().bad_frame->Increment();
    return std::nullopt;
  }
  switch (type) {
    case MsgType::kPrePrepare:
      OnPrePrepare(from, body);
      break;
    case MsgType::kPrepare:
    case MsgType::kCommit:
      OnVote(from, type, body);
      break;
    case MsgType::kBlocksReply:
      OnBlocksReply(body);
      break;
    default:
      ClusterMetrics::Get().bad_frame->Increment();
      break;
  }
  return std::nullopt;
}

std::optional<OwnedFrame> ClusterNode::OnSubmitTx(ByteView body) {
  auto tx = chain::Transaction::Deserialize(body);
  if (!tx.ok()) {
    ClusterMetrics::Get().reject->Increment();
    return ErrorFrame(400, tx.status().message());
  }
  const crypto::Hash256 hash = tx->Hash();
  Status st = system_->node()->SubmitTransaction(std::move(*tx));
  serialize::RlpWriter w;
  size_t mark = w.BeginList();
  w.WriteU64(st.ok() ? 1 : 0);
  w.WriteBytes(ByteView(hash.data(), hash.size()));
  w.WriteString(st.ok() ? "" : st.message());
  w.EndList(mark);
  if (st.ok()) {
    ClusterMetrics::Get().submit->Increment();
  } else {
    ClusterMetrics::Get().reject->Increment();
  }
  return OwnedFrame{MsgType::kSubmitTxAck, std::move(w).Take()};
}

std::optional<OwnedFrame> ClusterNode::OnQueryReceipt(ByteView body) {
  auto r = serialize::RlpReader::AtList(body);
  if (!r.ok()) return ErrorFrame(400, "bad kQueryReceipt body");
  auto hash_bytes = r->NextFixed(32, "tx hash");
  if (!hash_bytes.ok() || !r->ExpectEnd("kQueryReceipt").ok()) {
    return ErrorFrame(400, "bad kQueryReceipt body");
  }
  crypto::Hash256 hash{};
  std::copy(hash_bytes->begin(), hash_bytes->end(), hash.begin());
  auto receipt = system_->node()->GetReceipt(hash);
  serialize::RlpWriter w;
  size_t mark = w.BeginList();
  w.WriteU64(receipt.ok() ? 1 : 0);
  w.WriteBytes(receipt.ok() ? ByteView(receipt->Serialize()) : ByteView());
  w.WriteU64(system_->node()->Height());
  w.EndList(mark);
  return OwnedFrame{MsgType::kReceiptReply, std::move(w).Take()};
}

std::optional<OwnedFrame> ClusterNode::OnQueryStatus() {
  chain::Node* node = system_->node();
  const crypto::Hash256 tip = node->TipHash();
  serialize::RlpWriter w;
  size_t mark = w.BeginList();
  w.WriteU64(transport_->self_id());
  w.WriteU64(node->Height());
  w.WriteBytes(ByteView(tip.data(), tip.size()));
  w.WriteU64(node->VerifiedPoolSize());
  w.WriteU64(node->UnverifiedPoolSize());
  w.EndList(mark);
  return OwnedFrame{MsgType::kStatusReply, std::move(w).Take()};
}

std::optional<OwnedFrame> ClusterNode::OnQueryPkInfo() {
  serialize::RlpWriter w;
  size_t mark = w.BeginList();
  w.WriteBytes(ByteView(system_->pk_info_blob()));
  w.EndList(mark);
  return OwnedFrame{MsgType::kPkInfoReply, std::move(w).Take()};
}

void ClusterNode::OnPrePrepare(uint32_t from, ByteView body) {
  auto r = serialize::RlpReader::AtList(body);
  if (!r.ok()) {
    ClusterMetrics::Get().bad_frame->Increment();
    return;
  }
  auto seq = r->NextU64();
  auto wire = r->NextBytes();
  if (!seq.ok() || !wire.ok() || !r->ExpectEnd("kPrePrepare").ok()) {
    ClusterMetrics::Get().bad_frame->Increment();
    return;
  }
  std::unique_lock<std::mutex> lock(mu_);
  const uint64_t tip = system_->node()->Height();
  if (*seq < tip) return;  // already applied (retransmission)
  Pending& p = pending_[*seq];
  if (p.block_wire.empty()) {
    p.block_wire = ToBytes(*wire);
    p.digest = crypto::Sha256::Digest(*wire);
  }
  // The pre-prepare carries the leader's implicit prepare; our broadcast
  // kPrepare below is our vote, counted locally too.
  p.prepares.insert(from);
  p.prepares.insert(transport_->self_id());
  const Bytes vote = EncodeSeqDigest(*seq, p.digest);
  (void)transport_->Broadcast(MsgType::kPrepare, ByteView(vote));
  MaybeAdvanceLocked(*seq);
  // Seq jumped past our tip: pull the gap from the proposer (frames for
  // the intermediate blocks were lost, or we just rejoined). A pending
  // entry at the tip only fills the gap if it carries the block — votes
  // alone (the pre-prepare itself was the lost frame) cannot apply, so
  // they must not suppress the fetch.
  const auto tip_it = pending_.find(tip);
  const bool tip_block_missing =
      tip_it == pending_.end() || tip_it->second.block_wire.empty();
  if (*seq > tip && tip_block_missing && !fetch_in_flight_) {
    fetch_in_flight_ = true;
    serialize::RlpWriter w;
    size_t mark = w.BeginList();
    w.WriteU64(tip);
    w.WriteU64(*seq);
    w.EndList(mark);
    ClusterMetrics::Get().fetch->Increment();
    lock.unlock();
    (void)transport_->Send(from, MsgType::kFetchBlocks, ByteView(std::move(w).Take()));
  }
}

void ClusterNode::OnVote(uint32_t from, MsgType type, ByteView body) {
  auto r = serialize::RlpReader::AtList(body);
  if (!r.ok()) {
    ClusterMetrics::Get().bad_frame->Increment();
    return;
  }
  auto seq = r->NextU64();
  auto digest = r->NextFixed(32, "digest");
  if (!seq.ok() || !digest.ok() || !r->ExpectEnd("vote").ok()) {
    ClusterMetrics::Get().bad_frame->Increment();
    return;
  }
  std::lock_guard<std::mutex> lock(mu_);
  if (*seq < system_->node()->Height()) return;  // stale vote
  Pending& p = pending_[*seq];
  // Votes may precede the pre-prepare (reordering across connections);
  // the digest check waits until the block is known.
  if (!p.block_wire.empty() &&
      !std::equal(digest->begin(), digest->end(), p.digest.begin())) {
    ClusterMetrics::Get().bad_frame->Increment();
    return;
  }
  if (type == MsgType::kPrepare) {
    p.prepares.insert(from);
  } else {
    p.commits.insert(from);
  }
  MaybeAdvanceLocked(*seq);
}

void ClusterNode::MaybeAdvanceLocked(uint64_t seq) {
  auto it = pending_.find(seq);
  if (it == pending_.end()) return;
  Pending& p = it->second;
  const size_t quorum = Quorum(transport_->cluster_size());
  if (!p.commit_sent && p.prepares.size() >= quorum) {
    p.commit_sent = true;
    p.commits.insert(transport_->self_id());
    const Bytes vote = EncodeSeqDigest(seq, p.digest);
    (void)transport_->Broadcast(MsgType::kCommit, ByteView(vote));
  }
  if (!p.committed && p.commit_sent && p.commits.size() >= quorum) {
    p.committed = true;
  }
  TryApplyLocked();
}

void ClusterNode::TryApplyLocked() {
  chain::Node* node = system_->node();
  while (true) {
    auto it = pending_.find(node->Height());
    if (it == pending_.end() || !it->second.committed ||
        it->second.block_wire.empty()) {
      break;
    }
    auto block = chain::Block::Deserialize(it->second.block_wire);
    if (!block.ok()) {
      CONFIDE_LOG(kError, "cluster",
                  "committed block at seq " + std::to_string(it->first) +
                      " undecodable: " + block.status().message());
      pending_.erase(it);
      break;
    }
    auto receipts = node->ApplyBlock(*block);
    if (!receipts.ok()) {
      CONFIDE_LOG(kError, "cluster",
                  "apply at seq " + std::to_string(it->first) +
                      " failed: " + receipts.status().message());
      break;
    }
    ClusterMetrics::Get().applied->Increment();
    pending_.erase(it);
  }
  // Drop stale entries a retransmission or late vote left behind.
  while (!pending_.empty() && pending_.begin()->first < node->Height()) {
    pending_.erase(pending_.begin());
  }
  cv_.notify_all();
}

std::optional<OwnedFrame> ClusterNode::OnFetchBlocks(ByteView body) {
  auto r = serialize::RlpReader::AtList(body);
  if (!r.ok()) return ErrorFrame(400, "bad kFetchBlocks body");
  auto from_h = r->NextU64();
  auto to_h = r->NextU64();
  if (!from_h.ok() || !to_h.ok() || !r->ExpectEnd("kFetchBlocks").ok()) {
    return ErrorFrame(400, "bad kFetchBlocks body");
  }
  storage::BlockStore* blocks = system_->node()->blocks();
  const uint64_t tip = blocks->NextHeight();
  const uint64_t lo = *from_h;
  const uint64_t hi = std::min(std::min(*to_h, tip), lo + kFetchBatchBlocks);
  std::vector<Bytes> wires;
  for (uint64_t h = lo; h < hi; ++h) {
    auto wire = blocks->GetByHeight(h);
    if (!wire.ok()) break;
    wires.push_back(std::move(*wire));
  }
  serialize::RlpWriter out;
  size_t mark = out.BeginList();
  out.WriteU64(lo);
  out.WriteU64(wires.size());
  for (const Bytes& wire : wires) out.WriteBytes(ByteView(wire));
  out.EndList(mark);
  ClusterMetrics::Get().fetch_blocks->Increment(wires.size());
  return OwnedFrame{MsgType::kBlocksReply, std::move(out).Take()};
}

void ClusterNode::OnBlocksReply(ByteView body) {
  auto r = serialize::RlpReader::AtList(body);
  if (!r.ok()) {
    ClusterMetrics::Get().bad_frame->Increment();
    return;
  }
  auto from_h = r->NextU64();
  auto count = r->NextU64();
  if (!from_h.ok() || !count.ok()) {
    ClusterMetrics::Get().bad_frame->Increment();
    return;
  }
  std::lock_guard<std::mutex> lock(mu_);
  chain::Node* node = system_->node();
  size_t applied = 0;
  for (uint64_t i = 0; i < *count; ++i) {
    auto wire = r->NextBytes();
    if (!wire.ok()) break;
    const uint64_t height = *from_h + i;
    if (height < node->Height()) continue;  // already have it
    auto block = chain::Block::Deserialize(*wire);
    if (!block.ok()) break;
    auto receipts = node->ApplyBlock(*block);
    if (!receipts.ok()) {
      CONFIDE_LOG(kError, "cluster",
                  "catch-up apply at " + std::to_string(height) +
                      " failed: " + receipts.status().message());
      break;
    }
    ClusterMetrics::Get().applied->Increment();
    ++applied;
  }
  if (applied > 0) {
    // A filled gap means the cluster healed around lost frames (chaos
    // drops included) — the drop site's recovery signal.
    fault::NoteRecovered("fault.net.send.drop");
  }
  fetch_in_flight_ = false;
  ++fetch_generation_;
  TryApplyLocked();
}

Result<uint64_t> ClusterNode::ProposeOnce() {
  chain::Node* node = system_->node();
  CONFIDE_RETURN_NOT_OK(node->PreVerify().status());
  CONFIDE_ASSIGN_OR_RETURN(chain::Block block, node->ProposeBlock());
  if (block.transactions.empty()) {
    return Status::NotFound("cluster: pools empty, nothing to propose");
  }
  const Bytes wire = block.Serialize();
  const uint64_t seq = block.header.height;
  std::lock_guard<std::mutex> lock(mu_);
  last_proposed_tx_count_ = block.transactions.size();
  Pending& p = pending_[seq];
  p.block_wire = wire;
  p.digest = crypto::Sha256::Digest(wire);
  p.prepares.insert(transport_->self_id());
  ClusterMetrics::Get().propose->Increment();
  (void)transport_->Broadcast(MsgType::kPrePrepare,
                              ByteView(EncodePrePrepare(seq, wire)));
  MaybeAdvanceLocked(seq);
  return seq;
}

Status ClusterNode::Retransmit(uint64_t seq) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = pending_.find(seq);
  if (it == pending_.end()) return Status::NotFound("cluster: seq not pending");
  ClusterMetrics::Get().retransmit->Increment();
  (void)transport_->Broadcast(
      MsgType::kPrePrepare,
      ByteView(EncodePrePrepare(seq, it->second.block_wire)));
  return Status::OK();
}

Status ClusterNode::WaitApplied(uint64_t seq, uint64_t timeout_ms) {
  std::unique_lock<std::mutex> lock(mu_);
  const bool applied = cv_.wait_for(
      lock, std::chrono::milliseconds(timeout_ms),
      [&] { return system_->node()->Height() > seq; });
  if (!applied) {
    return Status::Unavailable("cluster: seq " + std::to_string(seq) +
                               " not applied within " +
                               std::to_string(timeout_ms) + "ms");
  }
  return Status::OK();
}

Result<size_t> ClusterNode::LeaderTick() {
  auto seq = ProposeOnce();
  if (!seq.ok()) {
    if (seq.status().code() == StatusCode::kNotFound) return size_t(0);
    return seq.status();
  }
  for (uint32_t attempt = 0;; ++attempt) {
    Status st = WaitApplied(*seq, options_.propose_wait_ms);
    if (st.ok()) break;
    if (attempt >= options_.propose_retries) return st;
    (void)Retransmit(*seq);
  }
  std::lock_guard<std::mutex> lock(mu_);
  return last_proposed_tx_count_;
}

Status ClusterNode::CatchUp(uint32_t peer) {
  while (true) {
    const uint64_t before = system_->node()->Height();
    uint64_t generation;
    {
      std::lock_guard<std::mutex> lock(mu_);
      fetch_in_flight_ = true;
      generation = fetch_generation_;
    }
    serialize::RlpWriter w;
    size_t mark = w.BeginList();
    w.WriteU64(before);
    w.WriteU64(before + kFetchBatchBlocks);
    w.EndList(mark);
    ClusterMetrics::Get().fetch->Increment();
    CONFIDE_RETURN_NOT_OK(
        transport_->Send(peer, MsgType::kFetchBlocks, ByteView(std::move(w).Take())));
    {
      std::unique_lock<std::mutex> lock(mu_);
      const bool got_reply = cv_.wait_for(
          lock, std::chrono::milliseconds(options_.fetch_wait_ms),
          [&] { return fetch_generation_ != generation; });
      if (!got_reply) {
        fetch_in_flight_ = false;
        return Status::Unavailable("cluster: catch-up fetch from peer " +
                                   std::to_string(peer) + " timed out");
      }
    }
    if (system_->node()->Height() == before) return Status::OK();  // caught up
  }
}

}  // namespace confide::net
