/// \file sim_transport.h
/// \brief Transport implementation over the NetworkSim link model: every
/// endpoint lives in one process and frames move through a deterministic
/// FIFO, with reachability (partitions) and loss drawn from the same
/// NetworkSim state the PBFT simulator uses.
///
/// This is the original single-process path, now behind the Transport
/// seam: chaos tests and in-process cluster tests drive it by calling
/// DeliverAll() at chosen points, so every interleaving is explicit and
/// replayable. Latency modelling stays with the discrete-event PBFT
/// simulator (pbft.h); the hub models only reachability, loss and the
/// `fault.net.send.drop` injection site.

#pragma once

#include <deque>
#include <memory>
#include <mutex>
#include <vector>

#include "chain/network.h"
#include "crypto/drbg.h"
#include "net/transport.h"

namespace confide::net {

class SimTransport;

/// \brief Shared medium for a set of SimTransports. Not thread-safe
/// against concurrent DeliverAll calls; Send may be called from handlers
/// (frames enqueue). The NetworkSim is borrowed and must outlive the hub
/// (partitions set on it take effect immediately).
class SimHub {
 public:
  explicit SimHub(chain::NetworkSim* net, uint64_t seed = 1)
      : net_(net), rng_(seed) {}

  /// \brief Delivers queued frames in FIFO order until the queue drains
  /// (replies re-enqueue). Returns the number delivered.
  size_t DeliverAll();

  /// \brief Delivers at most one queued frame. False when idle.
  bool DeliverOne();

  size_t pending() const;

 private:
  friend class SimTransport;

  struct Pending {
    uint32_t from;
    uint32_t to;
    OwnedFrame frame;
  };

  void Register(SimTransport* endpoint);
  void Unregister(SimTransport* endpoint);
  /// \brief Called by SimTransport::Send: applies reachability/loss and
  /// enqueues.
  Status Route(uint32_t from, uint32_t to, MsgType type, ByteView body);

  chain::NetworkSim* net_;
  crypto::Drbg rng_;
  mutable std::mutex mu_;
  std::vector<SimTransport*> endpoints_;  // index = node id
  std::deque<Pending> queue_;
};

/// \brief One simulated endpoint. `self_id` must be a node id of the
/// hub's NetworkSim.
class SimTransport : public Transport {
 public:
  SimTransport(SimHub* hub, uint32_t self_id) : hub_(hub), self_id_(self_id) {}
  ~SimTransport() override { Stop(); }

  void SetHandler(HandlerFn handler) override { handler_ = std::move(handler); }
  Status Start() override;
  void Stop() override;
  Status Send(uint32_t peer, MsgType type, ByteView body) override;
  Status Broadcast(MsgType type, ByteView body) override;
  uint32_t self_id() const override { return self_id_; }
  size_t cluster_size() const override;

 private:
  friend class SimHub;

  SimHub* hub_;
  uint32_t self_id_;
  bool started_ = false;
  HandlerFn handler_;
};

}  // namespace confide::net
