/// \file frame_client.h
/// \brief Blocking request/reply client for the framed TCP plane: the
/// side of the wire a gateway (or test) speaks to a `confided` node.
///
/// One connection, one in-flight request at a time (serialized by an
/// internal mutex — share an instance across threads or use one per
/// worker). A request whose connection died is retried once on a fresh
/// connection, which makes node restarts invisible to idempotent
/// queries.

#pragma once

#include <mutex>
#include <string>

#include "net/frame.h"

namespace confide::net {

class FrameClient {
 public:
  /// \brief `addr` is "host:port". Connects lazily on first Call.
  static Result<FrameClient> Dial(const std::string& addr);

  FrameClient(FrameClient&& other) noexcept;
  FrameClient& operator=(FrameClient&& other) noexcept;
  FrameClient(const FrameClient&) = delete;
  FrameClient& operator=(const FrameClient&) = delete;
  ~FrameClient();

  /// \brief Sends one frame and blocks for the reply frame.
  Result<OwnedFrame> Call(MsgType type, ByteView body);

 private:
  FrameClient(std::string host, uint16_t port)
      : host_(std::move(host)), port_(port) {}

  Status EnsureConnected();
  void Disconnect();
  Result<OwnedFrame> RoundTrip(MsgType type, ByteView body);

  std::mutex mu_;
  std::string host_;
  uint16_t port_ = 0;
  int fd_ = -1;
  FrameAssembler assembler_;
};

}  // namespace confide::net
