/// \file cluster.h
/// \brief PBFT-lite block replication over a Transport: N CONFIDE nodes
/// (one process each under TcpTransport, or one SimHub under
/// SimTransport) agree on a single block sequence.
///
/// Protocol (docs/WIRE_PROTOCOL.md §Consensus plane): the leader of the
/// current view (node `view % n`) drains its pools into a block and
/// broadcasts kPrePrepare [view, seq, block]; each replica answers with a
/// broadcast kPrepare [view, seq, digest] (the pre-prepare carries the
/// leader's implicit prepare), sends kCommit once 2f+1 prepares are in,
/// and applies the block once 2f+1 commits are in — in seq order, through
/// the same deterministic Node::ApplyBlock every path uses, so converged
/// heights imply converged tip hashes and state roots. f = (n-1)/3; n = 3
/// degenerates to f = 0 (crash tolerance only), n ≥ 4 gives f ≥ 1.
///
/// Leader failover (docs/WIRE_PROTOCOL.md §View change): the leader
/// broadcasts kHeartbeat [view, height] when idle. A replica that hears
/// nothing from the current leader for a randomized timeout broadcasts
/// kViewChange [new_view, last_applied, prepared certificates]; the
/// leader of new_view collects 2f+1 of them, re-proposes the highest
/// prepared-but-uncommitted entries in kNewView, and normal operation
/// resumes in the new view. Timeouts grow exponentially across
/// consecutive failed elections so a partitioned minority cannot livelock
/// the cluster. The failure detector runs only when
/// ClusterOptions::heartbeat_ms > 0; deterministic tests drive elections
/// explicitly via StartViewChange().
///
/// Lost frames (chaos drops, real packet loss) are repaired two ways:
/// the leader retransmits an unacknowledged pre-prepare, and a replica
/// that sees seq jump past its tip pulls the gap with
/// kFetchBlocks [from, to) → kBlocksReply. The same pull path is the
/// crash/rejoin catch-up (docs/OPERATIONS.md §Rejoin): a restarted node
/// recovers its durable prefix from the WAL, then CatchUp() fetches the
/// rest from any live peer; its stale view heals the moment it sees a
/// heartbeat or pre-prepare from the legitimate leader of a newer view.

#pragma once

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <map>
#include <memory>
#include <mutex>
#include <set>
#include <thread>

#include "confide/system.h"
#include "net/frame.h"
#include "net/transport.h"

namespace confide::net {

/// \brief Blocks per kFetchBlocks request (bounded so a reply of
/// block_max_bytes blocks stays well under kMaxFramePayload).
inline constexpr uint64_t kFetchBatchBlocks = 256;

struct ClusterOptions {
  /// Per-attempt quorum wait in LeaderTick before retransmitting.
  uint64_t propose_wait_ms = 1000;
  /// Retransmit attempts before LeaderTick gives up.
  uint32_t propose_retries = 5;
  /// CatchUp per-batch reply wait.
  uint64_t fetch_wait_ms = 5000;
  /// Leader heartbeat cadence. 0 disables the failure detector entirely
  /// (simulated tests drive elections explicitly via StartViewChange).
  uint64_t heartbeat_ms = 0;
  /// Base replica silence budget before starting a view change. The
  /// effective timeout doubles per consecutive failed election (capped at
  /// view_timeout_max_ms) and carries a per-node random jitter of up to
  /// half the base so replicas do not stampede.
  uint64_t view_timeout_ms = 1000;
  uint64_t view_timeout_max_ms = 16000;
  /// Seed for the election jitter PRNG (mixed with the node id).
  uint64_t election_seed = 1;
};

/// \brief One cluster member: a bootstrapped ConfideSystem plus the
/// replication state machine, wired to a Transport. Thread-safe: the
/// frame handler runs on transport reader threads, LeaderTick/CatchUp on
/// the caller's thread, the failure detector on its own thread.
class ClusterNode {
 public:
  /// \brief `system` must outlive the ClusterNode and is not owned.
  ClusterNode(core::ConfideSystem* system, std::unique_ptr<Transport> transport,
              ClusterOptions options = ClusterOptions{});
  ~ClusterNode();

  /// \brief Installs the frame handler, starts the transport and (when
  /// heartbeat_ms > 0) the heartbeat/election monitor thread.
  Status Start();
  void Stop();

  uint32_t self_id() const { return transport_->self_id(); }
  /// \brief Current view (monotonic; bumped by completed elections).
  uint64_t view() const { return view_.load(std::memory_order_acquire); }
  /// \brief Leader of view v is node v % n.
  uint32_t LeaderOf(uint64_t v) const {
    return uint32_t(v % transport_->cluster_size());
  }
  uint32_t leader() const { return LeaderOf(view()); }
  bool is_leader() const { return leader() == self_id(); }
  Transport* transport() { return transport_.get(); }
  core::ConfideSystem* system() { return system_; }

  uint64_t Height() const { return system_->node()->Height(); }
  crypto::Hash256 TipHash() const { return system_->node()->TipHash(); }

  /// \brief 2f+1 with f = (n-1)/3.
  static size_t Quorum(size_t n) { return 2 * ((n - 1) / 3) + 1; }

  /// \brief Leader: pre-verify the pools and replicate one block end to
  /// end (propose, quorum, apply — retransmitting on timeout). Returns
  /// the number of transactions committed; 0 when the pools are empty.
  /// Aborts (requeueing the block's transactions) when this node loses
  /// the leadership view mid-round. Blocks until the cluster applies the
  /// block, so it is for the TCP deployment; simulated tests drive
  /// ProposeOnce + SimHub::DeliverAll.
  Result<size_t> LeaderTick();

  /// \brief Leader: propose one block and broadcast its pre-prepare
  /// without waiting. Returns the block's seq (= height), NotFound when
  /// the pools are empty, or Unavailable when this node is not the
  /// leader of the current view.
  Result<uint64_t> ProposeOnce();

  /// \brief Re-broadcasts the pre-prepare for a still-pending seq.
  Status Retransmit(uint64_t seq);

  /// \brief Blocks until this node has applied `seq` (Height() > seq).
  Status WaitApplied(uint64_t seq, uint64_t timeout_ms);

  /// \brief Pulls blocks from `peer` in kFetchBatchBlocks batches until a
  /// batch makes no progress (caught up). Blocking; TCP deployment only.
  Status CatchUp(uint32_t peer);

  /// \brief Broadcasts a kViewChange for `target_view` (> view()),
  /// recording this node's own vote; when this node is the leader of
  /// `target_view` and 2f+1 view-changes are already in, it completes the
  /// election immediately. Re-invoking with the same target re-broadcasts
  /// (the retry path for lost view-change frames). No-op when
  /// target_view <= view(). The failure detector calls this on leader
  /// silence; deterministic tests call it directly.
  void StartViewChange(uint64_t target_view);

  /// \brief Test hook: true while a gap-repair fetch is outstanding.
  bool fetch_in_flight_for_test() const {
    std::lock_guard<std::mutex> lock(mu_);
    return fetch_in_flight_;
  }

 private:
  struct Pending {
    uint64_t view = 0;              ///< view the block was (re-)proposed in
    Bytes block_wire;               ///< empty until the pre-prepare arrives
    crypto::Hash256 digest{};       ///< sha256 of block_wire
    std::set<uint32_t> prepares;    ///< voter node ids (self included)
    std::set<uint32_t> commits;
    bool commit_sent = false;
    bool committed = false;
  };

  /// \brief One peer's kViewChange: its applied height plus the prepared
  /// certificates (seq → highest view + block) it carried.
  struct ViewChangeMsg {
    uint64_t last_applied = 0;
    std::map<uint64_t, std::pair<uint64_t, Bytes>> prepared;  // seq → (view, wire)
  };

  std::optional<OwnedFrame> HandleFrame(uint32_t from, MsgType type, ByteView body);

  std::optional<OwnedFrame> OnSubmitTx(ByteView body);
  std::optional<OwnedFrame> OnQueryReceipt(ByteView body);
  std::optional<OwnedFrame> OnQueryStatus();
  std::optional<OwnedFrame> OnQueryPkInfo();
  void OnPrePrepare(uint32_t from, ByteView body);
  void OnVote(uint32_t from, MsgType type, ByteView body);
  std::optional<OwnedFrame> OnFetchBlocks(ByteView body);
  void OnBlocksReply(ByteView body);
  void OnHeartbeat(uint32_t from, ByteView body);
  void OnViewChange(uint32_t from, ByteView body);
  void OnNewView(uint32_t from, ByteView body);

  /// \brief Advances one pending seq through the vote rounds: prepare
  /// quorum → broadcast commit; commit quorum → committed + apply sweep.
  void MaybeAdvanceLocked(uint64_t seq);
  /// \brief Applies committed pending blocks in seq order from the tip.
  void TryApplyLocked();
  /// \brief Issues one gap-repair kFetchBlocks [Height(), seq) to `peer`
  /// when seq is past the tip, the tip block is missing, and no fetch is
  /// already outstanding. Unlocks `lock` around the send.
  void MaybeFetchGapLocked(std::unique_lock<std::mutex>& lock, uint64_t seq,
                           uint32_t peer);
  /// \brief Broadcasts this node's kViewChange for target_view and, when
  /// it leads target_view with quorum, completes the election.
  void StartViewChangeLocked(uint64_t target_view);
  /// \brief New leader: with 2f+1 kViewChange for target_view collected,
  /// broadcast kNewView re-proposing the carried prepared certificates
  /// and adopt the view.
  void MaybeCompleteElectionLocked(uint64_t target_view);
  /// \brief Switches to view v: resets election state, clears injected
  /// fault flags (their recovery signal), wakes waiters.
  void AdoptViewLocked(uint64_t v);
  /// \brief Installs a (re-)proposed block into pending_[seq] under
  /// `view`, replacing any stale lower-view entry, and broadcasts this
  /// node's kPrepare. `proposer` contributes the implicit prepare.
  void InstallProposalLocked(uint64_t view, uint64_t seq, ByteView wire,
                             uint32_t proposer);
  /// \brief Drops an uncommitted proposal this node abandoned (deposed or
  /// out of retries) and requeues its transactions unless a prepare
  /// quorum was already observed (then the entry may commit in the next
  /// view and must not be double-submitted).
  void AbandonProposalLocked(uint64_t seq);
  /// \brief Failure-detector / heartbeat loop (runs when heartbeat_ms > 0).
  void RunMonitor();
  uint64_t NextJitterLocked();
  /// \brief Current election timeout: base * 2^consecutive_failed capped
  /// at view_timeout_max_ms, plus jitter.
  uint64_t CurrentTimeoutMsLocked();

  core::ConfideSystem* system_;
  std::unique_ptr<Transport> transport_;
  ClusterOptions options_;

  mutable std::mutex mu_;
  std::condition_variable cv_;
  std::map<uint64_t, Pending> pending_;
  bool fetch_in_flight_ = false;  ///< one gap-repair pull at a time
  uint64_t fetch_generation_ = 0;  ///< bumped when a kBlocksReply lands
  size_t last_proposed_tx_count_ = 0;

  // View-change state (all guarded by mu_ except the published view_).
  std::atomic<uint64_t> view_{0};
  uint64_t view_target_ = 0;  ///< > view_ while an election is in progress
  uint64_t failed_elections_ = 0;  ///< consecutive; drives timeout growth
  std::map<uint64_t, std::map<uint32_t, ViewChangeMsg>> view_changes_;
  uint64_t new_view_sent_ = 0;  ///< highest view this node broadcast kNewView for
  std::chrono::steady_clock::time_point last_leader_seen_{};
  std::chrono::steady_clock::time_point last_heartbeat_sent_{};
  uint64_t jitter_state_ = 0;
  // Injected-fault flags awaiting their recovery signal (view adoption).
  bool fault_viewchange_dropped_ = false;
  bool fault_election_crashed_ = false;
  bool fault_stale_newview_sent_ = false;

  std::thread monitor_;
  std::atomic<bool> monitor_stop_{false};
  bool started_ = false;
};

}  // namespace confide::net
