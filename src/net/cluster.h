/// \file cluster.h
/// \brief PBFT-lite block replication over a Transport: N CONFIDE nodes
/// (one process each under TcpTransport, or one SimHub under
/// SimTransport) agree on a single block sequence.
///
/// Protocol (docs/WIRE_PROTOCOL.md §Consensus plane): the static leader
/// (node 0) drains its pools into a block and broadcasts
/// kPrePrepare [seq, block]; each replica answers with a broadcast
/// kPrepare [seq, digest] (the pre-prepare carries the leader's implicit
/// prepare), sends kCommit once 2f+1 prepares are in, and applies the
/// block once 2f+1 commits are in — in seq order, through the same
/// deterministic Node::ApplyBlock every path uses, so converged heights
/// imply converged tip hashes and state roots. f = (n-1)/3; n = 3
/// degenerates to f = 0 (crash tolerance only), n ≥ 4 gives f ≥ 1.
///
/// Lost frames (chaos drops, real packet loss) are repaired two ways:
/// the leader retransmits an unacknowledged pre-prepare, and a replica
/// that sees seq jump past its tip pulls the gap with
/// kFetchBlocks [from, to) → kBlocksReply. The same pull path is the
/// crash/rejoin catch-up (docs/OPERATIONS.md §Rejoin): a restarted node
/// recovers its durable prefix from the WAL, then CatchUp() fetches the
/// rest from any live peer.

#pragma once

#include <condition_variable>
#include <map>
#include <memory>
#include <mutex>
#include <set>

#include "confide/system.h"
#include "net/frame.h"
#include "net/transport.h"

namespace confide::net {

/// \brief Blocks per kFetchBlocks request (bounded so a reply of
/// block_max_bytes blocks stays well under kMaxFramePayload).
inline constexpr uint64_t kFetchBatchBlocks = 256;

struct ClusterOptions {
  /// Per-attempt quorum wait in LeaderTick before retransmitting.
  uint64_t propose_wait_ms = 1000;
  /// Retransmit attempts before LeaderTick gives up.
  uint32_t propose_retries = 5;
  /// CatchUp per-batch reply wait.
  uint64_t fetch_wait_ms = 5000;
};

/// \brief One cluster member: a bootstrapped ConfideSystem plus the
/// replication state machine, wired to a Transport. Thread-safe: the
/// frame handler runs on transport reader threads, LeaderTick/CatchUp on
/// the caller's thread.
class ClusterNode {
 public:
  /// \brief `system` must outlive the ClusterNode and is not owned.
  ClusterNode(core::ConfideSystem* system, std::unique_ptr<Transport> transport,
              ClusterOptions options = ClusterOptions{});
  ~ClusterNode();

  /// \brief Installs the frame handler and starts the transport.
  Status Start();
  void Stop();

  uint32_t self_id() const { return transport_->self_id(); }
  bool is_leader() const { return self_id() == 0; }
  Transport* transport() { return transport_.get(); }
  core::ConfideSystem* system() { return system_; }

  uint64_t Height() const { return system_->node()->Height(); }
  crypto::Hash256 TipHash() const { return system_->node()->TipHash(); }

  /// \brief 2f+1 with f = (n-1)/3.
  static size_t Quorum(size_t n) { return 2 * ((n - 1) / 3) + 1; }

  /// \brief Leader: pre-verify the pools and replicate one block end to
  /// end (propose, quorum, apply — retransmitting on timeout). Returns
  /// the number of transactions committed; 0 when the pools are empty.
  /// Blocks until the cluster applies the block, so it is for the TCP
  /// deployment; simulated tests drive ProposeOnce + SimHub::DeliverAll.
  Result<size_t> LeaderTick();

  /// \brief Leader: propose one block and broadcast its pre-prepare
  /// without waiting. Returns the block's seq (= height), or NotFound
  /// when the pools are empty.
  Result<uint64_t> ProposeOnce();

  /// \brief Re-broadcasts the pre-prepare for a still-pending seq.
  Status Retransmit(uint64_t seq);

  /// \brief Blocks until this node has applied `seq` (Height() > seq).
  Status WaitApplied(uint64_t seq, uint64_t timeout_ms);

  /// \brief Pulls blocks from `peer` in kFetchBatchBlocks batches until a
  /// batch makes no progress (caught up). Blocking; TCP deployment only.
  Status CatchUp(uint32_t peer);

 private:
  struct Pending {
    Bytes block_wire;               ///< empty until the pre-prepare arrives
    crypto::Hash256 digest{};       ///< sha256 of block_wire
    std::set<uint32_t> prepares;    ///< voter node ids (self included)
    std::set<uint32_t> commits;
    bool commit_sent = false;
    bool committed = false;
  };

  std::optional<OwnedFrame> HandleFrame(uint32_t from, MsgType type, ByteView body);

  std::optional<OwnedFrame> OnSubmitTx(ByteView body);
  std::optional<OwnedFrame> OnQueryReceipt(ByteView body);
  std::optional<OwnedFrame> OnQueryStatus();
  std::optional<OwnedFrame> OnQueryPkInfo();
  void OnPrePrepare(uint32_t from, ByteView body);
  void OnVote(uint32_t from, MsgType type, ByteView body);
  std::optional<OwnedFrame> OnFetchBlocks(ByteView body);
  void OnBlocksReply(ByteView body);

  /// \brief Advances one pending seq through the vote rounds: prepare
  /// quorum → broadcast commit; commit quorum → committed + apply sweep.
  void MaybeAdvanceLocked(uint64_t seq);
  /// \brief Applies committed pending blocks in seq order from the tip.
  void TryApplyLocked();

  core::ConfideSystem* system_;
  std::unique_ptr<Transport> transport_;
  ClusterOptions options_;

  mutable std::mutex mu_;
  std::condition_variable cv_;
  std::map<uint64_t, Pending> pending_;
  bool fetch_in_flight_ = false;  ///< one gap-repair pull at a time
  uint64_t fetch_generation_ = 0;  ///< bumped when a kBlocksReply lands
  size_t last_proposed_tx_count_ = 0;
};

}  // namespace confide::net
