#include "net/sim_transport.h"

#include "common/fault.h"
#include "common/metrics.h"

namespace confide::net {

namespace {

struct SimMetrics {
  metrics::Counter* send = metrics::GetCounter("net.send.count");
  metrics::Counter* send_bytes = metrics::GetCounter("net.send.bytes");
  metrics::Counter* drop = metrics::GetCounter("net.send.drop.count");
  metrics::Counter* unreachable = metrics::GetCounter("net.send.unreachable.count");
  metrics::Counter* recv = metrics::GetCounter("net.recv.count");
  metrics::Counter* recv_bytes = metrics::GetCounter("net.recv.bytes");

  static SimMetrics& Get() {
    static SimMetrics m;
    return m;
  }
};

}  // namespace

size_t SimHub::DeliverAll() {
  size_t delivered = 0;
  while (DeliverOne()) ++delivered;
  return delivered;
}

bool SimHub::DeliverOne() {
  Pending next;
  SimTransport* target = nullptr;
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (queue_.empty()) return false;
    next = std::move(queue_.front());
    queue_.pop_front();
    if (next.to < endpoints_.size()) target = endpoints_[next.to];
  }
  if (target == nullptr || !target->started_ || !target->handler_) {
    SimMetrics::Get().drop->Increment();
    return true;
  }
  SimMetrics::Get().recv->Increment();
  SimMetrics::Get().recv_bytes->Increment(next.frame.body.size());
  std::optional<OwnedFrame> reply =
      target->handler_(next.from, next.frame.type, next.frame.body);
  if (reply.has_value()) {
    // Replies travel the same lossy medium back to the requester.
    (void)Route(next.to, next.from, reply->type, reply->body);
  }
  return true;
}

size_t SimHub::pending() const {
  std::lock_guard<std::mutex> lock(mu_);
  return queue_.size();
}

void SimHub::Register(SimTransport* endpoint) {
  std::lock_guard<std::mutex> lock(mu_);
  if (endpoints_.size() <= endpoint->self_id_) {
    endpoints_.resize(endpoint->self_id_ + 1, nullptr);
  }
  endpoints_[endpoint->self_id_] = endpoint;
}

void SimHub::Unregister(SimTransport* endpoint) {
  std::lock_guard<std::mutex> lock(mu_);
  if (endpoint->self_id_ < endpoints_.size() &&
      endpoints_[endpoint->self_id_] == endpoint) {
    endpoints_[endpoint->self_id_] = nullptr;
  }
}

Status SimHub::Route(uint32_t from, uint32_t to, MsgType type, ByteView body) {
  SimMetrics::Get().send->Increment();
  SimMetrics::Get().send_bytes->Increment(body.size());
  if (!net_->Reachable(from, to)) {
    SimMetrics::Get().unreachable->Increment();
    return Status::OK();  // partitioned: silently lost, like the real net
  }
  if (fault::FaultInjector::Global().ShouldFail("fault.net.send.drop")) {
    SimMetrics::Get().drop->Increment();
    return Status::OK();
  }
  std::lock_guard<std::mutex> lock(mu_);
  const double drop_rate = net_->DropRate(from, to);
  if (drop_rate > 0.0 &&
      double(rng_.NextBounded(1'000'000)) < drop_rate * 1'000'000.0) {
    SimMetrics::Get().drop->Increment();
    return Status::OK();
  }
  queue_.push_back(Pending{from, to, OwnedFrame{type, ToBytes(body)}});
  return Status::OK();
}

Status SimTransport::Start() {
  if (self_id_ >= hub_->net_->NodeCount()) {
    return Status::InvalidArgument("sim transport: node id " +
                                   std::to_string(self_id_) +
                                   " not in the NetworkSim");
  }
  hub_->Register(this);
  started_ = true;
  return Status::OK();
}

void SimTransport::Stop() {
  if (!started_) return;
  started_ = false;
  hub_->Unregister(this);
}

Status SimTransport::Send(uint32_t peer, MsgType type, ByteView body) {
  if (!started_) return Status::Unavailable("sim transport: not started");
  return hub_->Route(self_id_, peer, type, body);
}

Status SimTransport::Broadcast(MsgType type, ByteView body) {
  if (!started_) return Status::Unavailable("sim transport: not started");
  const size_t n = hub_->net_->NodeCount();
  for (uint32_t peer = 0; peer < n; ++peer) {
    if (peer == self_id_) continue;
    (void)hub_->Route(self_id_, peer, type, body);
  }
  return Status::OK();
}

size_t SimTransport::cluster_size() const { return hub_->net_->NodeCount(); }

}  // namespace confide::net
