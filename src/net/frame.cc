#include "net/frame.h"

#include "common/endian.h"
#include "serialize/rlp.h"

namespace confide::net {

Bytes EncodeFrame(MsgType type, ByteView body) {
  serialize::RlpWriter w(body.size() + 16);
  size_t list = w.BeginList();
  w.WriteU64(kWireVersion);
  w.WriteU64(uint64_t(type));
  w.WriteBytes(body);
  w.EndList(list);
  Bytes payload = std::move(w).Take();

  Bytes frame;
  frame.reserve(kLengthPrefixBytes + payload.size());
  uint8_t len_be[kLengthPrefixBytes];
  StoreBe32(len_be, uint32_t(payload.size()));
  Append(&frame, ByteView(len_be, kLengthPrefixBytes));
  Append(&frame, payload);
  return frame;
}

Result<FrameView> DecodeFramePayload(ByteView payload) {
  CONFIDE_ASSIGN_OR_RETURN(serialize::RlpReader reader,
                           serialize::RlpReader::AtList(payload));
  FrameView frame;
  CONFIDE_ASSIGN_OR_RETURN(frame.version, reader.NextU64());
  if (frame.version != kWireVersion) {
    return Status::Corruption("frame: unsupported wire version " +
                              std::to_string(frame.version));
  }
  CONFIDE_ASSIGN_OR_RETURN(uint64_t type, reader.NextU64());
  if (type > 0xff) {
    return Status::Corruption("frame: type tag does not fit u8");
  }
  frame.type = MsgType(uint8_t(type));
  CONFIDE_ASSIGN_OR_RETURN(frame.body, reader.NextBytes());
  CONFIDE_RETURN_NOT_OK(reader.ExpectEnd("frame"));
  return frame;
}

void FrameAssembler::Append(ByteView chunk) {
  // Reclaim consumed prefix before growing (keeps the buffer bounded by
  // one pending frame plus the new chunk).
  if (consumed_ > 0) {
    buf_.erase(buf_.begin(), buf_.begin() + ptrdiff_t(consumed_));
    consumed_ = 0;
  }
  confide::Append(&buf_, chunk);
}

Result<bool> FrameAssembler::Next(FrameView* out) {
  const size_t avail = buf_.size() - consumed_;
  if (avail < kLengthPrefixBytes) return false;
  const uint8_t* base = buf_.data() + consumed_;
  const uint32_t announced = LoadBe32(base);
  if (announced == 0) {
    return Status::Corruption("frame: zero-length payload");
  }
  if (size_t(announced) > max_payload_) {
    return Status::Corruption("frame: announced payload " +
                              std::to_string(announced) + " exceeds cap " +
                              std::to_string(max_payload_));
  }
  // Remaining-based guard: the announced length is only ever compared
  // against bytes actually buffered; no pointer arithmetic on it until
  // the full payload is present.
  if (avail - kLengthPrefixBytes < size_t(announced)) return false;
  ByteView payload(base + kLengthPrefixBytes, size_t(announced));
  CONFIDE_ASSIGN_OR_RETURN(*out, DecodeFramePayload(payload));
  consumed_ += kLengthPrefixBytes + size_t(announced);
  return true;
}

Status FrameAssembler::Finish() const {
  if (buf_.size() != consumed_) {
    return Status::Corruption("frame: stream ended mid-frame (" +
                              std::to_string(buf_.size() - consumed_) +
                              " bytes pending)");
  }
  return Status::OK();
}

}  // namespace confide::net
