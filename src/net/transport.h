/// \file transport.h
/// \brief The transport seam: how a cluster node exchanges frames with
/// its peers, abstracted from what carries them.
///
/// Everything above this interface (chain/cluster replication, the
/// gateway plane) is transport-agnostic. Two implementations exist:
///
///  - SimTransport (sim_transport.h): in-process delivery over the
///    NetworkSim link model — deterministic, clockless, the substrate for
///    the chaos suite and the single-process benchmarks. This is the
///    original "all nodes in one process" path, unchanged in behavior,
///    now behind the seam.
///  - TcpTransport (tcp_transport.h): real length-prefixed TCP between
///    separately deployed processes (the `confided` binary).
///
/// Contract shared by all implementations:
///  - Send/Broadcast are fire-and-forget: a returned OK means the frame
///    was handed to the medium, not that the peer processed it. Loss is
///    legal (links drop, connections die); consensus above must tolerate
///    it (and repairs gaps via kFetchBlocks).
///  - The handler is invoked once per complete, well-formed frame, with
///    the sender's node id (kClientPeer for unidentified client/gateway
///    connections). The body view is only valid for the duration of the
///    call. The optional returned frame is written back to the sender
///    (the request/reply plane).
///  - Handlers may call Send/Broadcast re-entrantly; implementations must
///    not hold internal locks across handler invocations.

#pragma once

#include <cstdint>
#include <functional>
#include <optional>

#include "common/bytes.h"
#include "common/status.h"
#include "net/frame.h"

namespace confide::net {

/// \brief Sender id the handler sees for connections that never
/// identified as a cluster node (clients, the gateway).
inline constexpr uint32_t kClientPeer = UINT32_MAX;

class Transport {
 public:
  /// \brief Frame delivery callback. `from` is the sending node id or
  /// kClientPeer; `body` aliases transport-internal memory for the call
  /// only. A returned frame is sent back to the sender.
  using HandlerFn =
      std::function<std::optional<OwnedFrame>(uint32_t from, MsgType type, ByteView body)>;

  virtual ~Transport() = default;

  /// \brief Installs the delivery handler. Must be called before Start.
  virtual void SetHandler(HandlerFn handler) = 0;

  /// \brief Begins accepting/delivering frames.
  virtual Status Start() = 0;

  /// \brief Stops delivery and releases the medium. Idempotent.
  virtual void Stop() = 0;

  /// \brief Sends one frame to `peer` (fire-and-forget).
  virtual Status Send(uint32_t peer, MsgType type, ByteView body) = 0;

  /// \brief Sends one frame to every other cluster node. Per-peer
  /// failures are counted (net.send.error.count), not returned — a
  /// broadcast succeeds if the local transport is up.
  virtual Status Broadcast(MsgType type, ByteView body) = 0;

  /// \brief This endpoint's cluster node id.
  virtual uint32_t self_id() const = 0;

  /// \brief Cluster size (peers + self).
  virtual size_t cluster_size() const = 0;
};

}  // namespace confide::net
