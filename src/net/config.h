/// \file config.h
/// \brief Flag/env configuration seam for the deployment binaries
/// (docs/OPERATIONS.md §Configuration is the operator-facing reference).
///
/// Every knob is a `--flag=value` argument with a `CONFIDED_*`
/// environment fallback (flag wins), so the same binary works under a
/// shell, a process supervisor, or a container runtime. The parse is the
/// single place deployment shape enters the process — bootstrap code
/// below it never consults argv or the environment.

#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/status.h"

namespace confide::net {

/// \brief `confided` node process configuration.
///
///   --node-id=N           (CONFIDED_NODE_ID)      this node's index
///   --peers=h:p,h:p,...   (CONFIDED_PEERS)        one address per node,
///                                                 indexed by node id
///   --listen-host=H       (CONFIDED_LISTEN_HOST)  bind address
///   --seed=S              (CONFIDED_SEED)         consortium key seed —
///                         every node must use the same value (the
///                         deterministic stand-in for MAP/KMS
///                         provisioning, see system.h)
///   --block-max-bytes=B   (CONFIDED_BLOCK_MAX_BYTES)
///   --parallelism=P       (CONFIDED_PARALLELISM)  pre-verify threads
///   --state-dir=D         (CONFIDED_STATE_DIR)    WAL dir; empty = volatile
///   --tick-ms=T           (CONFIDED_TICK_MS)      leader propose cadence
///   --heartbeat-ms=T      (CONFIDED_HEARTBEAT_MS) leader heartbeat cadence;
///                         0 disables failover (static leader)
///   --view-timeout-ms=T   (CONFIDED_VIEW_TIMEOUT_MS) base leader-silence
///                         budget before a replica starts a view change
///   --metrics-out=PATH    (CONFIDED_METRICS_OUT)  metrics JSON on exit
struct NodeConfig {
  uint32_t node_id = 0;
  std::vector<std::string> peers;
  std::string listen_host = "0.0.0.0";
  uint64_t seed = 1;
  size_t block_max_bytes = 4096;
  uint32_t parallelism = 1;
  std::string state_dir;
  uint64_t tick_ms = 20;
  uint64_t heartbeat_ms = 100;
  uint64_t view_timeout_ms = 1000;
  std::string metrics_out;

  static Result<NodeConfig> FromArgs(int argc, char** argv);
};

/// \brief `confide_gateway` process configuration.
///
///   --nodes=h:p,h:p,...   (CONFIDED_NODES)        cluster node addresses
///   --listen=H:P          (CONFIDED_GW_LISTEN)    HTTP bind, default
///                                                 0.0.0.0:8080
///   --metrics-out=PATH    (CONFIDED_METRICS_OUT)  metrics JSON on exit
struct GatewayConfig {
  std::vector<std::string> nodes;
  std::string listen_host = "0.0.0.0";
  uint16_t listen_port = 8080;
  std::string metrics_out;

  static Result<GatewayConfig> FromArgs(int argc, char** argv);
};

/// \brief Splits a comma-separated list; empty input → empty vector.
std::vector<std::string> SplitCommaList(const std::string& value);

}  // namespace confide::net
