#include "net/gateway.h"

#include "chain/types.h"
#include "common/metrics.h"
#include "common/retry.h"
#include "serialize/json.h"
#include "serialize/rlp.h"

namespace confide::net {

namespace {

struct GatewayMetrics {
  metrics::Counter* request = metrics::GetCounter("gateway.request.count");
  metrics::Counter* submitted = metrics::GetCounter("gateway.tx.submitted.count");
  metrics::Counter* confidential =
      metrics::GetCounter("gateway.tx.confidential.count");
  metrics::Counter* plain = metrics::GetCounter("gateway.tx.public.count");
  metrics::Counter* rejected = metrics::GetCounter("gateway.tx.rejected.count");
  metrics::Counter* query = metrics::GetCounter("gateway.query.count");
  metrics::Counter* upstream_error =
      metrics::GetCounter("gateway.upstream.error.count");
  metrics::Counter* failover =
      metrics::GetCounter("gateway.upstream.failover.count");
  metrics::Counter* redirect = metrics::GetCounter("gateway.redirect.count");

  static GatewayMetrics& Get() {
    static GatewayMetrics m;
    return m;
  }
};

HttpResponse JsonError(int status, std::string_view message) {
  serialize::JsonValue obj{serialize::JsonValue::Object{}};
  obj.Set("error", std::string(message));
  return HttpResponse::Json(status, serialize::JsonWrite(obj));
}

}  // namespace

Gateway::Gateway(GatewayOptions options) : options_(std::move(options)) {}

Result<OwnedFrame> Gateway::SubmitToLeader(ByteView wire) {
  Result<OwnedFrame> reply = Status::Unavailable("gateway: no reply");
  common::RetryPolicy retry(common::RetryOptions{
      .max_attempts = 5,
      .base_backoff_ns = 20'000'000,  // 20ms; an election takes a timeout
      .multiplier = 2.0,
      .max_backoff_ns = 400'000'000,
      .jitter = 0.25,
  });
  Status st = retry.Run("gateway submit", [&]() -> Status {
    const size_t n = nodes_.size();
    const size_t idx = leader_hint_.load(std::memory_order_relaxed) % n;
    auto r = nodes_[idx]->Call(MsgType::kSubmitTx, wire);
    if (!r.ok()) {
      // Connect/send error: fail over to the next node. If it is not the
      // leader either, its kRedirect points us at whoever is.
      GatewayMetrics::Get().failover->Increment();
      leader_hint_.store(uint32_t((idx + 1) % n), std::memory_order_relaxed);
      return r.status();
    }
    if (r->type == MsgType::kRedirect) {
      auto rd = serialize::RlpReader::AtList(r->body);
      if (rd.ok()) {
        auto ldr = rd->NextU64();
        auto view = rd->NextU64();
        if (ldr.ok() && view.ok() && *ldr < n) {
          GatewayMetrics::Get().redirect->Increment();
          leader_hint_.store(uint32_t(*ldr), std::memory_order_relaxed);
          return Status::Unavailable("gateway: redirected to node " +
                                     std::to_string(*ldr) + " (view " +
                                     std::to_string(*view) + ")");
        }
      }
      return Status::Unavailable("gateway: malformed kRedirect");
    }
    reply = std::move(r);
    return Status::OK();
  });
  if (!st.ok()) return st;
  return reply;
}

Result<OwnedFrame> Gateway::CallAnyNode(MsgType type, ByteView body,
                                        size_t start) {
  Result<OwnedFrame> last = Status::Unavailable("gateway: no nodes");
  for (size_t i = 0; i < nodes_.size(); ++i) {
    const size_t idx = (start + i) % nodes_.size();
    auto r = nodes_[idx]->Call(type, body);
    if (r.ok()) return r;
    if (i + 1 < nodes_.size()) GatewayMetrics::Get().failover->Increment();
    last = std::move(r);
  }
  return last;
}

Status Gateway::Start() {
  if (options_.nodes.empty()) {
    return Status::InvalidArgument("gateway: no cluster nodes configured");
  }
  for (const std::string& addr : options_.nodes) {
    CONFIDE_ASSIGN_OR_RETURN(FrameClient client, FrameClient::Dial(addr));
    nodes_.push_back(std::make_unique<FrameClient>(std::move(client)));
  }
  return server_.Start(options_.listen_host, options_.listen_port,
                       [this](const HttpRequest& req) { return Handle(req); });
}

void Gateway::Stop() { server_.Stop(); }

HttpResponse Gateway::Handle(const HttpRequest& req) {
  GatewayMetrics::Get().request->Increment();
  if (req.path == "/healthz") return HttpResponse::Text(200, "ok");
  if (req.path == "/metrics") {
    return HttpResponse::Json(
        200, metrics::MetricsRegistry::Global().Snapshot().ToJson());
  }
  if (req.path == "/v1/tx" && req.method == "POST") return SubmitTx(req);
  const std::string receipt_prefix = "/v1/receipt/";
  if (req.path.rfind(receipt_prefix, 0) == 0 && req.method == "GET") {
    return QueryReceipt(req.path.substr(receipt_prefix.size()));
  }
  if (req.path == "/v1/status" && req.method == "GET") return QueryStatus();
  if (req.path == "/v1/pk_info" && req.method == "GET") return QueryPkInfo();
  return JsonError(404, "no such endpoint: " + req.method + " " + req.path);
}

HttpResponse Gateway::SubmitTx(const HttpRequest& req) {
  auto doc = serialize::JsonParse(req.body);
  if (!doc.ok() || !doc->is_object()) {
    GatewayMetrics::Get().rejected->Increment();
    return JsonError(400, "body must be a JSON object");
  }
  const serialize::JsonValue* tx_hex = doc->Find("tx");
  if (tx_hex == nullptr || !tx_hex->is_string()) {
    GatewayMetrics::Get().rejected->Increment();
    return JsonError(400, "missing string field 'tx' (hex transaction wire)");
  }
  auto wire = HexDecode(tx_hex->as_string());
  if (!wire.ok()) {
    GatewayMetrics::Get().rejected->Increment();
    return JsonError(400, "field 'tx' is not valid hex");
  }
  // Decode enough to tag the TYPE (routing + metrics); the submit node
  // re-validates everything.
  auto tx = chain::TransactionRef::Decode(*wire);
  if (!tx.ok()) {
    GatewayMetrics::Get().rejected->Increment();
    return JsonError(400, "undecodable transaction: " + tx.status().message());
  }
  const bool is_confidential = tx->type == chain::TxType::kConfidential;

  auto reply = SubmitToLeader(*wire);
  if (!reply.ok()) {
    GatewayMetrics::Get().upstream_error->Increment();
    return JsonError(503, "submit node unreachable: " + reply.status().message());
  }
  if (reply->type != MsgType::kSubmitTxAck) {
    GatewayMetrics::Get().rejected->Increment();
    return JsonError(502, "unexpected reply frame from submit node");
  }
  auto r = serialize::RlpReader::AtList(reply->body);
  if (!r.ok()) return JsonError(502, "malformed kSubmitTxAck");
  auto accepted = r->NextU64();
  auto hash = r->NextFixed(32, "tx hash");
  auto message = r->NextBytes();
  if (!accepted.ok() || !hash.ok() || !message.ok()) {
    return JsonError(502, "malformed kSubmitTxAck");
  }
  serialize::JsonValue obj{serialize::JsonValue::Object{}};
  obj.Set("accepted", *accepted != 0);
  obj.Set("tx_hash", HexEncode(*hash));
  obj.Set("type", is_confidential ? "confidential" : "public");
  if (*accepted != 0) {
    (is_confidential ? GatewayMetrics::Get().confidential
                     : GatewayMetrics::Get().plain)
        ->Increment();
    GatewayMetrics::Get().submitted->Increment();
    return HttpResponse::Json(202, serialize::JsonWrite(obj));
  }
  GatewayMetrics::Get().rejected->Increment();
  obj.Set("error", std::string(reinterpret_cast<const char*>(message->data()),
                               message->size()));
  return HttpResponse::Json(400, serialize::JsonWrite(obj));
}

HttpResponse Gateway::QueryReceipt(const std::string& hash_hex) {
  GatewayMetrics::Get().query->Increment();
  auto hash = HexDecode(hash_hex);
  if (!hash.ok() || hash->size() != 32) {
    return JsonError(400, "receipt path needs a 32-byte hex tx hash");
  }
  serialize::RlpWriter w;
  size_t mark = w.BeginList();
  w.WriteBytes(ByteView(*hash));
  w.EndList(mark);
  // Receipts are replicated state: any node serves them identically, so
  // spread the read load off the leader and fail over past dead nodes.
  const Bytes body = std::move(w).Take();
  auto reply = CallAnyNode(MsgType::kQueryReceipt, ByteView(body),
                           nodes_.size() > 1 ? 1 : 0);
  if (!reply.ok()) {
    GatewayMetrics::Get().upstream_error->Increment();
    return JsonError(503, "query node unreachable: " + reply.status().message());
  }
  auto r = serialize::RlpReader::AtList(reply->body);
  if (!r.ok() || reply->type != MsgType::kReceiptReply) {
    return JsonError(502, "malformed kReceiptReply");
  }
  auto found = r->NextU64();
  auto wire = r->NextBytes();
  auto height = r->NextU64();
  if (!found.ok() || !wire.ok() || !height.ok()) {
    return JsonError(502, "malformed kReceiptReply");
  }
  serialize::JsonValue obj{serialize::JsonValue::Object{}};
  obj.Set("found", *found != 0);
  obj.Set("height", *height);
  if (*found != 0) {
    obj.Set("receipt_wire", HexEncode(*wire));
    // Confidential receipts are sealed blobs — `success` is only
    // readable for public transactions; clients open sealed receipts
    // with their retained k_tx.
    auto receipt = chain::ReceiptRef::Decode(*wire);
    if (receipt.ok()) obj.Set("success", receipt->success);
  }
  return HttpResponse::Json(*found != 0 ? 200 : 404, serialize::JsonWrite(obj));
}

HttpResponse Gateway::QueryStatus() {
  GatewayMetrics::Get().query->Increment();
  serialize::JsonValue nodes{serialize::JsonValue::Array{}};
  uint64_t best_view = 0;
  uint64_t best_leader = 0;
  bool saw_leader = false;
  for (auto& client : nodes_) {
    auto reply = client->Call(MsgType::kQueryStatus, ByteView());
    serialize::JsonValue entry{serialize::JsonValue::Object{}};
    if (!reply.ok() || reply->type != MsgType::kStatusReply) {
      GatewayMetrics::Get().upstream_error->Increment();
      entry.Set("reachable", false);
      nodes.as_array().push_back(std::move(entry));
      continue;
    }
    auto r = serialize::RlpReader::AtList(reply->body);
    if (!r.ok()) continue;
    auto node_id = r->NextU64();
    auto height = r->NextU64();
    auto tip = r->NextFixed(32, "tip");
    auto verified = r->NextU64();
    auto unverified = r->NextU64();
    if (!node_id.ok() || !height.ok() || !tip.ok() || !verified.ok() ||
        !unverified.ok()) {
      continue;
    }
    entry.Set("reachable", true);
    entry.Set("node_id", *node_id);
    entry.Set("height", *height);
    entry.Set("tip_hash", HexEncode(*tip));
    entry.Set("verified_pool", *verified);
    entry.Set("unverified_pool", *unverified);
    auto node_view = r->NextU64();
    auto node_leader = r->NextU64();
    if (node_view.ok() && node_leader.ok()) {
      entry.Set("view", *node_view);
      entry.Set("leader", *node_leader);
      // Track the freshest leader announcement so submissions after a
      // failover go straight to the new leader.
      if (!saw_leader || *node_view > best_view) {
        best_view = *node_view;
        best_leader = *node_leader;
        saw_leader = true;
      }
    }
    nodes.as_array().push_back(std::move(entry));
  }
  if (saw_leader && best_leader < nodes_.size()) {
    leader_hint_.store(uint32_t(best_leader), std::memory_order_relaxed);
  }
  serialize::JsonValue obj{serialize::JsonValue::Object{}};
  obj.Set("nodes", std::move(nodes));
  return HttpResponse::Json(200, serialize::JsonWrite(obj));
}

HttpResponse Gateway::QueryPkInfo() {
  GatewayMetrics::Get().query->Increment();
  auto reply = CallAnyNode(MsgType::kQueryPkInfo, ByteView(), 0);
  if (!reply.ok() || reply->type != MsgType::kPkInfoReply) {
    GatewayMetrics::Get().upstream_error->Increment();
    return JsonError(503, "pk_info unavailable");
  }
  auto r = serialize::RlpReader::AtList(reply->body);
  if (!r.ok()) return JsonError(502, "malformed kPkInfoReply");
  auto blob = r->NextBytes();
  if (!blob.ok()) return JsonError(502, "malformed kPkInfoReply");
  serialize::JsonValue obj{serialize::JsonValue::Object{}};
  obj.Set("pk_info", HexEncode(*blob));
  return HttpResponse::Json(200, serialize::JsonWrite(obj));
}

}  // namespace confide::net
