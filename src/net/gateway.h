/// \file gateway.h
/// \brief HTTP/JSON gateway: the client-facing edge of a CONFIDE
/// deployment (docs/WIRE_PROTOCOL.md §Gateway HTTP API).
///
/// Clients build and sign transactions locally — confidential (TYPE=1)
/// envelopes are sealed client-side against pk_tx, so the gateway never
/// sees plaintext — and POST the wire bytes as hex. The gateway tags the
/// TYPE, forwards the frame to the submit node (the leader) over the
/// framed TCP plane, and serves receipt/status queries from any node.
///
/// Endpoints (JSON unless noted):
///   POST /v1/tx           {"tx": "<hex>"} → {"accepted", "tx_hash", "type"}
///   GET  /v1/receipt/<tx_hash hex>        → {"found", "receipt_wire",
///                                            "success", "height"}
///   GET  /v1/status                       → per-node heights + tip hashes
///   GET  /v1/pk_info                      → {"pk_info": "<hex>"}
///   GET  /metrics                         → this process's metrics JSON
///   GET  /healthz                         → 200 "ok" (text)

#pragma once

#include <atomic>
#include <memory>
#include <string>
#include <vector>

#include "net/frame_client.h"
#include "net/http.h"

namespace confide::net {

struct GatewayOptions {
  /// "host:port" of every cluster node, indexed by node id. Submissions
  /// chase the current leader (the gateway follows kRedirect hints and
  /// fails over on connect errors); any node serves queries.
  std::vector<std::string> nodes;
  std::string listen_host = "0.0.0.0";
  uint16_t listen_port = 8080;  ///< 0 = ephemeral, see port()
};

class Gateway {
 public:
  explicit Gateway(GatewayOptions options);

  /// \brief Dials the nodes and starts the HTTP listener.
  Status Start();
  void Stop();

  uint16_t port() const { return server_.port(); }

  /// \brief The node id submissions currently route to (updated from
  /// kRedirect hints and status sweeps).
  uint32_t leader_hint() const {
    return leader_hint_.load(std::memory_order_relaxed);
  }

 private:
  HttpResponse Handle(const HttpRequest& req);
  HttpResponse SubmitTx(const HttpRequest& req);
  HttpResponse QueryReceipt(const std::string& hash_hex);
  HttpResponse QueryStatus();
  HttpResponse QueryPkInfo();

  /// \brief Submits to the leader-hint node, following kRedirect hints
  /// and failing over to the next node on connect errors, with
  /// common::RetryPolicy backoff between attempts (an election in
  /// progress answers nobody for a moment).
  Result<OwnedFrame> SubmitToLeader(ByteView wire);
  /// \brief Tries every node starting at `start` until one answers;
  /// counts gateway.upstream.failover.count per dead node skipped.
  Result<OwnedFrame> CallAnyNode(MsgType type, ByteView body, size_t start);

  GatewayOptions options_;
  HttpServer server_;
  std::vector<std::unique_ptr<FrameClient>> nodes_;
  std::atomic<uint32_t> leader_hint_{0};
};

}  // namespace confide::net
