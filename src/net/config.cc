#include "net/config.h"

#include <cstdlib>
#include <map>

#include "net/tcp_transport.h"

namespace confide::net {

namespace {

/// Collects --key=value arguments; rejects anything else.
Result<std::map<std::string, std::string>> CollectFlags(int argc, char** argv) {
  std::map<std::string, std::string> flags;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg.rfind("--", 0) != 0) {
      return Status::InvalidArgument("unexpected argument '" + arg +
                                     "' (flags are --key=value)");
    }
    size_t eq = arg.find('=');
    if (eq == std::string::npos) {
      return Status::InvalidArgument("flag '" + arg + "' needs =value");
    }
    flags[arg.substr(2, eq - 2)] = arg.substr(eq + 1);
  }
  return flags;
}

/// Flag value, else env fallback, else `fallback`.
std::string Lookup(const std::map<std::string, std::string>& flags,
                   const std::string& flag, const char* env,
                   const std::string& fallback) {
  auto it = flags.find(flag);
  if (it != flags.end()) return it->second;
  const char* from_env = std::getenv(env);
  if (from_env != nullptr && from_env[0] != '\0') return from_env;
  return fallback;
}

Result<uint64_t> LookupU64(const std::map<std::string, std::string>& flags,
                           const std::string& flag, const char* env,
                           uint64_t fallback) {
  const std::string raw = Lookup(flags, flag, env, std::to_string(fallback));
  char* end = nullptr;
  uint64_t v = std::strtoull(raw.c_str(), &end, 10);
  if (end == nullptr || *end != '\0' || raw.empty()) {
    return Status::InvalidArgument("--" + flag + ": '" + raw +
                                   "' is not an unsigned integer");
  }
  return v;
}

}  // namespace

std::vector<std::string> SplitCommaList(const std::string& value) {
  std::vector<std::string> out;
  size_t start = 0;
  while (start <= value.size()) {
    size_t comma = value.find(',', start);
    if (comma == std::string::npos) comma = value.size();
    if (comma > start) out.push_back(value.substr(start, comma - start));
    start = comma + 1;
  }
  return out;
}

Result<NodeConfig> NodeConfig::FromArgs(int argc, char** argv) {
  CONFIDE_ASSIGN_OR_RETURN(auto flags, CollectFlags(argc, argv));
  NodeConfig cfg;
  CONFIDE_ASSIGN_OR_RETURN(uint64_t node_id,
                           LookupU64(flags, "node-id", "CONFIDED_NODE_ID", 0));
  cfg.node_id = uint32_t(node_id);
  cfg.peers = SplitCommaList(Lookup(flags, "peers", "CONFIDED_PEERS", ""));
  cfg.listen_host = Lookup(flags, "listen-host", "CONFIDED_LISTEN_HOST", "0.0.0.0");
  CONFIDE_ASSIGN_OR_RETURN(cfg.seed, LookupU64(flags, "seed", "CONFIDED_SEED", 1));
  CONFIDE_ASSIGN_OR_RETURN(
      uint64_t block_bytes,
      LookupU64(flags, "block-max-bytes", "CONFIDED_BLOCK_MAX_BYTES", 4096));
  cfg.block_max_bytes = size_t(block_bytes);
  CONFIDE_ASSIGN_OR_RETURN(
      uint64_t parallelism,
      LookupU64(flags, "parallelism", "CONFIDED_PARALLELISM", 1));
  cfg.parallelism = uint32_t(parallelism);
  cfg.state_dir = Lookup(flags, "state-dir", "CONFIDED_STATE_DIR", "");
  CONFIDE_ASSIGN_OR_RETURN(cfg.tick_ms,
                           LookupU64(flags, "tick-ms", "CONFIDED_TICK_MS", 20));
  CONFIDE_ASSIGN_OR_RETURN(
      cfg.heartbeat_ms,
      LookupU64(flags, "heartbeat-ms", "CONFIDED_HEARTBEAT_MS", 100));
  CONFIDE_ASSIGN_OR_RETURN(
      cfg.view_timeout_ms,
      LookupU64(flags, "view-timeout-ms", "CONFIDED_VIEW_TIMEOUT_MS", 1000));
  cfg.metrics_out = Lookup(flags, "metrics-out", "CONFIDED_METRICS_OUT", "");

  if (cfg.peers.empty()) {
    return Status::InvalidArgument("--peers (or CONFIDED_PEERS) is required");
  }
  if (cfg.node_id >= cfg.peers.size()) {
    return Status::InvalidArgument("--node-id " + std::to_string(cfg.node_id) +
                                   " not in --peers (" +
                                   std::to_string(cfg.peers.size()) + " entries)");
  }
  for (const std::string& peer : cfg.peers) {
    CONFIDE_RETURN_NOT_OK(SplitHostPort(peer).status());
  }
  return cfg;
}

Result<GatewayConfig> GatewayConfig::FromArgs(int argc, char** argv) {
  CONFIDE_ASSIGN_OR_RETURN(auto flags, CollectFlags(argc, argv));
  GatewayConfig cfg;
  cfg.nodes = SplitCommaList(Lookup(flags, "nodes", "CONFIDED_NODES", ""));
  const std::string listen =
      Lookup(flags, "listen", "CONFIDED_GW_LISTEN", "0.0.0.0:8080");
  CONFIDE_ASSIGN_OR_RETURN(auto host_port, SplitHostPort(listen));
  cfg.listen_host = host_port.first;
  cfg.listen_port = host_port.second;
  cfg.metrics_out = Lookup(flags, "metrics-out", "CONFIDED_METRICS_OUT", "");

  if (cfg.nodes.empty()) {
    return Status::InvalidArgument("--nodes (or CONFIDED_NODES) is required");
  }
  for (const std::string& node : cfg.nodes) {
    CONFIDE_RETURN_NOT_OK(SplitHostPort(node).status());
  }
  return cfg;
}

}  // namespace confide::net
