/// \file frame.h
/// \brief Length-prefixed binary wire framing for the multi-process
/// cluster (docs/WIRE_PROTOCOL.md is the normative spec).
///
/// A frame on the wire is
///
///   [u32 big-endian payload length][payload]
///   payload = RLP list [ version u64, type u64, body byte-string ]
///
/// encoded with the PR 8 RlpWriter and decoded with RlpReader, so the
/// decoded body is a ByteView aliasing the receive buffer (zero-copy) and
/// every length is validated against the bytes actually present
/// (remaining-based guards — a crafted length near SIZE_MAX fails with
/// Corruption instead of wrapping a bounds check).
///
/// FrameAssembler is the stream-reassembly core shared by every byte
/// stream consumer (TCP reader loops, tests): feed it arbitrary chunks —
/// partial frames, many frames per chunk, a frame split at any byte — and
/// it yields complete frames in order. A stream that announces an
/// oversized frame, a malformed payload, or ends mid-frame is rejected
/// with Corruption; the connection owning it must be dropped (frame
/// boundaries cannot be re-found inside a corrupt byte stream).

#pragma once

#include <cstdint>

#include "common/bytes.h"
#include "common/status.h"

namespace confide::net {

/// \brief Wire protocol version carried in every frame. A receiver
/// rejects frames whose version differs (see docs/WIRE_PROTOCOL.md
/// §Versioning: the version bumps on any incompatible change; unknown
/// *types* within a known version are ignorable, unknown versions are
/// not). Version 2 threads the view number through every consensus-plane
/// body (dynamic leader election), an incompatible change to the
/// kPrePrepare/kPrepare/kCommit schemas.
inline constexpr uint64_t kWireVersion = 2;

/// \brief Bytes of the big-endian length prefix.
inline constexpr size_t kLengthPrefixBytes = 4;

/// \brief Upper bound on one frame's payload. Larger announcements are a
/// protocol violation (Corruption), not an allocation request — the
/// assembler never buffers more than this per pending frame.
inline constexpr size_t kMaxFramePayload = 8u << 20;  // 8 MiB

/// \brief Frame type tags (docs/WIRE_PROTOCOL.md §Message types).
enum class MsgType : uint8_t {
  // Connection plane.
  kHello = 0,         ///< [node_id u64, role u64] — identifies a peer
  kError = 1,         ///< [code u64, message] — reply when a request fails
  // Client/gateway plane (request → reply on the same connection).
  kSubmitTx = 2,      ///< body = Transaction wire
  kSubmitTxAck = 3,   ///< [accepted u64, tx_hash 32, message]
  kQueryReceipt = 4,  ///< [tx_hash 32]
  kReceiptReply = 5,  ///< [found u64, receipt wire, height u64]
  kQueryStatus = 6,   ///< []
  kStatusReply = 7,   ///< [node_id, height, tip_hash 32, applied_seq, ...]
  kQueryPkInfo = 8,   ///< []
  kPkInfoReply = 9,   ///< [pk_info_blob]
  // Consensus plane (node peers only).
  kPrePrepare = 10,   ///< [view u64, seq u64, block wire]
  kPrepare = 11,      ///< [view u64, seq u64, digest 32]
  kCommit = 12,       ///< [view u64, seq u64, digest 32]
  kFetchBlocks = 13,  ///< [from u64, to u64]
  kBlocksReply = 14,  ///< [from u64, count u64, block wire...]
  kHeartbeat = 15,    ///< [view u64, height u64] — leader liveness beacon
  kViewChange = 16,   ///< [new_view u64, last_applied u64, cert_count u64,
                      ///<  (seq u64, view u64, block wire)...]
  kNewView = 17,      ///< [new_view u64, count u64, (seq u64, block wire)...]
  kRedirect = 18,     ///< [leader u64, view u64] — reply from a non-leader
};

/// \brief Role claimed in a kHello frame.
enum class PeerRole : uint8_t { kNode = 0, kGateway = 1, kClient = 2 };

/// \brief A decoded frame. `body` aliases the buffer the frame was
/// decoded from (the assembler's internal buffer, valid until the next
/// Append/Next call) — copy to keep it.
struct FrameView {
  uint64_t version = kWireVersion;
  MsgType type = MsgType::kError;
  ByteView body;
};

/// \brief An owning frame (handler replies, queued sim deliveries).
struct OwnedFrame {
  MsgType type = MsgType::kError;
  Bytes body;
};

/// \brief Encodes one complete frame: length prefix + RLP payload.
Bytes EncodeFrame(MsgType type, ByteView body);

/// \brief Decodes a frame payload (the bytes after the length prefix).
/// The returned body aliases `payload`. Rejects unknown versions, type
/// tags that do not fit a u8, and any trailing bytes.
Result<FrameView> DecodeFramePayload(ByteView payload);

/// \brief Incremental reassembly of a frame stream from arbitrary chunks.
class FrameAssembler {
 public:
  explicit FrameAssembler(size_t max_payload = kMaxFramePayload)
      : max_payload_(max_payload) {}

  /// \brief Appends raw received bytes. Invalidates FrameViews returned
  /// by earlier Next() calls.
  void Append(ByteView chunk);

  /// \brief Yields the next complete frame. Returns true and fills `out`
  /// when a frame is ready; false when more bytes are needed; Corruption
  /// when the stream is unrecoverable (oversized or malformed frame).
  /// `out->body` aliases the internal buffer until the next Append/Next.
  Result<bool> Next(FrameView* out);

  /// \brief Call at end-of-stream: Corruption when bytes of an
  /// unfinished frame are still pending (connection dropped mid-frame).
  Status Finish() const;

  size_t buffered_bytes() const { return buf_.size() - consumed_; }

 private:
  size_t max_payload_;
  Bytes buf_;
  size_t consumed_ = 0;  ///< bytes of buf_ already handed out as frames
};

}  // namespace confide::net
