/// \file parser.h
/// \brief CCL recursive-descent parser.

#pragma once

#include "common/status.h"
#include "lang/ast.h"

namespace confide::lang {

/// \brief Parses CCL source into a Program.
Result<Program> Parse(std::string_view source);

}  // namespace confide::lang
