#include "lang/parser.h"

#include "lang/lexer.h"

namespace confide::lang {

namespace {

struct Parser {
  std::vector<Token> tokens;
  size_t pos = 0;

  const Token& Peek(size_t ahead = 0) const {
    size_t i = std::min(pos + ahead, tokens.size() - 1);
    return tokens[i];
  }
  const Token& Advance() { return tokens[std::min(pos++, tokens.size() - 1)]; }
  bool Check(TokenKind kind) const { return Peek().kind == kind; }
  bool Match(TokenKind kind) {
    if (Check(kind)) {
      Advance();
      return true;
    }
    return false;
  }

  Status Error(const std::string& what) const {
    return Status::InvalidArgument("ccl parse: " + what + " near line " +
                                   std::to_string(Peek().line));
  }

  Status Expect(TokenKind kind) {
    if (Match(kind)) return Status::OK();
    return Error(std::string("expected ") + TokenKindName(kind) + ", found " +
                 TokenKindName(Peek().kind));
  }

  // --- expressions, precedence climbing ---

  Result<ExprPtr> ParsePrimary() {
    const Token& tok = Peek();
    if (Check(TokenKind::kIntLiteral)) {
      Advance();
      auto e = std::make_unique<Expr>();
      e->kind = Expr::Kind::kIntLiteral;
      e->int_value = tok.int_value;
      e->line = tok.line;
      return e;
    }
    if (Check(TokenKind::kStringLiteral)) {
      Advance();
      auto e = std::make_unique<Expr>();
      e->kind = Expr::Kind::kStringLiteral;
      e->string_value = tok.text;
      e->line = tok.line;
      return e;
    }
    if (Check(TokenKind::kIdent)) {
      std::string name = tok.text;
      int line = tok.line;
      Advance();
      if (Match(TokenKind::kLParen)) {
        auto e = std::make_unique<Expr>();
        e->kind = Expr::Kind::kCall;
        e->name = std::move(name);
        e->line = line;
        if (!Check(TokenKind::kRParen)) {
          do {
            CONFIDE_ASSIGN_OR_RETURN(ExprPtr arg, ParseExpr());
            e->args.push_back(std::move(arg));
          } while (Match(TokenKind::kComma));
        }
        CONFIDE_RETURN_NOT_OK(Expect(TokenKind::kRParen));
        return e;
      }
      auto e = std::make_unique<Expr>();
      e->kind = Expr::Kind::kVariable;
      e->name = std::move(name);
      e->line = line;
      return e;
    }
    if (Match(TokenKind::kLParen)) {
      CONFIDE_ASSIGN_OR_RETURN(ExprPtr inner, ParseExpr());
      CONFIDE_RETURN_NOT_OK(Expect(TokenKind::kRParen));
      return inner;
    }
    return Error(std::string("unexpected token ") + TokenKindName(tok.kind));
  }

  Result<ExprPtr> ParseUnary() {
    UnOp op;
    if (Match(TokenKind::kMinus)) {
      op = UnOp::kNeg;
    } else if (Match(TokenKind::kBang)) {
      op = UnOp::kNot;
    } else if (Match(TokenKind::kTilde)) {
      op = UnOp::kBitNot;
    } else {
      return ParsePrimary();
    }
    CONFIDE_ASSIGN_OR_RETURN(ExprPtr operand, ParseUnary());
    auto e = std::make_unique<Expr>();
    e->kind = Expr::Kind::kUnary;
    e->un_op = op;
    e->lhs = std::move(operand);
    return e;
  }

  // Precedence (low to high):
  // || ; && ; | ; ^ ; & ; == != ; < <= > >= ; << >> ; + - ; * / %
  static int Precedence(TokenKind kind) {
    switch (kind) {
      case TokenKind::kOrOr: return 1;
      case TokenKind::kAndAnd: return 2;
      case TokenKind::kPipe: return 3;
      case TokenKind::kCaret: return 4;
      case TokenKind::kAmp: return 5;
      case TokenKind::kEq: case TokenKind::kNe: return 6;
      case TokenKind::kLt: case TokenKind::kLe:
      case TokenKind::kGt: case TokenKind::kGe: return 7;
      case TokenKind::kShl: case TokenKind::kShr: return 8;
      case TokenKind::kPlus: case TokenKind::kMinus: return 9;
      case TokenKind::kStar: case TokenKind::kSlash: case TokenKind::kPercent:
        return 10;
      default: return 0;
    }
  }

  static BinOp ToBinOp(TokenKind kind) {
    switch (kind) {
      case TokenKind::kOrOr: return BinOp::kLogicalOr;
      case TokenKind::kAndAnd: return BinOp::kLogicalAnd;
      case TokenKind::kPipe: return BinOp::kOr;
      case TokenKind::kCaret: return BinOp::kXor;
      case TokenKind::kAmp: return BinOp::kAnd;
      case TokenKind::kEq: return BinOp::kEq;
      case TokenKind::kNe: return BinOp::kNe;
      case TokenKind::kLt: return BinOp::kLt;
      case TokenKind::kLe: return BinOp::kLe;
      case TokenKind::kGt: return BinOp::kGt;
      case TokenKind::kGe: return BinOp::kGe;
      case TokenKind::kShl: return BinOp::kShl;
      case TokenKind::kShr: return BinOp::kShr;
      case TokenKind::kPlus: return BinOp::kAdd;
      case TokenKind::kMinus: return BinOp::kSub;
      case TokenKind::kStar: return BinOp::kMul;
      case TokenKind::kSlash: return BinOp::kDiv;
      default: return BinOp::kRem;
    }
  }

  Result<ExprPtr> ParseBinary(int min_prec) {
    CONFIDE_ASSIGN_OR_RETURN(ExprPtr lhs, ParseUnary());
    while (true) {
      int prec = Precedence(Peek().kind);
      if (prec == 0 || prec < min_prec) return lhs;
      TokenKind op_kind = Advance().kind;
      CONFIDE_ASSIGN_OR_RETURN(ExprPtr rhs, ParseBinary(prec + 1));
      auto e = std::make_unique<Expr>();
      e->kind = Expr::Kind::kBinary;
      e->bin_op = ToBinOp(op_kind);
      e->lhs = std::move(lhs);
      e->rhs = std::move(rhs);
      lhs = std::move(e);
    }
  }

  Result<ExprPtr> ParseExpr() { return ParseBinary(1); }

  // --- statements ---

  Result<std::vector<StmtPtr>> ParseBlock() {
    CONFIDE_RETURN_NOT_OK(Expect(TokenKind::kLBrace));
    std::vector<StmtPtr> stmts;
    while (!Check(TokenKind::kRBrace)) {
      if (Check(TokenKind::kEof)) return Error("unterminated block");
      CONFIDE_ASSIGN_OR_RETURN(StmtPtr stmt, ParseStmt());
      stmts.push_back(std::move(stmt));
    }
    Advance();  // consume '}'
    return stmts;
  }

  Result<StmtPtr> ParseStmt() {
    int line = Peek().line;
    auto stmt = std::make_unique<Stmt>();
    stmt->line = line;

    if (Match(TokenKind::kVar)) {
      if (!Check(TokenKind::kIdent)) return Error("expected variable name");
      stmt->kind = Stmt::Kind::kVarDecl;
      stmt->name = Advance().text;
      CONFIDE_RETURN_NOT_OK(Expect(TokenKind::kAssign));
      CONFIDE_ASSIGN_OR_RETURN(stmt->expr, ParseExpr());
      CONFIDE_RETURN_NOT_OK(Expect(TokenKind::kSemicolon));
      return stmt;
    }
    if (Match(TokenKind::kIf)) {
      stmt->kind = Stmt::Kind::kIf;
      CONFIDE_RETURN_NOT_OK(Expect(TokenKind::kLParen));
      CONFIDE_ASSIGN_OR_RETURN(stmt->expr, ParseExpr());
      CONFIDE_RETURN_NOT_OK(Expect(TokenKind::kRParen));
      CONFIDE_ASSIGN_OR_RETURN(stmt->body, ParseBlock());
      if (Match(TokenKind::kElse)) {
        if (Check(TokenKind::kIf)) {
          CONFIDE_ASSIGN_OR_RETURN(StmtPtr nested, ParseStmt());
          stmt->else_body.push_back(std::move(nested));
        } else {
          CONFIDE_ASSIGN_OR_RETURN(stmt->else_body, ParseBlock());
        }
      }
      return stmt;
    }
    if (Match(TokenKind::kWhile)) {
      stmt->kind = Stmt::Kind::kWhile;
      CONFIDE_RETURN_NOT_OK(Expect(TokenKind::kLParen));
      CONFIDE_ASSIGN_OR_RETURN(stmt->expr, ParseExpr());
      CONFIDE_RETURN_NOT_OK(Expect(TokenKind::kRParen));
      CONFIDE_ASSIGN_OR_RETURN(stmt->body, ParseBlock());
      return stmt;
    }
    if (Match(TokenKind::kReturn)) {
      stmt->kind = Stmt::Kind::kReturn;
      if (!Check(TokenKind::kSemicolon)) {
        CONFIDE_ASSIGN_OR_RETURN(stmt->expr, ParseExpr());
      }
      CONFIDE_RETURN_NOT_OK(Expect(TokenKind::kSemicolon));
      return stmt;
    }
    if (Match(TokenKind::kBreak)) {
      stmt->kind = Stmt::Kind::kBreak;
      CONFIDE_RETURN_NOT_OK(Expect(TokenKind::kSemicolon));
      return stmt;
    }
    if (Match(TokenKind::kContinue)) {
      stmt->kind = Stmt::Kind::kContinue;
      CONFIDE_RETURN_NOT_OK(Expect(TokenKind::kSemicolon));
      return stmt;
    }
    if (Check(TokenKind::kLBrace)) {
      stmt->kind = Stmt::Kind::kBlock;
      CONFIDE_ASSIGN_OR_RETURN(stmt->body, ParseBlock());
      return stmt;
    }
    // Assignment (ident = expr;) or expression statement.
    if (Check(TokenKind::kIdent) && Peek(1).kind == TokenKind::kAssign) {
      stmt->kind = Stmt::Kind::kAssign;
      stmt->name = Advance().text;
      Advance();  // '='
      CONFIDE_ASSIGN_OR_RETURN(stmt->expr, ParseExpr());
      CONFIDE_RETURN_NOT_OK(Expect(TokenKind::kSemicolon));
      return stmt;
    }
    stmt->kind = Stmt::Kind::kExpr;
    CONFIDE_ASSIGN_OR_RETURN(stmt->expr, ParseExpr());
    CONFIDE_RETURN_NOT_OK(Expect(TokenKind::kSemicolon));
    return stmt;
  }

  Result<Program> ParseProgram() {
    Program program;
    while (!Check(TokenKind::kEof)) {
      CONFIDE_RETURN_NOT_OK(Expect(TokenKind::kFn));
      FunctionDecl fn;
      fn.line = Peek().line;
      if (!Check(TokenKind::kIdent)) return Error("expected function name");
      fn.name = Advance().text;
      CONFIDE_RETURN_NOT_OK(Expect(TokenKind::kLParen));
      if (!Check(TokenKind::kRParen)) {
        do {
          if (!Check(TokenKind::kIdent)) return Error("expected parameter name");
          fn.params.push_back(Advance().text);
        } while (Match(TokenKind::kComma));
      }
      CONFIDE_RETURN_NOT_OK(Expect(TokenKind::kRParen));
      CONFIDE_ASSIGN_OR_RETURN(fn.body, ParseBlock());
      program.functions.push_back(std::move(fn));
    }
    return program;
  }
};

}  // namespace

Result<Program> Parse(std::string_view source) {
  CONFIDE_ASSIGN_OR_RETURN(std::vector<Token> tokens, Lex(source));
  Parser parser{std::move(tokens)};
  return parser.ParseProgram();
}

}  // namespace confide::lang
