#include "lang/builtins.h"

#include <unordered_map>

namespace confide::lang {

std::optional<BuiltinInfo> LookupBuiltin(std::string_view name) {
  static const std::unordered_map<std::string_view, BuiltinInfo> kTable = {
      {"get_storage", {Builtin::kGetStorage, 4}},
      {"set_storage", {Builtin::kSetStorage, 4}},
      {"sha256", {Builtin::kSha256, 3}},
      {"keccak256", {Builtin::kKeccak256, 3}},
      {"input_size", {Builtin::kInputSize, 0}},
      {"read_input", {Builtin::kReadInput, 2}},
      {"write_output", {Builtin::kWriteOutput, 2}},
      {"call", {Builtin::kCall, 6}},
      {"log", {Builtin::kLog, 2}},
      {"abort", {Builtin::kAbort, 1}},
      {"alloc", {Builtin::kAlloc, 1}},
      {"load8", {Builtin::kLoad8, 1}},
      {"load32", {Builtin::kLoad32, 1}},
      {"load64", {Builtin::kLoad64, 1}},
      {"store8", {Builtin::kStore8, 2}},
      {"store32", {Builtin::kStore32, 2}},
      {"store64", {Builtin::kStore64, 2}},
      {"memcpy", {Builtin::kMemCpy, 3}},
      {"memset", {Builtin::kMemSet, 3}},
  };
  auto it = kTable.find(name);
  if (it == kTable.end()) return std::nullopt;
  return it->second;
}

}  // namespace confide::lang
