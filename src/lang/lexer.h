/// \file lexer.h
/// \brief CCL lexer: source text to token stream.

#pragma once

#include <vector>

#include "common/status.h"
#include "lang/token.h"

namespace confide::lang {

/// \brief Tokenizes CCL source. Supports //-comments, decimal and 0x hex
/// integer literals, and C-style string escapes.
Result<std::vector<Token>> Lex(std::string_view source);

}  // namespace confide::lang
