/// \file codegen_evm.h
/// \brief CCL → EVM bytecode backend.
///
/// Reproduces the cost structure of Solidity-compiled contracts: 256-bit
/// stack words masked back to 64 bits after arithmetic, SIGNEXTEND before
/// signed ops, memory-frame locals (5 EVM ops per local access), a 4-byte
/// selector dispatcher, CODECOPY-materialized string literals, and
/// word-granular byte-range storage. The same CCL source compiled with
/// codegen_cvm runs the same logic on CONFIDE-VM — this pair is what the
/// Figure 10 comparison executes.

#pragma once

#include "common/bytes.h"
#include "common/status.h"
#include "lang/ast.h"

namespace confide::lang {

/// \brief Compiles a parsed program to EVM bytecode with a selector
/// dispatcher over all zero-parameter functions.
Result<Bytes> CompileToEvm(const Program& program);

/// \brief The 4-byte dispatch selector for an entry function name (first
/// four bytes of keccak256(name), big-endian).
uint32_t EvmSelector(std::string_view name);

}  // namespace confide::lang
