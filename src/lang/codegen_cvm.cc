#include "lang/codegen_cvm.h"

#include <unordered_map>

#include "common/endian.h"
#include "lang/builtins.h"
#include "vm/cvm/builder.h"
#include "vm/cvm/interpreter.h"

namespace confide::lang {

namespace {

using vm::cvm::FunctionBuilder;
using vm::cvm::ModuleBuilder;
using vm::cvm::Op;

// Linear-memory layout: [0,8) scratch, [8,16) heap pointer, [16,...)
// string-literal pool, then the bump-allocated heap.
constexpr uint32_t kHeapPtrAddr = 8;
constexpr uint32_t kPoolBase = 16;

class CvmCodegen {
 public:
  Result<Bytes> Compile(const Program& program) {
    // Pass 1: function table.
    for (size_t i = 0; i < program.functions.size(); ++i) {
      const FunctionDecl& fn = program.functions[i];
      if (fn_index_.count(fn.name)) {
        return Status::InvalidArgument("ccl: duplicate function " + fn.name);
      }
      fn_index_[fn.name] = uint32_t(i);
      fn_arity_[fn.name] = uint32_t(fn.params.size());
    }
    // Pass 2: bodies.
    for (const FunctionDecl& fn : program.functions) {
      CONFIDE_RETURN_NOT_OK(EmitFunction(fn));
    }
    // Assemble the module: pool data + heap pointer init.
    if (!pool_.empty()) builder_.AddData(kPoolBase, pool_);
    uint64_t heap_base = (kPoolBase + pool_.size() + 7) & ~uint64_t(7);
    Bytes heap_init(8);
    StoreLe64(heap_init.data(), heap_base);
    builder_.AddData(kHeapPtrAddr, std::move(heap_init));
    return EncodeModule(builder_.Finish());
  }

 private:
  Status Error(int line, const std::string& what) {
    return Status::InvalidArgument("ccl cvm: " + what + " (line " +
                                   std::to_string(line) + ")");
  }

  uint32_t PoolAdd(const std::string& s) {
    auto it = literal_offsets_.find(s);
    if (it != literal_offsets_.end()) return it->second;
    uint32_t offset = kPoolBase + uint32_t(pool_.size());
    Append(&pool_, AsByteView(s));
    pool_.push_back(0);  // NUL terminator
    literal_offsets_[s] = offset;
    return offset;
  }

  // --- scope management ---

  Result<uint32_t> ResolveVar(const std::string& name, int line) {
    for (auto it = scopes_.rbegin(); it != scopes_.rend(); ++it) {
      auto hit = it->find(name);
      if (hit != it->end()) return hit->second;
    }
    return Error(line, "undefined variable '" + name + "'");
  }

  Result<uint32_t> DeclareVar(const std::string& name, int line) {
    if (scopes_.back().count(name)) {
      return Error(line, "redeclared variable '" + name + "'");
    }
    uint32_t idx = fb_->AddLocal();
    scopes_.back()[name] = idx;
    return idx;
  }

  // --- expression emission ---

  Status EmitExpr(const Expr& e) {
    switch (e.kind) {
      case Expr::Kind::kIntLiteral:
        fb_->I64Const(e.int_value);
        return Status::OK();
      case Expr::Kind::kStringLiteral:
        fb_->I64Const(int64_t(PoolAdd(e.string_value)));
        return Status::OK();
      case Expr::Kind::kVariable: {
        CONFIDE_ASSIGN_OR_RETURN(uint32_t idx, ResolveVar(e.name, e.line));
        fb_->LocalGet(idx);
        return Status::OK();
      }
      case Expr::Kind::kUnary:
        CONFIDE_RETURN_NOT_OK(EmitExpr(*e.lhs));
        switch (e.un_op) {
          case UnOp::kNeg:
            // -x == 0 - x
            fb_->LocalSet(tmp_a_);
            fb_->I64Const(0).LocalGet(tmp_a_).Emit(Op::kSub);
            break;
          case UnOp::kNot:
            fb_->Emit(Op::kEqz);
            break;
          case UnOp::kBitNot:
            fb_->I64Const(-1).Emit(Op::kXor);
            break;
        }
        return Status::OK();
      case Expr::Kind::kBinary:
        return EmitBinary(e);
      case Expr::Kind::kCall:
        return EmitCall(e);
    }
    return Error(e.line, "unhandled expression kind");
  }

  Status EmitBinary(const Expr& e) {
    // Short-circuit logical operators need branches.
    if (e.bin_op == BinOp::kLogicalAnd || e.bin_op == BinOp::kLogicalOr) {
      bool is_and = e.bin_op == BinOp::kLogicalAnd;
      auto short_label = fb_->NewLabel();
      auto end_label = fb_->NewLabel();
      CONFIDE_RETURN_NOT_OK(EmitExpr(*e.lhs));
      // a && b: if !a -> 0 ; a || b: if a -> 1
      if (is_and) {
        fb_->Emit(Op::kEqz);
        fb_->BrIf(short_label);
      } else {
        fb_->BrIf(short_label);
      }
      CONFIDE_RETURN_NOT_OK(EmitExpr(*e.rhs));
      fb_->I64Const(0).Emit(Op::kNe);  // normalize to 0/1
      fb_->Br(end_label);
      fb_->Bind(short_label);
      fb_->I64Const(is_and ? 0 : 1);
      fb_->Bind(end_label);
      fb_->Emit(Op::kNop);
      return Status::OK();
    }

    CONFIDE_RETURN_NOT_OK(EmitExpr(*e.lhs));
    CONFIDE_RETURN_NOT_OK(EmitExpr(*e.rhs));
    switch (e.bin_op) {
      case BinOp::kAdd: fb_->Emit(Op::kAdd); break;
      case BinOp::kSub: fb_->Emit(Op::kSub); break;
      case BinOp::kMul: fb_->Emit(Op::kMul); break;
      case BinOp::kDiv: fb_->Emit(Op::kDivS); break;
      case BinOp::kRem: fb_->Emit(Op::kRemS); break;
      case BinOp::kAnd: fb_->Emit(Op::kAnd); break;
      case BinOp::kOr: fb_->Emit(Op::kOr); break;
      case BinOp::kXor: fb_->Emit(Op::kXor); break;
      case BinOp::kShl: fb_->Emit(Op::kShl); break;
      case BinOp::kShr: fb_->Emit(Op::kShrS); break;
      case BinOp::kEq: fb_->Emit(Op::kEq); break;
      case BinOp::kNe: fb_->Emit(Op::kNe); break;
      case BinOp::kLt: fb_->Emit(Op::kLtS); break;
      case BinOp::kLe: fb_->Emit(Op::kLeS); break;
      case BinOp::kGt: fb_->Emit(Op::kGtS); break;
      case BinOp::kGe: fb_->Emit(Op::kGeS); break;
      default:
        return Error(e.line, "unhandled binary operator");
    }
    return Status::OK();
  }

  Status EmitCall(const Expr& e) {
    auto builtin = LookupBuiltin(e.name);
    if (builtin) {
      if (e.args.size() != builtin->arity) {
        return Error(e.line, "builtin " + e.name + " expects " +
                                 std::to_string(builtin->arity) + " arguments");
      }
      for (const ExprPtr& arg : e.args) {
        CONFIDE_RETURN_NOT_OK(EmitExpr(*arg));
      }
      return EmitBuiltin(builtin->builtin, e.line);
    }
    auto it = fn_index_.find(e.name);
    if (it == fn_index_.end()) {
      return Error(e.line, "unknown function '" + e.name + "'");
    }
    if (e.args.size() != fn_arity_[e.name]) {
      return Error(e.line, "function " + e.name + " expects " +
                               std::to_string(fn_arity_[e.name]) + " arguments");
    }
    for (const ExprPtr& arg : e.args) {
      CONFIDE_RETURN_NOT_OK(EmitExpr(*arg));
    }
    fb_->Call(it->second);
    return Status::OK();
  }

  Status EmitBuiltin(Builtin builtin, int line) {
    using vm::cvm::HostFn;
    switch (builtin) {
      case Builtin::kGetStorage: fb_->CallHost(HostFn::kHostGetStorage); break;
      case Builtin::kSetStorage: fb_->CallHost(HostFn::kHostSetStorage); break;
      case Builtin::kSha256: fb_->CallHost(HostFn::kHostSha256); break;
      case Builtin::kKeccak256: fb_->CallHost(HostFn::kHostKeccak256); break;
      case Builtin::kInputSize: fb_->CallHost(HostFn::kHostInputSize); break;
      case Builtin::kReadInput: fb_->CallHost(HostFn::kHostReadInput); break;
      case Builtin::kWriteOutput: fb_->CallHost(HostFn::kHostWriteOutput); break;
      case Builtin::kCall: fb_->CallHost(HostFn::kHostCall); break;
      case Builtin::kLog: fb_->CallHost(HostFn::kHostLog); break;
      case Builtin::kAbort: fb_->CallHost(HostFn::kHostAbort); break;
      case Builtin::kAlloc:
        // (n) -> p:  tA = (n + 7) & ~7; p = *heap; *heap = p + tA; -> p
        fb_->I64Const(7).Emit(Op::kAdd).I64Const(-8).Emit(Op::kAnd);
        fb_->LocalSet(tmp_a_);
        fb_->I64Const(kHeapPtrAddr).Emit(Op::kLoad64).LocalSet(tmp_b_);
        fb_->I64Const(kHeapPtrAddr);
        fb_->LocalGet(tmp_b_).LocalGet(tmp_a_).Emit(Op::kAdd);
        fb_->Emit(Op::kStore64);
        fb_->LocalGet(tmp_b_);
        break;
      case Builtin::kLoad8: fb_->Emit(Op::kLoad8U); break;
      case Builtin::kLoad32: fb_->Emit(Op::kLoad32U); break;
      case Builtin::kLoad64: fb_->Emit(Op::kLoad64); break;
      case Builtin::kStore8:
        fb_->Emit(Op::kStore8);
        fb_->I64Const(0);  // builtins yield a value
        break;
      case Builtin::kStore32:
        fb_->Emit(Op::kStore32);
        fb_->I64Const(0);
        break;
      case Builtin::kStore64:
        fb_->Emit(Op::kStore64);
        fb_->I64Const(0);
        break;
      case Builtin::kMemCpy:
        fb_->Emit(Op::kMemCopy);
        fb_->I64Const(0);
        break;
      case Builtin::kMemSet:
        fb_->Emit(Op::kMemFill);
        fb_->I64Const(0);
        break;
      default:
        return Error(line, "builtin not supported by CVM backend");
    }
    return Status::OK();
  }

  // --- statement emission ---

  Status EmitStmtList(const std::vector<StmtPtr>& stmts) {
    scopes_.emplace_back();
    for (const StmtPtr& stmt : stmts) {
      CONFIDE_RETURN_NOT_OK(EmitStmt(*stmt));
    }
    scopes_.pop_back();
    return Status::OK();
  }

  Status EmitStmt(const Stmt& s) {
    switch (s.kind) {
      case Stmt::Kind::kVarDecl: {
        CONFIDE_RETURN_NOT_OK(EmitExpr(*s.expr));
        CONFIDE_ASSIGN_OR_RETURN(uint32_t idx, DeclareVar(s.name, s.line));
        fb_->LocalSet(idx);
        return Status::OK();
      }
      case Stmt::Kind::kAssign: {
        CONFIDE_RETURN_NOT_OK(EmitExpr(*s.expr));
        CONFIDE_ASSIGN_OR_RETURN(uint32_t idx, ResolveVar(s.name, s.line));
        fb_->LocalSet(idx);
        return Status::OK();
      }
      case Stmt::Kind::kIf: {
        auto else_label = fb_->NewLabel();
        auto end_label = fb_->NewLabel();
        CONFIDE_RETURN_NOT_OK(EmitExpr(*s.expr));
        fb_->Emit(Op::kEqz).BrIf(else_label);
        CONFIDE_RETURN_NOT_OK(EmitStmtList(s.body));
        fb_->Br(end_label);
        fb_->Bind(else_label);
        fb_->Emit(Op::kNop);
        if (!s.else_body.empty()) {
          CONFIDE_RETURN_NOT_OK(EmitStmtList(s.else_body));
        }
        fb_->Bind(end_label);
        fb_->Emit(Op::kNop);
        return Status::OK();
      }
      case Stmt::Kind::kWhile: {
        auto loop_label = fb_->NewLabel();
        auto end_label = fb_->NewLabel();
        fb_->Bind(loop_label);
        CONFIDE_RETURN_NOT_OK(EmitExpr(*s.expr));
        fb_->Emit(Op::kEqz).BrIf(end_label);
        loop_stack_.push_back({loop_label, end_label});
        CONFIDE_RETURN_NOT_OK(EmitStmtList(s.body));
        loop_stack_.pop_back();
        fb_->Br(loop_label);
        fb_->Bind(end_label);
        fb_->Emit(Op::kNop);
        return Status::OK();
      }
      case Stmt::Kind::kReturn:
        if (s.expr != nullptr) {
          CONFIDE_RETURN_NOT_OK(EmitExpr(*s.expr));
        } else {
          fb_->I64Const(0);
        }
        fb_->Return();
        return Status::OK();
      case Stmt::Kind::kBreak:
        if (loop_stack_.empty()) return Error(s.line, "break outside loop");
        fb_->Br(loop_stack_.back().second);
        return Status::OK();
      case Stmt::Kind::kContinue:
        if (loop_stack_.empty()) return Error(s.line, "continue outside loop");
        fb_->Br(loop_stack_.back().first);
        return Status::OK();
      case Stmt::Kind::kExpr:
        CONFIDE_RETURN_NOT_OK(EmitExpr(*s.expr));
        fb_->Emit(Op::kDrop);
        return Status::OK();
      case Stmt::Kind::kBlock:
        return EmitStmtList(s.body);
    }
    return Error(s.line, "unhandled statement kind");
  }

  Status EmitFunction(const FunctionDecl& fn) {
    FunctionBuilder builder(uint32_t(fn.params.size()), 0);
    fb_ = &builder;
    scopes_.clear();
    scopes_.emplace_back();
    for (size_t i = 0; i < fn.params.size(); ++i) {
      scopes_.back()[fn.params[i]] = uint32_t(i);
    }
    tmp_a_ = builder.AddLocal();
    tmp_b_ = builder.AddLocal();
    loop_stack_.clear();

    CONFIDE_RETURN_NOT_OK(EmitStmtList(fn.body));
    // Implicit `return 0` safeguards functions whose control flow can
    // reach the end of the body.
    fb_->I64Const(0).Return();

    CONFIDE_ASSIGN_OR_RETURN(uint32_t index, builder_.AddFunction(builder));
    builder_.Export(fn.name, index);
    fb_ = nullptr;
    return Status::OK();
  }

  ModuleBuilder builder_;
  std::unordered_map<std::string, uint32_t> fn_index_;
  std::unordered_map<std::string, uint32_t> fn_arity_;
  std::unordered_map<std::string, uint32_t> literal_offsets_;
  Bytes pool_;

  FunctionBuilder* fb_ = nullptr;
  std::vector<std::unordered_map<std::string, uint32_t>> scopes_;
  std::vector<std::pair<FunctionBuilder::Label, FunctionBuilder::Label>> loop_stack_;
  uint32_t tmp_a_ = 0;
  uint32_t tmp_b_ = 0;
};

}  // namespace

Result<Bytes> CompileToCvm(const Program& program) {
  CvmCodegen codegen;
  return codegen.Compile(program);
}

}  // namespace confide::lang
