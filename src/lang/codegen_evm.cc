#include "lang/codegen_evm.h"

#include <unordered_map>

#include "common/endian.h"
#include "crypto/keccak.h"
#include "lang/builtins.h"
#include "vm/evm/evm.h"

namespace confide::lang {

uint32_t EvmSelector(std::string_view name) {
  crypto::Hash256 h = crypto::Keccak256::Digest(AsByteView(name));
  return LoadBe32(h.data());
}

namespace {

using vm::evm::EvmAssembler;
using vm::evm::U256;
using namespace vm::evm;  // opcode constants

// Memory map: 0x00 scratch, 0x20 frame pointer, 0x40 heap pointer,
// 0x60.. literal pool, frames from kFrameBase, heap from kHeapBase.
constexpr uint64_t kFpSlot = 0x20;
constexpr uint64_t kHeapPtrSlot = 0x40;
constexpr uint64_t kPoolBase = 0x60;
constexpr uint64_t kFrameBase = 0x10000;
constexpr uint64_t kHeapBase = 0x40000;

const U256 kMask64 = []() {
  U256 m(0);
  m.limb[0] = ~uint64_t(0);
  return m;
}();

const U256 kMask192 = []() {
  U256 m;
  m.limb[0] = ~uint64_t(0);
  m.limb[1] = ~uint64_t(0);
  m.limb[2] = ~uint64_t(0);
  return m;
}();

const U256 kMask224 = []() {
  U256 m;
  m.limb[0] = ~uint64_t(0);
  m.limb[1] = ~uint64_t(0);
  m.limb[2] = ~uint64_t(0);
  m.limb[3] = 0xFFFFFFFFull;
  return m;
}();

// Counts `var` declarations in a statement tree (each gets a frame slot).
size_t CountVarDecls(const std::vector<StmtPtr>& stmts) {
  size_t count = 0;
  for (const StmtPtr& stmt : stmts) {
    if (stmt->kind == Stmt::Kind::kVarDecl) ++count;
    count += CountVarDecls(stmt->body);
    count += CountVarDecls(stmt->else_body);
  }
  return count;
}

class EvmCodegen {
 public:
  Result<Bytes> Compile(const Program& program) {
    // Function table + labels.
    for (const FunctionDecl& fn : program.functions) {
      if (fn_info_.count(fn.name)) {
        return Status::InvalidArgument("ccl: duplicate function " + fn.name);
      }
      FnInfo info;
      info.arity = uint32_t(fn.params.size());
      info.label = asm_.NewLabel();
      fn_info_[fn.name] = info;
    }
    // Literal pool (collected up front so the prologue knows its size).
    for (const FunctionDecl& fn : program.functions) {
      CollectLiterals(fn.body);
    }

    EmitPrologueAndDispatcher(program);
    for (const FunctionDecl& fn : program.functions) {
      CONFIDE_RETURN_NOT_OK(EmitFunction(fn));
    }
    asm_.BindHere(pool_label_);
    CONFIDE_ASSIGN_OR_RETURN(Bytes code, asm_.Finish());
    Append(&code, pool_);
    return code;
  }

 private:
  struct FnInfo {
    uint32_t arity = 0;
    EvmAssembler::Label label = 0;
  };

  Status Error(int line, const std::string& what) {
    return Status::InvalidArgument("ccl evm: " + what + " (line " +
                                   std::to_string(line) + ")");
  }

  void CollectLiteralsExpr(const Expr& e) {
    if (e.kind == Expr::Kind::kStringLiteral) PoolAdd(e.string_value);
    if (e.lhs) CollectLiteralsExpr(*e.lhs);
    if (e.rhs) CollectLiteralsExpr(*e.rhs);
    for (const ExprPtr& arg : e.args) CollectLiteralsExpr(*arg);
  }

  void CollectLiterals(const std::vector<StmtPtr>& stmts) {
    for (const StmtPtr& stmt : stmts) {
      if (stmt->expr) CollectLiteralsExpr(*stmt->expr);
      CollectLiterals(stmt->body);
      CollectLiterals(stmt->else_body);
    }
  }

  uint64_t PoolAdd(const std::string& s) {
    auto it = literal_offsets_.find(s);
    if (it != literal_offsets_.end()) return it->second;
    uint64_t offset = kPoolBase + pool_.size();
    Append(&pool_, AsByteView(s));
    pool_.push_back(0);
    literal_offsets_[s] = offset;
    return offset;
  }

  void EmitPrologueAndDispatcher(const Program& program) {
    pool_label_ = asm_.NewLabel();
    // Heap and frame pointers.
    asm_.Push(kHeapBase).Push(kHeapPtrSlot).Op(OP_MSTORE);
    asm_.Push(kFrameBase).Push(kFpSlot).Op(OP_MSTORE);
    // Literal pool: CODECOPY(dst=kPoolBase, src=pool_label, len).
    if (!pool_.empty()) {
      asm_.Push(pool_.size());
      asm_.PushLabel(pool_label_);
      asm_.Push(kPoolBase);
      asm_.Op(OP_CODECOPY);
    }
    // Selector dispatch over zero-parameter functions.
    asm_.Push(0).Op(OP_CALLDATALOAD).Push(224).Op(OP_SHR);
    for (const FunctionDecl& fn : program.functions) {
      if (!fn.params.empty()) continue;
      auto entry = asm_.NewLabel();
      auto after = asm_.NewLabel();
      auto skip = asm_.NewLabel();
      asm_.Op(OP_DUP1).Push(EvmSelector(fn.name)).Op(OP_EQ);
      asm_.PushLabel(entry).Op(OP_JUMPI);
      asm_.PushLabel(skip).Op(OP_JUMP);
      asm_.Bind(entry);
      asm_.Op(OP_POP);  // drop selector
      asm_.PushLabel(after);
      asm_.PushLabel(fn_info_[fn.name].label).Op(OP_JUMP);
      asm_.Bind(after);
      // Result stays on the stack: it becomes ExecutionResult.return_value
      // at STOP; contract output comes from write_output (XSETOUTPUT).
      asm_.Op(OP_STOP);
      asm_.Bind(skip);
    }
    asm_.Op(OP_INVALID);  // unknown selector
  }

  // --- frame-slot helpers (the Solidity-style locals-in-memory cost) ---
  //
  // mem[kFpSlot] is a frame *stack pointer*: each function's prologue adds
  // its own frame size and its epilogue subtracts it, so frames never
  // overlap regardless of caller/callee size. Local slot i lives at
  // SP - frame_size + 32*i, i.e. SP minus a per-function constant.

  void EmitLocalAddr(uint32_t slot) {
    uint64_t offset = cur_frame_size_ - 32 * uint64_t(slot);
    asm_.Push(kFpSlot).Op(OP_MLOAD).Push(offset).Op(OP_SWAP1).Op(OP_SUB);
  }
  void EmitLocalLoad(uint32_t slot) {
    EmitLocalAddr(slot);
    asm_.Op(OP_MLOAD);
  }
  void EmitLocalStore(uint32_t slot) {  // consumes value on stack
    EmitLocalAddr(slot);
    asm_.Op(OP_MSTORE);
  }

  void EmitMask64() { asm_.Push(kMask64).Op(OP_AND); }
  void EmitSignExtendTop() { asm_.Push(7).Op(OP_SIGNEXTEND); }

  // --- scopes ---

  Result<uint32_t> ResolveVar(const std::string& name, int line) {
    for (auto it = scopes_.rbegin(); it != scopes_.rend(); ++it) {
      auto hit = it->find(name);
      if (hit != it->end()) return hit->second;
    }
    return Error(line, "undefined variable '" + name + "'");
  }

  Result<uint32_t> DeclareVar(const std::string& name, int line) {
    if (scopes_.back().count(name)) {
      return Error(line, "redeclared variable '" + name + "'");
    }
    uint32_t slot = next_slot_++;
    scopes_.back()[name] = slot;
    return slot;
  }

  // --- expressions ---

  Status EmitExpr(const Expr& e) {
    switch (e.kind) {
      case Expr::Kind::kIntLiteral:
        asm_.Push(U256(uint64_t(e.int_value)));
        if (e.int_value < 0) EmitMask64();  // store negatives masked
        return Status::OK();
      case Expr::Kind::kStringLiteral:
        asm_.Push(PoolAdd(e.string_value));
        return Status::OK();
      case Expr::Kind::kVariable: {
        CONFIDE_ASSIGN_OR_RETURN(uint32_t slot, ResolveVar(e.name, e.line));
        EmitLocalLoad(slot);
        return Status::OK();
      }
      case Expr::Kind::kUnary:
        CONFIDE_RETURN_NOT_OK(EmitExpr(*e.lhs));
        switch (e.un_op) {
          case UnOp::kNeg:
            asm_.Push(0).Op(OP_SUB);  // Sub(top=0, next=x) = -x
            EmitMask64();
            break;
          case UnOp::kNot:
            asm_.Op(OP_ISZERO);
            break;
          case UnOp::kBitNot:
            asm_.Op(OP_NOT);
            EmitMask64();
            break;
        }
        return Status::OK();
      case Expr::Kind::kBinary:
        return EmitBinary(e);
      case Expr::Kind::kCall:
        return EmitCall(e);
    }
    return Error(e.line, "unhandled expression kind");
  }

  Status EmitBinary(const Expr& e) {
    if (e.bin_op == BinOp::kLogicalAnd || e.bin_op == BinOp::kLogicalOr) {
      bool is_and = e.bin_op == BinOp::kLogicalAnd;
      auto short_label = asm_.NewLabel();
      auto end_label = asm_.NewLabel();
      CONFIDE_RETURN_NOT_OK(EmitExpr(*e.lhs));
      if (is_and) asm_.Op(OP_ISZERO);
      asm_.PushLabel(short_label).Op(OP_JUMPI);
      CONFIDE_RETURN_NOT_OK(EmitExpr(*e.rhs));
      asm_.Op(OP_ISZERO).Op(OP_ISZERO);  // normalize
      asm_.PushLabel(end_label).Op(OP_JUMP);
      asm_.Bind(short_label);
      asm_.Push(is_and ? 0 : 1);
      asm_.Bind(end_label);
      return Status::OK();
    }

    CONFIDE_RETURN_NOT_OK(EmitExpr(*e.lhs));
    CONFIDE_RETURN_NOT_OK(EmitExpr(*e.rhs));
    // Stack is [lhs, rhs] (rhs on top). Our EVM ops compute op(top, next),
    // so non-commutative ops need the SWAP1 Solidity also emits.
    switch (e.bin_op) {
      case BinOp::kAdd: asm_.Op(OP_ADD); EmitMask64(); break;
      case BinOp::kSub: asm_.Op(OP_SWAP1).Op(OP_SUB); EmitMask64(); break;
      case BinOp::kMul: asm_.Op(OP_MUL); EmitMask64(); break;
      case BinOp::kDiv:
        EmitSignExtendTop();                     // rhs
        asm_.Op(OP_SWAP1);
        EmitSignExtendTop();                     // lhs (now on top)
        asm_.Op(OP_SDIV);
        EmitMask64();
        break;
      case BinOp::kRem:
        EmitSignExtendTop();
        asm_.Op(OP_SWAP1);
        EmitSignExtendTop();
        asm_.Op(OP_SMOD);
        EmitMask64();
        break;
      case BinOp::kAnd: asm_.Op(OP_AND); break;
      case BinOp::kOr: asm_.Op(OP_OR); break;
      case BinOp::kXor: asm_.Op(OP_XOR); break;
      case BinOp::kShl:
        // [x, k]: SHL pops shift(top) then value.
        asm_.Push(63).Op(OP_AND).Op(OP_SHL);
        EmitMask64();
        break;
      case BinOp::kShr:
        // Arithmetic shift: sign-extend x, then SAR, then mask.
        asm_.Push(63).Op(OP_AND);                // clamp k
        asm_.Op(OP_SWAP1);
        EmitSignExtendTop();                     // x on top
        asm_.Op(OP_SWAP1);                       // [x', k]
        asm_.Op(OP_SAR);
        EmitMask64();
        break;
      case BinOp::kEq: asm_.Op(OP_EQ); break;
      case BinOp::kNe: asm_.Op(OP_EQ).Op(OP_ISZERO); break;
      case BinOp::kLt:
        EmitSignExtendTop();
        asm_.Op(OP_SWAP1);
        EmitSignExtendTop();
        asm_.Op(OP_SLT);  // SLt(top=lhs', next=rhs') = lhs < rhs
        break;
      case BinOp::kGt:
        EmitSignExtendTop();
        asm_.Op(OP_SWAP1);
        EmitSignExtendTop();
        asm_.Op(OP_SGT);
        break;
      case BinOp::kLe:
        EmitSignExtendTop();
        asm_.Op(OP_SWAP1);
        EmitSignExtendTop();
        asm_.Op(OP_SGT).Op(OP_ISZERO);
        break;
      case BinOp::kGe:
        EmitSignExtendTop();
        asm_.Op(OP_SWAP1);
        EmitSignExtendTop();
        asm_.Op(OP_SLT).Op(OP_ISZERO);
        break;
      default:
        return Error(e.line, "unhandled binary operator");
    }
    return Status::OK();
  }

  // Emits call args in reverse source order so the first argument lands on
  // top of the stack (the pop order of the X* opcodes).
  Status EmitArgsReversed(const Expr& e) {
    for (auto it = e.args.rbegin(); it != e.args.rend(); ++it) {
      CONFIDE_RETURN_NOT_OK(EmitExpr(**it));
    }
    return Status::OK();
  }

  Status EmitCall(const Expr& e) {
    auto builtin = LookupBuiltin(e.name);
    if (builtin && builtin->builtin != Builtin::kMemCpy &&
        builtin->builtin != Builtin::kMemSet) {
      if (e.args.size() != builtin->arity) {
        return Error(e.line, "builtin " + e.name + " expects " +
                                 std::to_string(builtin->arity) + " arguments");
      }
      return EmitBuiltin(e, builtin->builtin);
    }
    // memcpy/memset and user functions resolve to CCL functions (the
    // stdlib provides memcpy/memset on this backend).
    auto it = fn_info_.find(e.name);
    if (it == fn_info_.end()) {
      return Error(e.line, "unknown function '" + e.name + "'");
    }
    if (e.args.size() != it->second.arity) {
      return Error(e.line, "function " + e.name + " expects " +
                               std::to_string(it->second.arity) + " arguments");
    }
    auto ret = asm_.NewLabel();
    asm_.PushLabel(ret);
    for (const ExprPtr& arg : e.args) {
      CONFIDE_RETURN_NOT_OK(EmitExpr(*arg));
    }
    asm_.PushLabel(it->second.label).Op(OP_JUMP);
    asm_.Bind(ret);  // result on stack
    return Status::OK();
  }

  Status EmitBuiltin(const Expr& e, Builtin builtin) {
    switch (builtin) {
      case Builtin::kGetStorage:
        CONFIDE_RETURN_NOT_OK(EmitArgsReversed(e));
        asm_.Op(OP_XGETSTORAGE);
        return Status::OK();
      case Builtin::kSetStorage:
        CONFIDE_RETURN_NOT_OK(EmitArgsReversed(e));
        asm_.Op(OP_XSETSTORAGE);
        return Status::OK();
      case Builtin::kSha256:
        CONFIDE_RETURN_NOT_OK(EmitArgsReversed(e));
        asm_.Op(OP_XSHA256);
        return Status::OK();
      case Builtin::kKeccak256: {
        // keccak256(ptr, len, out): SHA3 then MSTORE at out.
        CONFIDE_RETURN_NOT_OK(EmitExpr(*e.args[1]));  // len
        CONFIDE_RETURN_NOT_OK(EmitExpr(*e.args[0]));  // ptr (top)
        asm_.Op(OP_SHA3);                              // hash
        CONFIDE_RETURN_NOT_OK(EmitExpr(*e.args[2]));  // out (top)
        asm_.Op(OP_MSTORE);
        asm_.Push(0);
        return Status::OK();
      }
      case Builtin::kInputSize:
        asm_.Push(4).Op(OP_CALLDATASIZE).Op(OP_SUB);
        return Status::OK();
      case Builtin::kReadInput: {
        // (dst, cap) -> copied = min(cap, calldatasize-4); copy; result.
        CONFIDE_RETURN_NOT_OK(EmitExpr(*e.args[0]));  // dst
        CONFIDE_RETURN_NOT_OK(EmitExpr(*e.args[1]));  // cap
        auto keep_cap = asm_.NewLabel();
        auto done = asm_.NewLabel();
        asm_.Push(4).Op(OP_CALLDATASIZE).Op(OP_SUB);  // dst cap isize
        asm_.Op((OP_DUP1 + 1)).Op((OP_DUP1 + 1));                 // dst cap isize cap isize
        asm_.Op(OP_GT);                               // (cap > isize)? no:
        // GT pops a=isize, b=cap → pushes cap < isize.
        asm_.PushLabel(keep_cap).Op(OP_JUMPI);        // dst cap isize
        asm_.Op(OP_SWAP1).Op(OP_POP);                 // dst isize
        asm_.PushLabel(done).Op(OP_JUMP);
        asm_.Bind(keep_cap);
        asm_.Op(OP_POP);                              // dst cap
        asm_.Bind(done);                              // dst copied
        asm_.Op(OP_DUP1);                             // dst copied len
        asm_.Push(4);                                 // dst copied len 4
        asm_.Op(OP_DUP1 + 3);                         // DUP4: dst copied len 4 dst
        asm_.Op(OP_CALLDATACOPY);                     // dst copied
        asm_.Op(OP_SWAP1).Op(OP_POP);                 // copied
        return Status::OK();
      }
      case Builtin::kWriteOutput:
        // (ptr, len): XSETOUTPUT pops ptr then len.
        CONFIDE_RETURN_NOT_OK(EmitExpr(*e.args[1]));  // len
        CONFIDE_RETURN_NOT_OK(EmitExpr(*e.args[0]));  // ptr (top)
        asm_.Op(OP_XSETOUTPUT);
        asm_.Push(0);
        return Status::OK();
      case Builtin::kCall:
        CONFIDE_RETURN_NOT_OK(EmitArgsReversed(e));
        asm_.Op(OP_XCALL);
        return Status::OK();
      case Builtin::kLog:
        // LOG0 pops offset then len.
        CONFIDE_RETURN_NOT_OK(EmitExpr(*e.args[1]));  // len
        CONFIDE_RETURN_NOT_OK(EmitExpr(*e.args[0]));  // ptr (top)
        asm_.Op(OP_LOG0);
        asm_.Push(0);
        return Status::OK();
      case Builtin::kAbort:
        CONFIDE_RETURN_NOT_OK(EmitExpr(*e.args[0]));
        asm_.Op(OP_POP).Op(OP_INVALID);
        asm_.Push(0);  // unreachable, keeps stack typing uniform
        return Status::OK();
      case Builtin::kAlloc: {
        CONFIDE_RETURN_NOT_OK(EmitExpr(*e.args[0]));  // n
        asm_.Push(31).Op(OP_ADD).Push(31).Op(OP_NOT).Op(OP_AND);  // aligned
        asm_.Push(kHeapPtrSlot).Op(OP_MLOAD);  // aligned p
        asm_.Op(OP_SWAP1);                     // p aligned
        asm_.Op((OP_DUP1 + 1)).Op(OP_ADD);           // p p+aligned
        asm_.Push(kHeapPtrSlot).Op(OP_MSTORE); // p
        return Status::OK();
      }
      case Builtin::kLoad8:
        CONFIDE_RETURN_NOT_OK(EmitExpr(*e.args[0]));
        asm_.Op(OP_MLOAD).Push(0).Op(OP_BYTE);
        return Status::OK();
      case Builtin::kLoad32:
        CONFIDE_RETURN_NOT_OK(EmitExpr(*e.args[0]));
        asm_.Op(OP_MLOAD).Push(224).Op(OP_SHR);
        return Status::OK();
      case Builtin::kLoad64:
        CONFIDE_RETURN_NOT_OK(EmitExpr(*e.args[0]));
        asm_.Op(OP_MLOAD).Push(192).Op(OP_SHR);
        return Status::OK();
      case Builtin::kStore8:
        CONFIDE_RETURN_NOT_OK(EmitExpr(*e.args[0]));  // p
        CONFIDE_RETURN_NOT_OK(EmitExpr(*e.args[1]));  // v
        asm_.Op(OP_SWAP1).Op(OP_MSTORE8);
        asm_.Push(0);
        return Status::OK();
      case Builtin::kStore32:
        return EmitWideStore(e, 224, kMask224);
      case Builtin::kStore64:
        return EmitWideStore(e, 192, kMask192);
      default:
        return Error(e.line, "builtin not supported by EVM backend");
    }
  }

  // store{32,64}(p, v): read-modify-write of the 32-byte word at p.
  Status EmitWideStore(const Expr& e, uint64_t shift, const U256& keep_mask) {
    CONFIDE_RETURN_NOT_OK(EmitExpr(*e.args[0]));  // p
    CONFIDE_RETURN_NOT_OK(EmitExpr(*e.args[1]));  // v
    asm_.Push(shift).Op(OP_SHL);                  // p, v<<shift
    asm_.Op((OP_DUP1 + 1)).Op(OP_MLOAD);                // p, vs, old
    asm_.Push(keep_mask).Op(OP_AND);              // p, vs, old_low
    asm_.Op(OP_OR);                               // p, new
    asm_.Op(OP_SWAP1).Op(OP_MSTORE);
    asm_.Push(0);
    return Status::OK();
  }

  // --- statements ---

  Status EmitStmtList(const std::vector<StmtPtr>& stmts) {
    scopes_.emplace_back();
    for (const StmtPtr& stmt : stmts) {
      CONFIDE_RETURN_NOT_OK(EmitStmt(*stmt));
    }
    scopes_.pop_back();
    return Status::OK();
  }

  Status EmitStmt(const Stmt& s) {
    switch (s.kind) {
      case Stmt::Kind::kVarDecl: {
        CONFIDE_RETURN_NOT_OK(EmitExpr(*s.expr));
        CONFIDE_ASSIGN_OR_RETURN(uint32_t slot, DeclareVar(s.name, s.line));
        EmitLocalStore(slot);
        return Status::OK();
      }
      case Stmt::Kind::kAssign: {
        CONFIDE_RETURN_NOT_OK(EmitExpr(*s.expr));
        CONFIDE_ASSIGN_OR_RETURN(uint32_t slot, ResolveVar(s.name, s.line));
        EmitLocalStore(slot);
        return Status::OK();
      }
      case Stmt::Kind::kIf: {
        auto else_label = asm_.NewLabel();
        auto end_label = asm_.NewLabel();
        CONFIDE_RETURN_NOT_OK(EmitExpr(*s.expr));
        asm_.Op(OP_ISZERO).PushLabel(else_label).Op(OP_JUMPI);
        CONFIDE_RETURN_NOT_OK(EmitStmtList(s.body));
        asm_.PushLabel(end_label).Op(OP_JUMP);
        asm_.Bind(else_label);
        if (!s.else_body.empty()) {
          CONFIDE_RETURN_NOT_OK(EmitStmtList(s.else_body));
        }
        asm_.Bind(end_label);
        return Status::OK();
      }
      case Stmt::Kind::kWhile: {
        auto loop_label = asm_.NewLabel();
        auto end_label = asm_.NewLabel();
        asm_.Bind(loop_label);
        CONFIDE_RETURN_NOT_OK(EmitExpr(*s.expr));
        asm_.Op(OP_ISZERO).PushLabel(end_label).Op(OP_JUMPI);
        loop_stack_.push_back({loop_label, end_label});
        CONFIDE_RETURN_NOT_OK(EmitStmtList(s.body));
        loop_stack_.pop_back();
        asm_.PushLabel(loop_label).Op(OP_JUMP);
        asm_.Bind(end_label);
        return Status::OK();
      }
      case Stmt::Kind::kReturn:
        if (s.expr != nullptr) {
          CONFIDE_RETURN_NOT_OK(EmitExpr(*s.expr));
        } else {
          asm_.Push(0);
        }
        EmitEpilogueAndReturn();
        return Status::OK();
      case Stmt::Kind::kBreak:
        if (loop_stack_.empty()) return Error(s.line, "break outside loop");
        asm_.PushLabel(loop_stack_.back().second).Op(OP_JUMP);
        return Status::OK();
      case Stmt::Kind::kContinue:
        if (loop_stack_.empty()) return Error(s.line, "continue outside loop");
        asm_.PushLabel(loop_stack_.back().first).Op(OP_JUMP);
        return Status::OK();
      case Stmt::Kind::kExpr:
        CONFIDE_RETURN_NOT_OK(EmitExpr(*s.expr));
        asm_.Op(OP_POP);
        return Status::OK();
      case Stmt::Kind::kBlock:
        return EmitStmtList(s.body);
    }
    return Error(s.line, "unhandled statement kind");
  }

  // Releases this function's frame and jumps to the return address.
  // Stack on entry: [ret_addr, result].
  void EmitEpilogueAndReturn() {
    asm_.Push(kFpSlot).Op(OP_MLOAD);               // ret, result, sp
    asm_.Push(cur_frame_size_).Op(OP_SWAP1).Op(OP_SUB);  // sp - frame
    asm_.Push(kFpSlot).Op(OP_MSTORE);              // ret, result
    asm_.Op(OP_SWAP1).Op(OP_JUMP);
  }

  Status EmitFunction(const FunctionDecl& fn) {
    const FnInfo& info = fn_info_[fn.name];
    scopes_.clear();
    scopes_.emplace_back();
    next_slot_ = 0;
    loop_stack_.clear();

    size_t total_slots = fn.params.size() + CountVarDecls(fn.body);
    cur_frame_size_ = 32 * (uint64_t(total_slots) + 1);

    asm_.Bind(info.label);
    // Frame prologue: bump the frame stack pointer by this frame's size.
    asm_.Push(kFpSlot).Op(OP_MLOAD);
    asm_.Push(cur_frame_size_).Op(OP_ADD);
    asm_.Push(kFpSlot).Op(OP_MSTORE);

    // Bind params: stack is [ret, a1..aN] with aN on top.
    for (size_t i = 0; i < fn.params.size(); ++i) {
      scopes_.back()[fn.params[i]] = uint32_t(i);
    }
    next_slot_ = uint32_t(fn.params.size());
    for (size_t i = fn.params.size(); i > 0; --i) {
      EmitLocalStore(uint32_t(i - 1));  // pops aN into its slot
    }

    CONFIDE_RETURN_NOT_OK(EmitStmtList(fn.body));
    // Implicit return 0.
    asm_.Push(0);
    EmitEpilogueAndReturn();
    return Status::OK();
  }

  EvmAssembler asm_;
  EvmAssembler::Label pool_label_ = 0;
  std::unordered_map<std::string, FnInfo> fn_info_;
  std::unordered_map<std::string, uint64_t> literal_offsets_;
  Bytes pool_;

  std::vector<std::unordered_map<std::string, uint32_t>> scopes_;
  std::vector<std::pair<EvmAssembler::Label, EvmAssembler::Label>> loop_stack_;
  uint32_t next_slot_ = 0;
  uint64_t cur_frame_size_ = 0;
};

}  // namespace

Result<Bytes> CompileToEvm(const Program& program) {
  EvmCodegen codegen;
  return codegen.Compile(program);
}

}  // namespace confide::lang
