/// \file builtins.h
/// \brief CCL builtin functions shared by both codegen backends.

#pragma once

#include <cstdint>
#include <optional>
#include <string_view>

namespace confide::lang {

/// \brief Builtins the language front end recognizes. Backends lower each
/// to host calls, inline instruction sequences, or (when a backend has no
/// primitive, e.g. memcpy on EVM) fall back to the stdlib CCL function of
/// the same name.
enum class Builtin : uint8_t {
  kGetStorage,   // (key_ptr, key_len, val_ptr, val_cap) -> len
  kSetStorage,   // (key_ptr, key_len, val_ptr, val_len) -> 0
  kSha256,       // (ptr, len, out_ptr) -> 0
  kKeccak256,    // (ptr, len, out_ptr) -> 0
  kInputSize,    // () -> len
  kReadInput,    // (dst, cap) -> copied
  kWriteOutput,  // (ptr, len) -> 0
  kCall,         // (addr_ptr, addr_len, in_ptr, in_len, out_ptr, out_cap) -> len
  kLog,          // (ptr, len) -> 0
  kAbort,        // (code) -> traps
  kAlloc,        // (n) -> ptr (bump allocator over the VM heap)
  kLoad8,        // (ptr) -> byte
  kLoad32,       // (ptr) -> u32
  kLoad64,       // (ptr) -> u64 (per-VM byte order; see docs)
  kStore8,       // (ptr, v) -> 0
  kStore32,      // (ptr, v) -> 0
  kStore64,      // (ptr, v) -> 0
  kMemCpy,       // (dst, src, n) -> 0   [CVM native; EVM via stdlib]
  kMemSet,       // (dst, byte, n) -> 0  [CVM native; EVM via stdlib]
};

struct BuiltinInfo {
  Builtin builtin;
  uint32_t arity;
};

/// \brief Front-end lookup; backends may still decline (fall back to a
/// same-named CCL function).
std::optional<BuiltinInfo> LookupBuiltin(std::string_view name);

}  // namespace confide::lang
