/// \file token.h
/// \brief Token definitions for CCL, the contract language.
///
/// CCL is the stand-in for the paper's smart-contract source languages
/// (Solidity for EVM, C++/Go for Wasm): a small C-like language with one
/// 64-bit integer type, byte buffers via pointers into VM linear memory,
/// and host builtins. One front end, two backends (CONFIDE-VM and EVM),
/// so Figure 10/12 workloads execute identical logic on both engines.

#pragma once

#include <cstdint>
#include <string>

namespace confide::lang {

enum class TokenKind : uint8_t {
  kEof,
  kIdent,
  kIntLiteral,
  kStringLiteral,
  // Keywords.
  kFn, kVar, kIf, kElse, kWhile, kReturn, kBreak, kContinue,
  // Punctuation.
  kLParen, kRParen, kLBrace, kRBrace, kComma, kSemicolon,
  // Operators.
  kAssign,       // =
  kPlus, kMinus, kStar, kSlash, kPercent,
  kAmp, kPipe, kCaret, kTilde, kBang,
  kShl, kShr,
  kEq, kNe, kLt, kLe, kGt, kGe,
  kAndAnd, kOrOr,
};

struct Token {
  TokenKind kind = TokenKind::kEof;
  std::string text;       // identifier name or decoded string literal
  int64_t int_value = 0;  // for kIntLiteral
  int line = 0;
  int column = 0;
};

/// \brief Human-readable token-kind name for diagnostics.
const char* TokenKindName(TokenKind kind);

}  // namespace confide::lang
