/// \file stdlib.h
/// \brief The CCL standard library, written in CCL.
///
/// These routines execute *in-VM* on both backends, which is the point:
/// the paper's Figure 10 workloads (string concatenation, JSON parsing)
/// spend their time in exactly this kind of bytecode, and the EVM/CVM gap
/// emerges from running the same logic on both engines. On CONFIDE-VM,
/// memcpy/memset resolve to native bulk-memory opcodes; on EVM they fall
/// back to the byte-loop definitions below (the EVM has no memcpy).

#pragma once

namespace confide::lang {

/// \brief Returns the stdlib CCL source (string/memory/JSON helpers).
const char* StdlibSource();

}  // namespace confide::lang
