#include "lang/lexer.h"

#include <unordered_map>

namespace confide::lang {

const char* TokenKindName(TokenKind kind) {
  switch (kind) {
    case TokenKind::kEof: return "eof";
    case TokenKind::kIdent: return "identifier";
    case TokenKind::kIntLiteral: return "integer";
    case TokenKind::kStringLiteral: return "string";
    case TokenKind::kFn: return "'fn'";
    case TokenKind::kVar: return "'var'";
    case TokenKind::kIf: return "'if'";
    case TokenKind::kElse: return "'else'";
    case TokenKind::kWhile: return "'while'";
    case TokenKind::kReturn: return "'return'";
    case TokenKind::kBreak: return "'break'";
    case TokenKind::kContinue: return "'continue'";
    case TokenKind::kLParen: return "'('";
    case TokenKind::kRParen: return "')'";
    case TokenKind::kLBrace: return "'{'";
    case TokenKind::kRBrace: return "'}'";
    case TokenKind::kComma: return "','";
    case TokenKind::kSemicolon: return "';'";
    case TokenKind::kAssign: return "'='";
    case TokenKind::kPlus: return "'+'";
    case TokenKind::kMinus: return "'-'";
    case TokenKind::kStar: return "'*'";
    case TokenKind::kSlash: return "'/'";
    case TokenKind::kPercent: return "'%'";
    case TokenKind::kAmp: return "'&'";
    case TokenKind::kPipe: return "'|'";
    case TokenKind::kCaret: return "'^'";
    case TokenKind::kTilde: return "'~'";
    case TokenKind::kBang: return "'!'";
    case TokenKind::kShl: return "'<<'";
    case TokenKind::kShr: return "'>>'";
    case TokenKind::kEq: return "'=='";
    case TokenKind::kNe: return "'!='";
    case TokenKind::kLt: return "'<'";
    case TokenKind::kLe: return "'<='";
    case TokenKind::kGt: return "'>'";
    case TokenKind::kGe: return "'>='";
    case TokenKind::kAndAnd: return "'&&'";
    case TokenKind::kOrOr: return "'||'";
  }
  return "?";
}

namespace {

const std::unordered_map<std::string_view, TokenKind> kKeywords = {
    {"fn", TokenKind::kFn},         {"var", TokenKind::kVar},
    {"if", TokenKind::kIf},         {"else", TokenKind::kElse},
    {"while", TokenKind::kWhile},   {"return", TokenKind::kReturn},
    {"break", TokenKind::kBreak},   {"continue", TokenKind::kContinue},
};

struct Lexer {
  std::string_view source;
  size_t pos = 0;
  int line = 1;
  int column = 1;

  bool AtEnd() const { return pos >= source.size(); }
  char Peek(size_t ahead = 0) const {
    return pos + ahead < source.size() ? source[pos + ahead] : '\0';
  }
  char Advance() {
    char c = source[pos++];
    if (c == '\n') {
      ++line;
      column = 1;
    } else {
      ++column;
    }
    return c;
  }

  Status Error(const std::string& what) const {
    return Status::InvalidArgument("ccl lex: " + what + " at line " +
                                   std::to_string(line) + ":" +
                                   std::to_string(column));
  }
};

}  // namespace

Result<std::vector<Token>> Lex(std::string_view source) {
  Lexer lx{source};
  std::vector<Token> tokens;

  auto push = [&](TokenKind kind, std::string text = {}, int64_t value = 0) {
    tokens.push_back({kind, std::move(text), value, lx.line, lx.column});
  };

  while (!lx.AtEnd()) {
    char c = lx.Peek();
    if (c == ' ' || c == '\t' || c == '\r' || c == '\n') {
      lx.Advance();
      continue;
    }
    if (c == '/' && lx.Peek(1) == '/') {
      while (!lx.AtEnd() && lx.Peek() != '\n') lx.Advance();
      continue;
    }
    if (std::isalpha(uint8_t(c)) || c == '_') {
      std::string ident;
      while (!lx.AtEnd() && (std::isalnum(uint8_t(lx.Peek())) || lx.Peek() == '_')) {
        ident.push_back(lx.Advance());
      }
      auto kw = kKeywords.find(ident);
      if (kw != kKeywords.end()) {
        push(kw->second);
      } else {
        push(TokenKind::kIdent, std::move(ident));
      }
      continue;
    }
    if (std::isdigit(uint8_t(c))) {
      int64_t value = 0;
      if (c == '0' && (lx.Peek(1) == 'x' || lx.Peek(1) == 'X')) {
        lx.Advance();
        lx.Advance();
        bool any = false;
        while (!lx.AtEnd() && std::isxdigit(uint8_t(lx.Peek()))) {
          char h = lx.Advance();
          int digit = (h <= '9') ? h - '0' : (std::tolower(h) - 'a' + 10);
          value = value * 16 + digit;
          any = true;
        }
        if (!any) return lx.Error("hex literal needs digits");
      } else {
        while (!lx.AtEnd() && std::isdigit(uint8_t(lx.Peek()))) {
          value = value * 10 + (lx.Advance() - '0');
        }
      }
      push(TokenKind::kIntLiteral, {}, value);
      continue;
    }
    if (c == '"') {
      lx.Advance();
      std::string text;
      while (true) {
        if (lx.AtEnd()) return lx.Error("unterminated string literal");
        char ch = lx.Advance();
        if (ch == '"') break;
        if (ch == '\\') {
          if (lx.AtEnd()) return lx.Error("unterminated escape");
          char esc = lx.Advance();
          switch (esc) {
            case 'n': text.push_back('\n'); break;
            case 't': text.push_back('\t'); break;
            case 'r': text.push_back('\r'); break;
            case '0': text.push_back('\0'); break;
            case '\\': text.push_back('\\'); break;
            case '"': text.push_back('"'); break;
            default: return lx.Error("unknown escape");
          }
        } else {
          text.push_back(ch);
        }
      }
      push(TokenKind::kStringLiteral, std::move(text));
      continue;
    }

    lx.Advance();
    switch (c) {
      case '(': push(TokenKind::kLParen); break;
      case ')': push(TokenKind::kRParen); break;
      case '{': push(TokenKind::kLBrace); break;
      case '}': push(TokenKind::kRBrace); break;
      case ',': push(TokenKind::kComma); break;
      case ';': push(TokenKind::kSemicolon); break;
      case '+': push(TokenKind::kPlus); break;
      case '-': push(TokenKind::kMinus); break;
      case '*': push(TokenKind::kStar); break;
      case '/': push(TokenKind::kSlash); break;
      case '%': push(TokenKind::kPercent); break;
      case '^': push(TokenKind::kCaret); break;
      case '~': push(TokenKind::kTilde); break;
      case '&':
        if (lx.Peek() == '&') {
          lx.Advance();
          push(TokenKind::kAndAnd);
        } else {
          push(TokenKind::kAmp);
        }
        break;
      case '|':
        if (lx.Peek() == '|') {
          lx.Advance();
          push(TokenKind::kOrOr);
        } else {
          push(TokenKind::kPipe);
        }
        break;
      case '=':
        if (lx.Peek() == '=') {
          lx.Advance();
          push(TokenKind::kEq);
        } else {
          push(TokenKind::kAssign);
        }
        break;
      case '!':
        if (lx.Peek() == '=') {
          lx.Advance();
          push(TokenKind::kNe);
        } else {
          push(TokenKind::kBang);
        }
        break;
      case '<':
        if (lx.Peek() == '<') {
          lx.Advance();
          push(TokenKind::kShl);
        } else if (lx.Peek() == '=') {
          lx.Advance();
          push(TokenKind::kLe);
        } else {
          push(TokenKind::kLt);
        }
        break;
      case '>':
        if (lx.Peek() == '>') {
          lx.Advance();
          push(TokenKind::kShr);
        } else if (lx.Peek() == '=') {
          lx.Advance();
          push(TokenKind::kGe);
        } else {
          push(TokenKind::kGt);
        }
        break;
      default:
        return lx.Error(std::string("unexpected character '") + c + "'");
    }
  }
  push(TokenKind::kEof);
  return tokens;
}

}  // namespace confide::lang
