/// \file compiler.h
/// \brief CCL compiler driver: source → bytecode for either VM.

#pragma once

#include "common/bytes.h"
#include "common/status.h"

namespace confide::lang {

/// \brief Compilation target.
enum class VmTarget { kCvm, kEvm };

/// \brief Compiles CCL source (with the stdlib appended unless
/// `include_stdlib` is false) for `target`. For kCvm the result is a wire
/// module; for kEvm it is runnable EVM bytecode with a selector dispatcher.
Result<Bytes> Compile(std::string_view source, VmTarget target,
                      bool include_stdlib = true);

}  // namespace confide::lang
