/// \file ast.h
/// \brief CCL abstract syntax tree.

#pragma once

#include <memory>
#include <string>
#include <vector>

#include "lang/token.h"

namespace confide::lang {

struct Expr;
struct Stmt;
using ExprPtr = std::unique_ptr<Expr>;
using StmtPtr = std::unique_ptr<Stmt>;

enum class BinOp : uint8_t {
  kAdd, kSub, kMul, kDiv, kRem,
  kAnd, kOr, kXor, kShl, kShr,
  kEq, kNe, kLt, kLe, kGt, kGe,
  kLogicalAnd, kLogicalOr,
};

enum class UnOp : uint8_t { kNeg, kNot, kBitNot };

struct Expr {
  enum class Kind : uint8_t {
    kIntLiteral,
    kStringLiteral,  ///< evaluates to a pointer into the literal pool
    kVariable,
    kUnary,
    kBinary,
    kCall,           ///< user function or builtin
  };

  Kind kind;
  int line = 0;

  int64_t int_value = 0;       // kIntLiteral
  std::string string_value;    // kStringLiteral
  std::string name;            // kVariable, kCall
  UnOp un_op{};                // kUnary
  BinOp bin_op{};              // kBinary
  ExprPtr lhs, rhs;            // kUnary uses lhs only
  std::vector<ExprPtr> args;   // kCall
};

struct Stmt {
  enum class Kind : uint8_t {
    kVarDecl,
    kAssign,
    kIf,
    kWhile,
    kReturn,
    kBreak,
    kContinue,
    kExpr,
    kBlock,
  };

  Kind kind;
  int line = 0;

  std::string name;            // kVarDecl / kAssign target
  ExprPtr expr;                // initializer / condition / return value
  std::vector<StmtPtr> body;   // kBlock, kIf-then, kWhile body
  std::vector<StmtPtr> else_body;  // kIf
};

struct FunctionDecl {
  std::string name;
  std::vector<std::string> params;
  std::vector<StmtPtr> body;
  int line = 0;
};

struct Program {
  std::vector<FunctionDecl> functions;
};

}  // namespace confide::lang
