#include "lang/stdlib.h"

namespace confide::lang {

const char* StdlibSource() {
  return R"CCL(
// ---------------------------------------------------------------------------
// CCL standard library. Memory + string + JSON scanning helpers.
// On CONFIDE-VM, memcpy/memset are shadowed by native bulk-memory opcodes;
// these definitions serve the EVM backend (and document the semantics).
// ---------------------------------------------------------------------------

fn memcpy(dst, src, n) {
  var i = 0;
  while (i < n) {
    store8(dst + i, load8(src + i));
    i = i + 1;
  }
  return 0;
}

fn memset(dst, b, n) {
  var i = 0;
  while (i < n) {
    store8(dst + i, b);
    i = i + 1;
  }
  return 0;
}

fn strlen(p) {
  var i = 0;
  while (load8(p + i) != 0) {
    i = i + 1;
  }
  return i;
}

// Copies the NUL-terminated string at src to dst; returns the new end
// pointer (dst + len), enabling chained concatenation.
fn str_append(dst, src) {
  var n = strlen(src);
  memcpy(dst, src, n);
  return dst + n;
}

// Appends exactly n bytes; returns the new end pointer.
fn bytes_append(dst, src, n) {
  memcpy(dst, src, n);
  return dst + n;
}

fn bytes_eq(a, b, n) {
  var i = 0;
  while (i < n) {
    if (load8(a + i) != load8(b + i)) {
      return 0;
    }
    i = i + 1;
  }
  return 1;
}

// Writes v in decimal at dst; returns the digit count.
fn u64_to_dec(v, dst) {
  if (v == 0) {
    store8(dst, 48);
    return 1;
  }
  var tmp = alloc(24);
  var n = 0;
  while (v > 0) {
    store8(tmp + n, 48 + (v % 10));
    v = v / 10;
    n = n + 1;
  }
  var i = 0;
  while (i < n) {
    store8(dst + i, load8(tmp + n - 1 - i));
    i = i + 1;
  }
  return n;
}

// Parses an unsigned decimal integer at p; stops at the first non-digit.
fn dec_to_u64(p) {
  var v = 0;
  while (1) {
    var c = load8(p);
    if (c < 48 || c > 57) {
      break;
    }
    v = v * 10 + (c - 48);
    p = p + 1;
  }
  return v;
}

// ---------------------------------------------------------------------------
// JSON scanning (byte-level, allocation-free) — the in-contract JSON
// parsing the ABS workload performs before OPT2 switched it to Flatbuffers.
// ---------------------------------------------------------------------------

fn json_skip_ws(p, end) {
  while (p < end) {
    var c = load8(p);
    if (c != 32 && c != 9 && c != 10 && c != 13) {
      break;
    }
    p = p + 1;
  }
  return p;
}

// p at an opening quote; returns the pointer just past the closing quote.
fn json_skip_string(p, end) {
  p = p + 1;
  while (p < end) {
    var c = load8(p);
    if (c == 92) {
      p = p + 2;
      continue;
    }
    if (c == 34) {
      return p + 1;
    }
    p = p + 1;
  }
  return p;
}

// Skips one JSON value (string, object, array, number, or literal).
fn json_skip_value(p, end) {
  p = json_skip_ws(p, end);
  if (p >= end) {
    return p;
  }
  var c = load8(p);
  if (c == 34) {
    return json_skip_string(p, end);
  }
  if (c == 123 || c == 91) {
    var depth = 0;
    while (p < end) {
      c = load8(p);
      if (c == 34) {
        p = json_skip_string(p, end);
        continue;
      }
      if (c == 123 || c == 91) {
        depth = depth + 1;
      }
      if (c == 125 || c == 93) {
        depth = depth - 1;
        if (depth == 0) {
          return p + 1;
        }
      }
      p = p + 1;
    }
    return p;
  }
  while (p < end) {
    c = load8(p);
    if (c == 44 || c == 125 || c == 93 || c == 32 || c == 10 || c == 9 || c == 13) {
      break;
    }
    p = p + 1;
  }
  return p;
}

// Finds the value of top-level member `key` (NUL-terminated) in the JSON
// object at [json, json+len); returns a pointer to the value or 0.
fn json_find_field(json, len, key) {
  var end = json + len;
  var klen = strlen(key);
  var p = json_skip_ws(json, end);
  if (p >= end || load8(p) != 123) {
    return 0;
  }
  p = p + 1;
  while (p < end) {
    p = json_skip_ws(p, end);
    if (p >= end || load8(p) == 125) {
      return 0;
    }
    if (load8(p) != 34) {
      return 0;
    }
    var kstart = p + 1;
    p = json_skip_string(p, end);
    var kend = p - 1;
    p = json_skip_ws(p, end);
    if (p >= end || load8(p) != 58) {
      return 0;
    }
    p = p + 1;
    p = json_skip_ws(p, end);
    if (kend - kstart == klen) {
      if (bytes_eq(kstart, key, klen) == 1) {
        return p;
      }
    }
    p = json_skip_value(p, end);
    p = json_skip_ws(p, end);
    if (p < end && load8(p) == 44) {
      p = p + 1;
    }
  }
  return 0;
}

// Counts top-level members of the JSON object.
fn json_count_fields(json, len) {
  var end = json + len;
  var count = 0;
  var p = json_skip_ws(json, end);
  if (p >= end || load8(p) != 123) {
    return 0;
  }
  p = p + 1;
  while (p < end) {
    p = json_skip_ws(p, end);
    if (p >= end || load8(p) == 125) {
      break;
    }
    if (load8(p) != 34) {
      break;
    }
    p = json_skip_string(p, end);
    p = json_skip_ws(p, end);
    if (p >= end || load8(p) != 58) {
      break;
    }
    p = p + 1;
    p = json_skip_value(p, end);
    count = count + 1;
    p = json_skip_ws(p, end);
    if (p < end && load8(p) == 44) {
      p = p + 1;
    }
  }
  return count;
}

// ---------------------------------------------------------------------------
// Cross-contract helpers. Contract addresses derive from service names
// (address = first 20 bytes of sha256("confide-contract:" + name)), so
// contracts can route to named services without hard-coded byte strings.
// Call input convention: entry-name '\0' args.
// ---------------------------------------------------------------------------

fn named_address(name, out20) {
  var buf = alloc(96);
  var end = str_append(buf, "confide-contract:");
  end = str_append(end, name);
  var digest = alloc(32);
  sha256(buf, end - buf, digest);
  memcpy(out20, digest, 20);
  return out20;
}

fn call_named(name, entry, args, args_len, out, out_cap) {
  var addr = alloc(20);
  named_address(name, addr);
  var elen = strlen(entry);
  var in = alloc(elen + 1 + args_len);
  memcpy(in, entry, elen);
  store8(in + elen, 0);
  memcpy(in + elen + 1, args, args_len);
  return call(addr, 20, in, elen + 1 + args_len, out, out_cap);
}

// ---------------------------------------------------------------------------
// Typed state helpers: u64 state values stored as 8 raw bytes.
// ---------------------------------------------------------------------------

fn state_get_u64(key) {
  var b = alloc(16);
  var n = get_storage(key, strlen(key), b, 8);
  if (n != 8) { return 0; }
  return load64(b);
}

fn state_put_u64(key, v) {
  var b = alloc(8);
  store64(b, v);
  set_storage(key, strlen(key), b, 8);
  return 0;
}

fn state_get_u64k(key, key_len) {
  var b = alloc(16);
  var n = get_storage(key, key_len, b, 8);
  if (n != 8) { return 0; }
  return load64(b);
}

fn state_put_u64k(key, key_len, v) {
  var b = alloc(8);
  store64(b, v);
  set_storage(key, key_len, b, 8);
  return 0;
}

// Builds "<prefix><name>" as a NUL-terminated key; returns the pointer.
fn make_key(prefix, name, name_len) {
  var k = alloc(96 + name_len);
  var e = str_append(k, prefix);
  e = bytes_append(e, name, name_len);
  store8(e, 0);
  return k;
}

// Builds "<prefix><name><suffix>" as a NUL-terminated key.
fn make_key2(prefix, name, name_len, suffix) {
  var k = alloc(128 + name_len);
  var e = str_append(k, prefix);
  e = bytes_append(e, name, name_len);
  e = str_append(e, suffix);
  store8(e, 0);
  return k;
}

// ---------------------------------------------------------------------------
// Newline-separated argument scanning (service-call convention).
// ---------------------------------------------------------------------------

fn line_at(p, end, idx) {
  var i = 0;
  while (i < idx) {
    while (p < end && load8(p) != 10) { p = p + 1; }
    p = p + 1;
    i = i + 1;
  }
  return p;
}

fn line_len(p, end) {
  var q = p;
  while (q < end && load8(q) != 10) { q = q + 1; }
  return q - p;
}

// ---------------------------------------------------------------------------
// FlatLite accessors (the "Flatbuffers protocol" of OPT2): O(1) field
// access by offset arithmetic instead of a JSON scan.
// Layout: [u32 magic][u32 field_count][u32 offsets[n]][data]; offset 0 =
// absent; bytes fields are [u32 len][payload]; scalars are 8 raw bytes.
// ---------------------------------------------------------------------------

fn flat_field_count(buf) {
  return load32(buf + 4);
}

fn flat_offset(buf, idx) {
  return load32(buf + 8 + 4 * idx);
}

fn flat_has(buf, idx) {
  return flat_offset(buf, idx) != 0;
}

fn flat_u64(buf, idx) {
  return load64(buf + flat_offset(buf, idx));
}

fn flat_bytes_len(buf, idx) {
  return load32(buf + flat_offset(buf, idx));
}

fn flat_bytes_ptr(buf, idx) {
  return buf + flat_offset(buf, idx) + 4;
}

// Copies the string value at p (opening quote) into dst; returns length.
fn json_copy_string(p, dst, cap) {
  p = p + 1;
  var i = 0;
  while (i < cap) {
    var c = load8(p);
    if (c == 34) {
      break;
    }
    if (c == 92) {
      p = p + 1;
      c = load8(p);
    }
    store8(dst + i, c);
    i = i + 1;
    p = p + 1;
  }
  return i;
}
)CCL";
}

}  // namespace confide::lang
