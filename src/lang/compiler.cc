#include "lang/compiler.h"

#include "lang/codegen_cvm.h"
#include "lang/codegen_evm.h"
#include "lang/parser.h"
#include "lang/stdlib.h"

namespace confide::lang {

Result<Bytes> Compile(std::string_view source, VmTarget target,
                      bool include_stdlib) {
  std::string full(source);
  if (include_stdlib) {
    full += "\n";
    full += StdlibSource();
  }
  CONFIDE_ASSIGN_OR_RETURN(Program program, Parse(full));
  switch (target) {
    case VmTarget::kCvm:
      return CompileToCvm(program);
    case VmTarget::kEvm:
      return CompileToEvm(program);
  }
  return Status::InvalidArgument("unknown target");
}

}  // namespace confide::lang
