/// \file codegen_cvm.h
/// \brief CCL → CONFIDE-VM bytecode backend.

#pragma once

#include "common/bytes.h"
#include "common/status.h"
#include "lang/ast.h"

namespace confide::lang {

/// \brief Compiles a parsed program to a CONFIDE-VM wire module. Every
/// function is exported under its own name; zero-parameter functions are
/// valid transaction entry points.
Result<Bytes> CompileToCvm(const Program& program);

}  // namespace confide::lang
