/// \file state.h
/// \brief Contract state database: per-contract namespaced KV access with
/// block-atomic commit and a state root.
///
/// Two implementations share the StateDb interface:
///  * CommitStateDb — the node's canonical state over a KvStore; buffered
///    writes land atomically per block and fold into a chained state root.
///  * OverlayStateDb — a scratch view for one parallel execution group;
///    reads fall through to the parent, writes stay local until merged
///    (or are thrown away when the transaction fails).

#pragma once

#include <deque>
#include <map>
#include <memory>
#include <mutex>
#include <utility>
#include <vector>

#include "chain/types.h"
#include "storage/kv_store.h"

namespace confide::chain {

/// \brief Abstract contract-state access used by execution engines.
class StateDb {
 public:
  virtual ~StateDb() = default;

  /// \brief Namespaced key: <contract hex>/<raw key>.
  static std::string StateKey(const Address& contract, ByteView key);

  virtual Result<Bytes> Get(const Address& contract, ByteView key) const = 0;
  virtual void Put(const Address& contract, ByteView key, Bytes value) = 0;

  /// \brief Batched point reads (the SDM read-set prefetch / enclave
  /// batch ocall): one Result per (contract, key), in request order;
  /// absent keys come back NotFound. The base implementation loops Get;
  /// CommitStateDb overrides it to resolve every store-level miss against
  /// one pinned kv snapshot instead of N locked point reads.
  virtual std::vector<Result<Bytes>> GetMany(
      const std::vector<std::pair<Address, Bytes>>& keys) const;

  /// \brief Makes buffered writes durable/visible at this layer's parent.
  virtual Status Commit() = 0;

  /// \brief Drops buffered writes.
  virtual void Discard() = 0;

  /// \brief Buffered write count (tests).
  virtual size_t PendingWrites() const = 0;
};

/// \brief Canonical node state over a KvStore.
///
/// Supports the pipelined block lifecycle with *staged generations*: each
/// StageCommit moves the buffered overlay into a pending generation that
/// stays readable (block N+1 executes against block N's staged-but-not-
/// yet-durable writes) until the matching FinalizeCommit — called in
/// stage order once the generation's batch landed — folds it into the
/// durable root, or RollbackPending() drops every in-flight generation
/// after a commit failure. The serial path is the depth-1 special case.
class CommitStateDb : public StateDb {
 public:
  explicit CommitStateDb(std::shared_ptr<storage::KvStore> kv) : kv_(std::move(kv)) {}

  Result<Bytes> Get(const Address& contract, ByteView key) const override;
  std::vector<Result<Bytes>> GetMany(
      const std::vector<std::pair<Address, Bytes>>& keys) const override;
  void Put(const Address& contract, ByteView key, Bytes value) override;
  Status Commit() override;
  void Discard() override;
  size_t PendingWrites() const override;

  /// \brief Stages the buffered writes into `batch` and a new pending
  /// generation, and reports the state root they chain to (from the
  /// newest staged generation, so overlapped blocks chain correctly),
  /// without touching the store. Once the batch is durably written call
  /// FinalizeCommit(new_root); on a failed write call RollbackPending()
  /// and re-execute. Lets the node fold state, receipts and block data
  /// into one atomic KV write.
  void StageCommit(storage::WriteBatch* batch, crypto::Hash256* new_root);

  /// \brief Completes the *oldest* staged generation after its batch
  /// landed: drops its pending values (the store now serves them) and
  /// adopts `new_root` as the durable root. Generations must finalize in
  /// stage order.
  void FinalizeCommit(const crypto::Hash256& new_root);

  /// \brief Drops every staged-but-unfinalized generation and the overlay;
  /// visible state reverts to the durable root. The unwind path when a
  /// pipelined commit fails downstream of StageCommit.
  void RollbackPending();

  /// \brief Staged-but-unfinalized generations (tests).
  size_t PendingGenerations() const;

  /// \brief Chained digest over all *durably committed* writes. (A
  /// production system would use a Merkle-Patricia trie; the chained
  /// digest preserves the state-continuity property consensus checks,
  /// §3.3.)
  crypto::Hash256 StateRoot() const;

  /// \brief Adopts `root` as the durable root and drops the overlay and
  /// every pending generation. The root is chained (not recomputable from
  /// the store), so restart recovery and state sync restore it from the
  /// tip block header after the backing store is in place.
  void RestoreRoot(const crypto::Hash256& root);

  storage::KvStore* backing() { return kv_.get(); }

 private:
  struct PendingGeneration {
    std::map<std::string, Bytes> values;  ///< readable until finalized
    crypto::Hash256 root;                 ///< root this generation chains to
  };

  std::shared_ptr<storage::KvStore> kv_;
  mutable std::mutex mutex_;
  std::map<std::string, Bytes> overlay_;
  std::deque<PendingGeneration> pending_;  ///< oldest first
  crypto::Hash256 state_root_{};           ///< durable root
  crypto::Hash256 staged_root_{};          ///< root incl. pending generations
};

/// \brief Scratch overlay for one transaction/group; Commit() merges into
/// the parent, Discard() drops.
class OverlayStateDb : public StateDb {
 public:
  explicit OverlayStateDb(StateDb* parent) : parent_(parent) {}

  Result<Bytes> Get(const Address& contract, ByteView key) const override;
  void Put(const Address& contract, ByteView key, Bytes value) override;
  Status Commit() override;
  void Discard() override { writes_.clear(); }
  size_t PendingWrites() const override { return writes_.size(); }

 private:
  StateDb* parent_;
  // Keyed by (contract, raw key) so merges replay through parent->Put.
  std::map<std::string, std::pair<std::pair<Address, Bytes>, Bytes>> writes_;
};

}  // namespace confide::chain
