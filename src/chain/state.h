/// \file state.h
/// \brief Contract state database: per-contract namespaced KV access with
/// block-atomic commit and a state root.
///
/// Two implementations share the StateDb interface:
///  * CommitStateDb — the node's canonical state over a KvStore; buffered
///    writes land atomically per block and fold into a chained state root.
///  * OverlayStateDb — a scratch view for one parallel execution group;
///    reads fall through to the parent, writes stay local until merged
///    (or are thrown away when the transaction fails).

#pragma once

#include <map>
#include <memory>
#include <mutex>

#include "chain/types.h"
#include "storage/kv_store.h"

namespace confide::chain {

/// \brief Abstract contract-state access used by execution engines.
class StateDb {
 public:
  virtual ~StateDb() = default;

  /// \brief Namespaced key: <contract hex>/<raw key>.
  static std::string StateKey(const Address& contract, ByteView key);

  virtual Result<Bytes> Get(const Address& contract, ByteView key) const = 0;
  virtual void Put(const Address& contract, ByteView key, Bytes value) = 0;

  /// \brief Makes buffered writes durable/visible at this layer's parent.
  virtual Status Commit() = 0;

  /// \brief Drops buffered writes.
  virtual void Discard() = 0;

  /// \brief Buffered write count (tests).
  virtual size_t PendingWrites() const = 0;
};

/// \brief Canonical node state over a KvStore.
class CommitStateDb : public StateDb {
 public:
  explicit CommitStateDb(std::shared_ptr<storage::KvStore> kv) : kv_(std::move(kv)) {}

  Result<Bytes> Get(const Address& contract, ByteView key) const override;
  void Put(const Address& contract, ByteView key, Bytes value) override;
  Status Commit() override;
  void Discard() override;
  size_t PendingWrites() const override;

  /// \brief Stages the buffered writes into `batch` and reports the state
  /// root they chain to, without touching the store. The overlay's values
  /// are consumed: once the batch is durably written call
  /// FinalizeCommit(new_root); on a failed write call Discard() and
  /// re-execute the block. Lets the node fold state, receipts and block
  /// data into one atomic KV write.
  void StageCommit(storage::WriteBatch* batch, crypto::Hash256* new_root);

  /// \brief Completes a staged commit after its batch landed: clears the
  /// overlay and adopts `new_root`.
  void FinalizeCommit(const crypto::Hash256& new_root);

  /// \brief Chained digest over all committed writes. (A production
  /// system would use a Merkle-Patricia trie; the chained digest preserves
  /// the state-continuity property consensus checks, §3.3.)
  crypto::Hash256 StateRoot() const;

  storage::KvStore* backing() { return kv_.get(); }

 private:
  std::shared_ptr<storage::KvStore> kv_;
  mutable std::mutex mutex_;
  std::map<std::string, Bytes> overlay_;
  crypto::Hash256 state_root_{};
};

/// \brief Scratch overlay for one transaction/group; Commit() merges into
/// the parent, Discard() drops.
class OverlayStateDb : public StateDb {
 public:
  explicit OverlayStateDb(StateDb* parent) : parent_(parent) {}

  Result<Bytes> Get(const Address& contract, ByteView key) const override;
  void Put(const Address& contract, ByteView key, Bytes value) override;
  Status Commit() override;
  void Discard() override { writes_.clear(); }
  size_t PendingWrites() const override { return writes_.size(); }

 private:
  StateDb* parent_;
  // Keyed by (contract, raw key) so merges replay through parent->Put.
  std::map<std::string, std::pair<std::pair<Address, Bytes>, Bytes>> writes_;
};

}  // namespace confide::chain
