/// \file executor.h
/// \brief Block executor with k-way parallel scheduling.
///
/// Ant Blockchain "supports smart contract paralleled execution" (paper
/// §6.2, Figure 11 reports 1/4/6-way numbers). Transactions are grouped
/// by conflict key (engine-reported; typically the target contract);
/// groups execute concurrently on a shared thread pool while transactions
/// within a group stay serial. Receipts are returned in block order
/// regardless of completion order.

#pragma once

#include <map>
#include <memory>
#include <vector>

#include "chain/engine.h"
#include "common/thread_pool.h"

namespace confide::chain {

struct ExecutorOptions {
  uint32_t parallelism = 1;
  /// Shared worker pool (the node's). When null and parallelism > 1 the
  /// executor creates a private pool once at construction — never a
  /// per-block thread spawn.
  ThreadPool* pool = nullptr;
};

/// \brief Executes a block's transactions and returns per-tx receipts in
/// order. A failed transaction yields a success=false receipt and its
/// state writes are discarded; execution continues (standard blockchain
/// semantics — failures are recorded, not fatal).
class BlockExecutor {
 public:
  explicit BlockExecutor(ExecutorOptions options);

  Result<std::vector<Receipt>> ExecuteBlock(
      const std::vector<Transaction>& transactions, const EngineSet& engines,
      StateDb* state) const;

  /// \brief The conflict partition ExecuteBlock schedules: conflict key →
  /// in-block tx indices, order preserved within each group. Exposed so
  /// benchmarks that *simulate* k-way scheduling (fig11's LPT makespan)
  /// can assert their grouping matches the real executor's.
  static Result<std::map<uint64_t, std::vector<size_t>>> GroupByConflictKey(
      const std::vector<Transaction>& transactions, const EngineSet& engines);

 private:
  ExecutorOptions options_;
  std::unique_ptr<ThreadPool> owned_pool_;  ///< used when options_.pool == nullptr
};

}  // namespace confide::chain
