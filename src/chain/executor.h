/// \file executor.h
/// \brief Block executor with k-way parallel scheduling.
///
/// Ant Blockchain "supports smart contract paralleled execution" (paper
/// §6.2, Figure 11 reports 1/4/6-way numbers). Transactions are grouped
/// by conflict key (engine-reported; typically the target contract);
/// groups execute concurrently on a thread pool while transactions within
/// a group stay serial. Receipts are returned in block order regardless of
/// completion order.

#pragma once

#include <vector>

#include "chain/engine.h"

namespace confide::chain {

struct ExecutorOptions {
  uint32_t parallelism = 1;
};

/// \brief Executes a block's transactions and returns per-tx receipts in
/// order. A failed transaction yields a success=false receipt and its
/// state writes are discarded; execution continues (standard blockchain
/// semantics — failures are recorded, not fatal).
class BlockExecutor {
 public:
  explicit BlockExecutor(ExecutorOptions options) : options_(options) {}

  Result<std::vector<Receipt>> ExecuteBlock(
      const std::vector<Transaction>& transactions, const EngineSet& engines,
      StateDb* state) const;

 private:
  ExecutorOptions options_;
};

}  // namespace confide::chain
