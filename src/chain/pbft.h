/// \file pbft.h
/// \brief Discrete-event PBFT ordering simulator.
///
/// The paper's platform runs an ordering consensus before execution
/// (§3.1: "in the order consensus phase, public and confidential
/// transactions are processed together"). This simulator plays one PBFT
/// round (pre-prepare → prepare → commit) message-by-message over the
/// NetworkSim link model and reports when each replica commits — the
/// latency source behind Figure 11's two-zone degradation.

#pragma once

#include <cstdint>
#include <vector>

#include "chain/network.h"
#include "common/status.h"

namespace confide::chain {

/// \brief Per-message processing cost at a replica (validation, hashing).
struct PbftCostModel {
  uint64_t preprepare_processing_ns = 150'000;  ///< proposal validation
  uint64_t vote_processing_ns = 20'000;         ///< prepare/commit handling
  uint64_t vote_bytes = 128;                    ///< prepare/commit size
};

/// \brief Result of one simulated round.
struct PbftRoundResult {
  /// Commit time (ns from round start) per node; the round latency is the
  /// time at which the cluster can start the next block.
  std::vector<uint64_t> commit_time_ns;
  uint64_t quorum_commit_ns = 0;  ///< time when 2f+1 replicas committed
  uint64_t messages_sent = 0;
};

/// \brief Runs one PBFT ordering round for a proposal of `payload_bytes`.
/// Tolerates f = (n-1)/3 faults; all replicas are honest and timely here —
/// the goal is latency modelling, not fault injection.
PbftRoundResult SimulatePbftRound(const NetworkSim& net, uint32_t leader,
                                  uint64_t payload_bytes,
                                  const PbftCostModel& cost = PbftCostModel{});

}  // namespace confide::chain
