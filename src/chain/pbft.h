/// \file pbft.h
/// \brief Discrete-event PBFT ordering simulator.
///
/// The paper's platform runs an ordering consensus before execution
/// (§3.1: "in the order consensus phase, public and confidential
/// transactions are processed together"). This simulator plays one PBFT
/// round (pre-prepare → prepare → commit) message-by-message over the
/// NetworkSim link model and reports when each replica commits — the
/// latency source behind Figure 11's two-zone degradation.

#pragma once

#include <cstdint>
#include <vector>

#include "chain/network.h"
#include "common/status.h"

namespace confide::chain {

/// \brief Per-message processing cost at a replica (validation, hashing).
struct PbftCostModel {
  uint64_t preprepare_processing_ns = 150'000;  ///< proposal validation
  uint64_t vote_processing_ns = 20'000;         ///< prepare/commit handling
  uint64_t vote_bytes = 128;                    ///< prepare/commit size
};

/// \brief Result of one simulated round.
struct PbftRoundResult {
  /// Commit time (ns from round start) per node; the round latency is the
  /// time at which the cluster can start the next block.
  std::vector<uint64_t> commit_time_ns;
  uint64_t quorum_commit_ns = 0;  ///< time when 2f+1 replicas committed
  uint64_t messages_sent = 0;
};

/// \brief Runs one PBFT ordering round for a proposal of `payload_bytes`.
/// Tolerates f = (n-1)/3 faults; all replicas are honest and timely here —
/// the fault-free fast path for latency modelling. For crashed/byzantine
/// replicas, message loss and view changes, use SimulatePbftWithFaults.
PbftRoundResult SimulatePbftRound(const NetworkSim& net, uint32_t leader,
                                  uint64_t payload_bytes,
                                  const PbftCostModel& cost = PbftCostModel{});

/// \brief Per-replica failure mode for the fault-aware simulator.
enum class ReplicaBehavior : uint8_t {
  kHonest = 0,
  kCrashed,        ///< sends and receives nothing
  kSilent,         ///< receives and advances state, but never sends
  kEquivocating,   ///< sends conflicting votes; honest replicas discard them
};

/// \brief Fault configuration for one simulated consensus instance.
struct PbftFaultModel {
  /// Behavior per node id; empty (or short) = honest. A crashed entry at
  /// the leader's index is the classic dead-leader scenario.
  std::vector<ReplicaBehavior> behavior;
  /// A replica that has not committed by this deadline (per view) starts
  /// a view change.
  uint64_t view_timeout_ns = 400'000'000;
  /// Give up after this many view changes (result.committed = false).
  uint32_t max_views = 8;
  /// Seeds the PRNG behind link drop-rate and jitter draws; a fixed seed
  /// makes the whole simulation deterministic.
  uint64_t seed = 1;
};

/// \brief Result of one fault-injected consensus instance.
struct PbftFaultResult {
  /// Commit time per node (0 = never committed).
  std::vector<uint64_t> commit_time_ns;
  /// Time when 2f+1 replicas committed; includes any view-change delay.
  uint64_t quorum_commit_ns = 0;
  /// True when a 2f+1 quorum committed before max_views was exhausted.
  bool committed = false;
  /// View in which the quorum committed (0 = no view change needed).
  uint32_t commit_view = 0;
  /// Number of view-change rounds entered.
  uint32_t view_changes = 0;
  uint64_t messages_sent = 0;
  uint64_t messages_dropped = 0;
};

/// \brief Plays a full PBFT instance — pre-prepare/prepare/commit plus
/// the view-change protocol — under the fault model: crashed, silent and
/// equivocating replicas, per-link loss/jitter, and partitions. A dead
/// leader yields a measurable view-change latency instead of a hung
/// round; an unreachable quorum yields committed = false after
/// `max_views` view changes. Deterministic for a fixed model seed.
PbftFaultResult SimulatePbftWithFaults(const NetworkSim& net, uint32_t leader,
                                       uint64_t payload_bytes,
                                       const PbftFaultModel& faults,
                                       const PbftCostModel& cost = PbftCostModel{});

}  // namespace confide::chain
