/// \file checkpoint.h
/// \brief Stable checkpoints: periodic, certified state snapshots.
///
/// PBFT requires stable checkpoints for log truncation and view-change
/// safety, and a TEE chain additionally needs integrity-verified state
/// transfer so a crashed or lagging replica can rejoin without replaying
/// the whole chain (cf. Ekiden's checkpoint-based persistence and the
/// Fabric+TEE line of work). Every `interval` blocks a node snapshots its
/// entire KV store — contract state (confidential entries stay sealed
/// ciphertext; the snapshot never sees plaintext), receipts, the tx→block
/// index and block bodies — into fixed-size chunks, hashes each chunk,
/// commits to the chunk set with a Merkle root, and wraps the manifest in
/// a simulated 2f+1-signed stable-checkpoint certificate. A joining
/// replica verifies the certificate against the consortium validator set,
/// verifies every chunk against the manifest, and replays the remaining
/// blocks (see sync.h).
///
/// Checkpoint blobs live in the node's own KV store under the `ckpt/`
/// prefix, which the snapshot iteration itself skips — two correct
/// replicas at the same height therefore produce byte-identical chunk
/// sets, so a client can fetch different chunks of one checkpoint from
/// different providers.

#pragma once

#include <functional>
#include <memory>
#include <mutex>
#include <utility>
#include <vector>

#include "crypto/merkle.h"
#include "crypto/secp256k1.h"
#include "storage/kv_store.h"

namespace confide::chain {

/// \brief Checkpointing knobs (NodeOptions::checkpoint).
struct CheckpointOptions {
  /// Blocks between checkpoints; 0 disables checkpointing.
  uint64_t interval = 0;
  /// Target payload bytes per snapshot chunk (the unit of transfer,
  /// verification and re-fetch during state sync).
  size_t chunk_bytes = 2048;
  /// Checkpoints retained; older ones are deleted in the same batch that
  /// writes the new one (PBFT log truncation analogue).
  size_t keep = 2;
};

/// \brief Self-describing snapshot summary: what the certificate signs
/// and what every chunk is verified against.
struct CheckpointManifest {
  /// Snapshot covers blocks [0, height): taken after block height-1
  /// committed durably.
  uint64_t height = 0;
  crypto::Hash256 block_hash{};  ///< hash of block height-1
  crypto::Hash256 state_root{};  ///< chained state root after block height-1
  uint64_t total_entries = 0;    ///< KV entries across all chunks
  uint64_t total_bytes = 0;      ///< sum of chunk payload sizes
  /// Merkle root over the chunk payload hashes (leaf i = chunk_hashes[i]
  /// as a 32-byte leaf string).
  crypto::Hash256 chunks_root{};
  /// SHA-256 of each chunk payload, in chunk order.
  std::vector<crypto::Hash256> chunk_hashes;

  size_t chunk_count() const { return chunk_hashes.size(); }

  /// \brief Digest the certificate signs (hash of the serialized form).
  crypto::Hash256 Digest() const;

  Bytes Serialize() const;
  static Result<CheckpointManifest> Deserialize(ByteView wire);
};

/// \brief Simulated 2f+1 stable-checkpoint certificate: votes are real
/// ECDSA signatures over the manifest digest, indexed into the consortium
/// validator set. (A deployment would gossip CHECKPOINT messages; here
/// the provider-side manager signs for the quorum directly.)
struct CheckpointCertificate {
  crypto::Hash256 manifest_digest{};
  /// (validator index, signature over manifest_digest) pairs.
  std::vector<std::pair<uint32_t, crypto::Signature>> votes;

  Bytes Serialize() const;
  static Result<CheckpointCertificate> Deserialize(ByteView wire);
};

/// \brief The consortium validator set used to certify and verify
/// checkpoints. Simulated: one object holds every replica's key pair, so
/// tests can mint certificates; verification only ever touches the
/// public halves.
class ValidatorSet {
 public:
  /// \brief Generates `n` validator key pairs deterministically from
  /// `seed` (n = 3f+1 for the usual PBFT sizing).
  static ValidatorSet Generate(size_t n, uint64_t seed);

  size_t size() const { return keys_.size(); }

  /// \brief 2f+1 for n = 3f+1 replicas (rounded to a majority for other n).
  size_t QuorumSize() const;

  const crypto::PublicKey& PublicKeyOf(size_t i) const { return keys_[i].pub; }

  /// \brief Signs the manifest digest with the first QuorumSize()
  /// validators (the simulated quorum).
  Result<CheckpointCertificate> Certify(const CheckpointManifest& manifest) const;

  /// \brief Accepts iff the certificate carries >= QuorumSize() valid
  /// signatures from distinct known validators over the digest of
  /// `manifest`. A tampered manifest, forged signature, duplicate voter
  /// or sub-quorum vote count all reject.
  Status Verify(const CheckpointManifest& manifest,
                const CheckpointCertificate& certificate) const;

 private:
  std::vector<crypto::KeyPair> keys_;
};

/// \brief Per-node checkpoint producer + serving store.
///
/// Thread-compatible with the node's block pipeline: MaybeCheckpoint is
/// called from whichever thread finalizes commits (never concurrently),
/// and the read accessors take the manager mutex.
class CheckpointManager {
 public:
  /// \brief `validators` must outlive the manager; required to certify.
  CheckpointManager(CheckpointOptions options,
                    std::shared_ptr<storage::KvStore> kv,
                    const ValidatorSet* validators);

  /// \brief Called after block height-1 finalized (durable chain height
  /// == `height`). Writes a checkpoint when the interval divides
  /// `height`; otherwise a no-op.
  Status MaybeCheckpoint(uint64_t height, const crypto::Hash256& block_hash,
                         const crypto::Hash256& state_root);

  /// \brief Unconditionally snapshots the store at chain height `height`.
  Status WriteCheckpoint(uint64_t height, const crypto::Hash256& block_hash,
                         const crypto::Hash256& state_root);

  /// \brief Rebuilds the latest-checkpoint cursor from the store after a
  /// restart (checkpoints are durable; the cursor is not).
  Status RecoverLatest();

  /// \brief Stores a checkpoint received (and already verified) from a
  /// peer, so a freshly synced node can immediately serve it onward.
  /// `chunks` must be the raw payloads in manifest order. A checkpoint
  /// at or below the current latest height is silently skipped.
  Status Adopt(const CheckpointManifest& manifest,
               const CheckpointCertificate& certificate,
               const std::vector<Bytes>& chunks);

  /// \brief Height of the newest durable checkpoint (0 = none).
  uint64_t LatestHeight() const;

  /// \brief Heights of every retained checkpoint, oldest first.
  std::vector<uint64_t> RetainedHeights() const;

  Result<CheckpointManifest> ManifestAt(uint64_t height) const;
  Result<CheckpointCertificate> CertificateAt(uint64_t height) const;

  /// \brief Raw payload of chunk `index` of the checkpoint at `height`.
  Result<Bytes> ChunkAt(uint64_t height, size_t index) const;

  /// \brief Pins a read view of the store for serving an entire snapshot
  /// transfer: chunk fetches against it run lock-free, and a retention
  /// prune mid-transfer cannot yank chunks the client has yet to fetch.
  std::shared_ptr<storage::KvSnapshot> PinView() const;

  /// \brief ChunkAt against a pinned view.
  static Result<Bytes> ChunkAt(const storage::KvSnapshot& view,
                               uint64_t height, size_t index);

  const CheckpointOptions& options() const { return options_; }
  const ValidatorSet* validators() const { return validators_; }

  /// \brief Fork-alarm callback: (height, witnessed state root, conflicting
  /// state root). Fired when a *certified* checkpoint conflicts with one
  /// this node previously witnessed at the same height — two 2f+1
  /// certificates over divergent state, i.e. consortium equivocation.
  using ForkAlarm = std::function<void(uint64_t, const crypto::Hash256&,
                                       const crypto::Hash256&)>;
  void SetForkAlarm(ForkAlarm alarm);

  /// \brief Records `height -> {block_hash, state_root}` in the local
  /// witnessed-roots log (`ckpt/w/`, excluded from snapshots — fork
  /// evidence never transfers). A later certified checkpoint at the same
  /// height with a different hash/root is a fail-loud fork: the
  /// `chain.fork.detected.count` metric increments, the fork alarm fires,
  /// and PermissionDenied("...fork...") is returned. Re-witnessing an
  /// identical checkpoint is a no-op.
  Status WitnessCheckpoint(uint64_t height, const crypto::Hash256& block_hash,
                           const crypto::Hash256& state_root);

  /// \brief Parses a chunk payload back into KV entries.
  static Result<std::vector<std::pair<std::string, Bytes>>> ParseChunk(
      ByteView payload);

 private:
  static std::string ManifestKey(uint64_t height);
  static std::string CertificateKey(uint64_t height);
  static std::string ChunkKey(uint64_t height, size_t index);
  static std::string WitnessKey(uint64_t height);

  /// \brief Adds `height` to the retention set, queueing pruned
  /// checkpoint blobs for deletion in `batch`. Returns the new retained
  /// list to install once the batch commits. Requires `mutex_` held.
  std::vector<uint64_t> RetainLocked(storage::WriteBatch* batch,
                                     uint64_t height);

  CheckpointOptions options_;
  std::shared_ptr<storage::KvStore> kv_;
  const ValidatorSet* validators_;

  mutable std::mutex mutex_;
  uint64_t latest_height_ = 0;
  std::vector<uint64_t> retained_;  ///< oldest first
  ForkAlarm fork_alarm_;
};

}  // namespace confide::chain
