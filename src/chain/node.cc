#include "chain/node.h"

#include <atomic>
#include <chrono>
#include <optional>
#include <thread>

#include "common/bounded_queue.h"
#include "common/endian.h"
#include "common/fault.h"
#include "common/metrics.h"

namespace confide::chain {

namespace {

struct NodeMetrics {
  metrics::Counter* blocks = metrics::GetCounter("chain.block.count");
  metrics::Counter* block_txs = metrics::GetCounter("chain.block.tx.count");
  metrics::Histogram* txs_per_block = metrics::GetHistogram(
      "chain.block.txs", {1, 2, 4, 8, 16, 32, 64, 128, 256, 512, 1024});
  metrics::Histogram* block_execute_latency =
      metrics::GetHistogram("chain.block.execute.latency_ns");
  metrics::Histogram* preverify_batch_latency =
      metrics::GetHistogram("chain.preverify.batch.latency_ns");
  metrics::Gauge* unverified_pool = metrics::GetGauge("chain.pool.unverified");
  metrics::Gauge* verified_pool = metrics::GetGauge("chain.pool.verified");

  static const NodeMetrics& Get() {
    static const NodeMetrics instruments;
    return instruments;
  }
};

struct PipelineMetrics {
  metrics::Histogram* preverify_latency =
      metrics::GetHistogram("chain.pipeline.stage_latency.preverify_ns");
  metrics::Histogram* execute_latency =
      metrics::GetHistogram("chain.pipeline.stage_latency.execute_ns");
  metrics::Histogram* commit_latency =
      metrics::GetHistogram("chain.pipeline.stage_latency.commit_ns");
  metrics::Gauge* verified_queue =
      metrics::GetGauge("chain.pipeline.queue.verified");
  metrics::Gauge* staged_queue = metrics::GetGauge("chain.pipeline.queue.staged");
  metrics::Counter* blocks = metrics::GetCounter("chain.pipeline.block.count");
  metrics::Counter* stalls = metrics::GetCounter("chain.pipeline.stall.count");
  metrics::Histogram* commit_group_blocks = metrics::GetHistogram(
      "chain.pipeline.commit_group.blocks", {1, 2, 3, 4, 6, 8, 12, 16});

  static const PipelineMetrics& Get() {
    static const PipelineMetrics instruments;
    return instruments;
  }
};

/// Wall-clock wait modelling the device-side block write (§6.4). Real
/// blocking time — exactly what the commit stage overlaps with execution.
void CommitWriteWait(uint64_t latency_ns) {
  if (latency_ns > 0) {
    std::this_thread::sleep_for(std::chrono::nanoseconds(latency_ns));
  }
}

std::string ReceiptKey(const crypto::Hash256& tx_hash) {
  return "rcpt/" + HexEncode(crypto::HashView(tx_hash));
}

std::string TxIndexKey(const crypto::Hash256& tx_hash) {
  return "txix/" + HexEncode(crypto::HashView(tx_hash));
}

}  // namespace

namespace {

/// Pool sizing: the calling thread always works inline, so parallel
/// execution/pre-verification needs parallelism−1 helpers; the pipeline
/// adds two long-running stage tasks (pre-verify, commit).
std::unique_ptr<ThreadPool> MakeNodePool(const NodeOptions& options) {
  uint32_t workers = (std::max<uint32_t>(1, options.parallelism) - 1) +
                     (options.pipeline_depth > 0 ? 2 : 0);
  if (workers == 0) return nullptr;
  return std::make_unique<ThreadPool>(workers);
}

}  // namespace

Node::Node(NodeOptions options, EngineSet engines,
           std::shared_ptr<storage::KvStore> kv)
    : options_(options),
      engines_(engines),
      pool_(MakeNodePool(options)),
      executor_(ExecutorOptions{options.parallelism, pool_.get()}),
      kv_(std::move(kv)) {
  state_ = std::make_unique<CommitStateDb>(kv_);
  blocks_ = std::make_unique<storage::BlockStore>(kv_, options.clock);
  // Move LSM compactions onto the node's shared pool: a flush that
  // crosses the run threshold schedules the merge in the background
  // instead of stalling the committing thread. kv_ is declared after
  // pool_ in Node, so the store (which joins its inflight compaction on
  // destruction) dies first.
  if (pool_ != nullptr) {
    if (auto* lsm = dynamic_cast<storage::LsmKvStore*>(kv_.get())) {
      lsm->SetCompactionPool(pool_.get());
    }
  }
}

Result<std::unique_ptr<Node>> Node::Create(NodeOptions options,
                                           EngineSet engines) {
  storage::LsmOptions lsm;
  lsm.wal_dir = options.state_wal_dir;
  auto store = storage::LsmKvStore::Open(lsm);
  if (!store.ok()) {
    // A node configured for durability must not come up volatile: an
    // unusable WAL would otherwise mean every acknowledged write is lost
    // on restart while the node reports success throughout.
    metrics::GetCounter("chain.node.storage_open_failure.count")->Increment();
    return store.status();
  }
  if (options.checkpoint.interval > 0 && options.validators == nullptr) {
    return Status::InvalidArgument(
        "node: checkpointing enabled without a validator set");
  }
  std::unique_ptr<Node> node(new Node(
      options, engines, std::shared_ptr<storage::KvStore>(std::move(*store))));
  if (options.validators != nullptr) {
    node->checkpoints_ = std::make_unique<CheckpointManager>(
        options.checkpoint, node->kv_, options.validators);
  }
  CONFIDE_RETURN_NOT_OK(node->ResyncFromStore());
  return node;
}

Status Node::ResyncFromStore() {
  CONFIDE_RETURN_NOT_OK(RecoverChainTip());
  if (checkpoints_ != nullptr) {
    CONFIDE_RETURN_NOT_OK(checkpoints_->RecoverLatest());
  }
  return Status::OK();
}

Status Node::RecoverChainTip() {
  // The WAL replay restored state, receipts and block bodies, but the
  // height cursors and tip hash live in memory: rebuild them so a
  // restarted node keeps extending the durable chain instead of starting
  // over at height 0.
  CONFIDE_RETURN_NOT_OK(blocks_->RecoverTip());
  uint64_t tip = blocks_->NextHeight();
  if (tip == 0) {
    last_block_hash_ = crypto::Hash256{};
    state_->RestoreRoot(crypto::Hash256{});
    return Status::OK();
  }
  CONFIDE_ASSIGN_OR_RETURN(Bytes stored, blocks_->GetByHeight(tip - 1));
  CONFIDE_ASSIGN_OR_RETURN(Block block, Block::Deserialize(stored));
  last_block_hash_ = block.header.Hash();
  // The chained state root is in-memory only; without restoring it from
  // the tip header a restarted node would re-chain from a zero root and
  // silently fork from its peers at the next block.
  state_->RestoreRoot(block.header.state_root);
  return Status::OK();
}

void Node::MaybeCheckpointTip(uint64_t height, const crypto::Hash256& block_hash,
                              const crypto::Hash256& state_root) {
  if (checkpoints_ == nullptr) return;
  Status status = checkpoints_->MaybeCheckpoint(height, block_hash, state_root);
  if (!status.ok()) {
    // The block is already durable; a failed checkpoint only delays the
    // next snapshot, so count it instead of failing the commit.
    metrics::GetCounter("chain.checkpoint.failure.count")->Increment();
  }
}

Status Node::SubmitTransaction(Transaction tx) {
  if (fault::FaultInjector::Global().ShouldFail("fault.chain.submit")) {
    return Status::Unavailable("node: injected submit failure");
  }
  if (tx.type == TxType::kConfidential && tx.envelope.empty()) {
    return Status::InvalidArgument("node: confidential tx without envelope");
  }
  std::lock_guard<std::mutex> lock(pool_mutex_);
  unverified_.push_back(std::move(tx));
  NodeMetrics::Get().unverified_pool->Set(int64_t(unverified_.size()));
  return Status::OK();
}

void Node::PreVerifyBatch(std::vector<Transaction>* txs,
                          std::vector<uint8_t>* valid) {
  std::atomic<size_t> next{0};
  auto worker = [&] {
    for (;;) {
      size_t i = next.fetch_add(1);
      if (i >= txs->size()) return;
      ExecutionEngine* engine = engines_.Route((*txs)[i]);
      if (engine == nullptr) continue;
      auto ok = engine->PreVerify((*txs)[i]);
      (*valid)[i] = (ok.ok() && *ok) ? 1 : 0;
    }
  };
  uint32_t n_threads = std::max<uint32_t>(1, options_.parallelism);
  if (n_threads == 1 || pool_ == nullptr) {
    worker();
  } else {
    pool_->RunOnWorkers(n_threads - 1, worker);
  }
}

Result<size_t> Node::PreVerify() {
  std::deque<Transaction> pending;
  {
    std::lock_guard<std::mutex> lock(pool_mutex_);
    pending.swap(unverified_);
    NodeMetrics::Get().unverified_pool->Set(0);
  }
  if (pending.empty()) return size_t(0);
  metrics::ScopedLatencyTimer timer(NodeMetrics::Get().preverify_batch_latency);

  std::vector<Transaction> txs(std::make_move_iterator(pending.begin()),
                               std::make_move_iterator(pending.end()));
  std::vector<uint8_t> valid(txs.size(), 0);
  PreVerifyBatch(&txs, &valid);

  size_t count = 0;
  {
    std::lock_guard<std::mutex> lock(pool_mutex_);
    for (size_t i = 0; i < txs.size(); ++i) {
      if (valid[i]) {
        verified_.push_back(std::move(txs[i]));
        ++count;
      }
    }
    NodeMetrics::Get().verified_pool->Set(int64_t(verified_.size()));
  }
  return count;
}

Result<Block> Node::ProposeBlock() {
  Block block;
  block.header.height = blocks_->NextHeight();
  block.header.parent_hash = last_block_hash_;
  block.header.timestamp_ns = block.header.height;  // deterministic

  size_t bytes = 0;
  {
    std::lock_guard<std::mutex> lock(pool_mutex_);
    while (!verified_.empty()) {
      size_t tx_bytes = verified_.front().Serialize().size();
      if (!block.transactions.empty() && bytes + tx_bytes > options_.block_max_bytes) {
        break;
      }
      block.transactions.push_back(std::move(verified_.front()));
      verified_.pop_front();
      bytes += tx_bytes;
    }
    NodeMetrics::Get().verified_pool->Set(int64_t(verified_.size()));
  }

  std::vector<Bytes> leaves;
  for (const Transaction& tx : block.transactions) {
    leaves.push_back(tx.Serialize());
  }
  block.header.tx_root = crypto::MerkleTree(leaves).Root();
  return block;
}

void Node::RequeueVerified(std::vector<Transaction> txs) {
  std::lock_guard<std::mutex> lock(pool_mutex_);
  for (auto it = txs.rbegin(); it != txs.rend(); ++it) {
    verified_.push_front(std::move(*it));
  }
  NodeMetrics::Get().verified_pool->Set(int64_t(verified_.size()));
}

Result<std::vector<Receipt>> Node::ApplyBlock(const Block& block) {
  if (fault::FaultInjector::Global().ShouldFail("fault.chain.apply_block")) {
    return Status::Unavailable("node: injected apply-block failure");
  }
  if (block.header.height != blocks_->NextHeight()) {
    return Status::InvalidArgument("node: block height mismatch");
  }
  if (block.header.height > 0 && block.header.parent_hash != last_block_hash_) {
    return Status::InvalidArgument("node: parent hash mismatch");
  }

  std::vector<Receipt> receipts;
  {
    metrics::ScopedLatencyTimer timer(NodeMetrics::Get().block_execute_latency);
    auto executed =
        executor_.ExecuteBlock(block.transactions, engines_, state_.get());
    if (!executed.ok()) {
      state_->Discard();  // partial overlay from failed groups
      return executed.status();
    }
    receipts = std::move(*executed);
  }
  NodeMetrics::Get().blocks->Increment();
  NodeMetrics::Get().block_txs->Increment(block.transactions.size());
  NodeMetrics::Get().txs_per_block->Observe(block.transactions.size());

  // Receipts, the tx→block index, the state writes and the block itself
  // land in ONE batch: the store applies a batch atomically (single WAL
  // record), so any write failure — injected or real — leaves the chain
  // exactly at the previous block.
  storage::WriteBatch batch;
  for (size_t i = 0; i < receipts.size(); ++i) {
    const crypto::Hash256 tx_hash = block.transactions[i].Hash();
    receipts[i].tx_hash = tx_hash;
    uint8_t height_be[8];
    StoreBe64(height_be, block.header.height);
    batch.Put(ReceiptKey(tx_hash), receipts[i].Serialize());
    batch.Put(TxIndexKey(tx_hash), Bytes(height_be, height_be + 8));
  }

  std::vector<Bytes> receipt_leaves;
  for (const Receipt& receipt : receipts) {
    receipt_leaves.push_back(receipt.Serialize());
  }

  Block stored = block;
  stored.header.receipt_root = crypto::MerkleTree(receipt_leaves).Root();
  crypto::Hash256 new_root;
  state_->StageCommit(&batch, &new_root);
  stored.header.state_root = new_root;

  crypto::Hash256 block_hash = stored.header.Hash();
  Status staged = blocks_->StageAppend(stored.header.height, block_hash,
                                       stored.Serialize(), &batch);
  if (!staged.ok()) {
    state_->RollbackPending();
    return staged;
  }
  Status written = kv_->Write(batch);
  if (written.ok()) CommitWriteWait(options_.commit_write_latency_ns);
  if (written.ok() && options_.sync_commits) written = kv_->Sync();
  if (!written.ok()) {
    state_->RollbackPending();
    blocks_->RollbackStaged();
    return written;
  }
  state_->FinalizeCommit(new_root);
  blocks_->FinalizeAppend();
  last_block_hash_ = block_hash;
  MaybeCheckpointTip(blocks_->NextHeight(), block_hash, new_root);
  return receipts;
}

namespace {

/// A block that finished stage 2 (executed + staged) and waits for the
/// commit stage.
struct StagedBlock {
  Block stored;
  crypto::Hash256 block_hash{};
  crypto::Hash256 new_root{};
  storage::WriteBatch batch;
  std::vector<Receipt> receipts;
};

}  // namespace

Result<std::vector<Receipt>> Node::RunPipelined() {
  if (options_.pipeline_depth == 0 || pool_ == nullptr) {
    // The gate defaults to the old strictly serial lifecycle.
    std::vector<Receipt> all;
    for (;;) {
      CONFIDE_RETURN_NOT_OK(PreVerify().status());
      if (VerifiedPoolSize() == 0) break;
      CONFIDE_ASSIGN_OR_RETURN(Block block, ProposeBlock());
      if (block.transactions.empty()) break;
      CONFIDE_ASSIGN_OR_RETURN(std::vector<Receipt> receipts, ApplyBlock(block));
      for (Receipt& receipt : receipts) all.push_back(std::move(receipt));
    }
    return all;
  }

  const uint32_t depth = options_.pipeline_depth;
  const PipelineMetrics& pm = PipelineMetrics::Get();

  // Transactions a previous failed run returned to the verified pool
  // re-enter the stream ahead of everything newer — stage 1 only feeds
  // from the unverified pool, so without this they would be stranded
  // (re-verification is cheap and keeps a single stage-1 source).
  {
    std::lock_guard<std::mutex> lock(pool_mutex_);
    for (auto it = verified_.rbegin(); it != verified_.rend(); ++it) {
      unverified_.push_front(std::move(*it));
    }
    verified_.clear();
    NodeMetrics::Get().verified_pool->Set(0);
    NodeMetrics::Get().unverified_pool->Set(int64_t(unverified_.size()));
  }

  BoundedQueue<Transaction> verified_queue(size_t(depth) * 64);
  BoundedQueue<std::unique_ptr<StagedBlock>> staged_queue(depth);

  std::atomic<bool> failed{false};
  std::mutex error_mu;
  Status error = Status::OK();
  auto fail = [&](Status status) {
    {
      std::lock_guard<std::mutex> lock(error_mu);
      if (error.ok()) error = std::move(status);
    }
    failed.store(true);
    verified_queue.Close();
    staged_queue.Close();
  };

  // Transactions stranded by a failed commit group; re-queued at unwind.
  std::mutex aborted_mu;
  std::deque<Transaction> aborted_txs;

  // --- Stage 1: batched pre-verification (pool task) ---------------------
  std::future<void> stage1 = pool_->Submit([&] {
    try {
      for (;;) {
        if (failed.load()) break;
        std::deque<Transaction> pending;
        {
          std::lock_guard<std::mutex> lock(pool_mutex_);
          pending.swap(unverified_);
          NodeMetrics::Get().unverified_pool->Set(0);
        }
        if (pending.empty()) break;
        if (fault::FaultInjector::Global().ShouldFail(
                "fault.chain.pipeline.preverify")) {
          // Return the whole batch: an injected verifier outage must not
          // drop transactions.
          std::lock_guard<std::mutex> lock(pool_mutex_);
          for (auto it = pending.rbegin(); it != pending.rend(); ++it) {
            unverified_.push_front(std::move(*it));
          }
          fail(Status::Unavailable("pipeline: injected pre-verify failure"));
          break;
        }
        // Verify in small chunks, not the whole swap: downstream stages
        // start on the first chunk while later ones are still in the
        // verifier, which is where the verify/execute overlap comes from.
        constexpr size_t kPreVerifyChunk = 16;
        bool closed = false;
        while (!pending.empty() && !closed) {
          metrics::ScopedLatencyTimer timer(pm.preverify_latency);
          size_t n = std::min<size_t>(kPreVerifyChunk, pending.size());
          std::vector<Transaction> txs(
              std::make_move_iterator(pending.begin()),
              std::make_move_iterator(pending.begin() + ptrdiff_t(n)));
          pending.erase(pending.begin(), pending.begin() + ptrdiff_t(n));
          std::vector<uint8_t> valid(txs.size(), 0);
          PreVerifyBatch(&txs, &valid);
          for (size_t i = 0; i < txs.size(); ++i) {
            if (!valid[i]) continue;
            if (!verified_queue.Push(&txs[i])) {
              // Shutdown mid-batch: return the unconsumed tail — verified
              // remainder of this chunk first, then the unverified rest.
              std::lock_guard<std::mutex> lock(pool_mutex_);
              for (auto it = pending.rbegin(); it != pending.rend(); ++it) {
                unverified_.push_front(std::move(*it));
              }
              for (size_t j = txs.size(); j-- > i;) {
                if (valid[j]) unverified_.push_front(std::move(txs[j]));
              }
              closed = true;
              break;
            }
            pm.verified_queue->Set(int64_t(verified_queue.Size()));
          }
        }
        if (closed) break;
      }
    } catch (...) {
      fail(Status::Internal("pipeline: pre-verify stage threw"));
    }
    verified_queue.Close();
  });

  // --- Stage 3: group commit + finalize (pool task) ----------------------
  std::vector<Receipt> committed_receipts;
  crypto::Hash256 durable_tip = last_block_hash_;
  std::future<void> stage3 = pool_->Submit([&] {
    auto abort_group = [&](std::vector<std::unique_ptr<StagedBlock>>* group,
                           size_t from) {
      std::lock_guard<std::mutex> lock(aborted_mu);
      for (size_t b = from; b < group->size(); ++b) {
        for (Transaction& tx : (*group)[b]->stored.transactions) {
          aborted_txs.push_back(std::move(tx));
        }
      }
    };
    try {
      for (;;) {
        std::unique_ptr<StagedBlock> first;
        if (!staged_queue.Pop(&first)) break;
        // Drain whatever else is already staged: these blocks commit as
        // one group and their WAL records share a single fsync.
        std::vector<std::unique_ptr<StagedBlock>> group;
        group.push_back(std::move(first));
        std::unique_ptr<StagedBlock> more;
        while (group.size() < depth && staged_queue.TryPop(&more)) {
          group.push_back(std::move(more));
        }
        pm.staged_queue->Set(int64_t(staged_queue.Size()));
        metrics::ScopedLatencyTimer timer(pm.commit_latency);
        if (fault::FaultInjector::Global().ShouldFail(
                "fault.chain.pipeline.commit")) {
          abort_group(&group, 0);
          fail(Status::Unavailable("pipeline: injected commit failure"));
          break;
        }
        Status status = Status::OK();
        size_t written = 0;
        for (auto& block : group) {
          status = kv_->Write(block->batch);
          if (!status.ok()) break;
          // The batch landed; finalize immediately so the in-memory view
          // (roots, height cursors) never trails what the store holds.
          state_->FinalizeCommit(block->new_root);
          blocks_->FinalizeAppend();
          durable_tip = block->block_hash;
          // Stage 3 is the only writer of the backing store, so a
          // snapshot taken here sees exactly the committed prefix.
          MaybeCheckpointTip(blocks_->NextHeight(), block->block_hash,
                             block->new_root);
          NodeMetrics::Get().blocks->Increment();
          NodeMetrics::Get().block_txs->Increment(block->stored.transactions.size());
          NodeMetrics::Get().txs_per_block->Observe(
              double(block->stored.transactions.size()));
          pm.blocks->Increment();
          for (Receipt& receipt : block->receipts) {
            committed_receipts.push_back(std::move(receipt));
          }
          ++written;
        }
        // One device write + fsync covers the whole group (group commit):
        // consecutive blocks' batches share a single ~6 ms SSD flush, and
        // the WAL counts the coalesced appends under
        // storage.wal.group_commit.batched.
        if (status.ok()) CommitWriteWait(options_.commit_write_latency_ns);
        if (status.ok() && options_.sync_commits) status = kv_->Sync();
        if (!status.ok()) {
          abort_group(&group, written);
          fail(status);
          break;
        }
        pm.commit_group_blocks->Observe(double(group.size()));
      }
    } catch (...) {
      fail(Status::Internal("pipeline: commit stage threw"));
    }
  });

  // --- Stage 2: propose + execute + stage (this thread) ------------------
  // Serial across blocks by construction: block N+1's header chains to
  // block N's state/receipt roots, so proposal cannot overlap execution
  // of the same stream — but it overlaps stage 1 and stage 3 freely.
  uint64_t height = blocks_->NextStagedHeight();
  crypto::Hash256 parent = last_block_hash_;
  std::optional<Transaction> carry;
  std::vector<Transaction> failed_block_txs;
  Status stage2_status = Status::OK();

  while (!failed.load()) {
    Block block;
    block.header.height = height;
    block.header.parent_hash = parent;
    block.header.timestamp_ns = height;  // deterministic
    size_t bytes = 0;
    for (;;) {
      Transaction tx;
      if (carry.has_value()) {
        tx = std::move(*carry);
        carry.reset();
      } else if (!verified_queue.Pop(&tx)) {
        break;  // stage 1 finished and the queue drained
      }
      pm.verified_queue->Set(int64_t(verified_queue.Size()));
      size_t tx_bytes = tx.Serialize().size();
      if (!block.transactions.empty() &&
          bytes + tx_bytes > options_.block_max_bytes) {
        carry = std::move(tx);  // overflows this block; opens the next
        break;
      }
      bytes += tx_bytes;
      block.transactions.push_back(std::move(tx));
    }
    if (block.transactions.empty()) break;  // pools drained

    uint64_t stall_ns = 0;
    if (fault::FaultInjector::Global().ShouldFail("fault.chain.pipeline.stall",
                                                  &stall_ns)) {
      // A stall is a delay, not a corruption: the pipeline must absorb it
      // (backpressure) without reordering or dropping anything.
      pm.stalls->Increment();
      std::this_thread::sleep_for(
          std::chrono::nanoseconds(stall_ns > 0 ? stall_ns : 1'000'000));
      fault::NoteRecovered("fault.chain.pipeline.stall");
    }
    if (fault::FaultInjector::Global().ShouldFail(
            "fault.chain.pipeline.execute")) {
      stage2_status = Status::Unavailable("pipeline: injected execute failure");
      failed_block_txs = std::move(block.transactions);
      break;
    }

    metrics::ScopedLatencyTimer timer(pm.execute_latency);
    std::vector<Bytes> leaves;
    for (const Transaction& tx : block.transactions) {
      leaves.push_back(tx.Serialize());
    }
    block.header.tx_root = crypto::MerkleTree(leaves).Root();

    auto executed =
        executor_.ExecuteBlock(block.transactions, engines_, state_.get());
    if (!executed.ok()) {
      state_->Discard();  // partial overlay from failed groups
      stage2_status = executed.status();
      failed_block_txs = std::move(block.transactions);
      break;
    }

    auto staged = std::make_unique<StagedBlock>();
    staged->receipts = std::move(*executed);
    for (size_t i = 0; i < staged->receipts.size(); ++i) {
      const crypto::Hash256 tx_hash = block.transactions[i].Hash();
      staged->receipts[i].tx_hash = tx_hash;
      uint8_t height_be[8];
      StoreBe64(height_be, height);
      staged->batch.Put(ReceiptKey(tx_hash), staged->receipts[i].Serialize());
      staged->batch.Put(TxIndexKey(tx_hash), Bytes(height_be, height_be + 8));
    }
    std::vector<Bytes> receipt_leaves;
    for (const Receipt& receipt : staged->receipts) {
      receipt_leaves.push_back(receipt.Serialize());
    }
    staged->stored = std::move(block);
    staged->stored.header.receipt_root = crypto::MerkleTree(receipt_leaves).Root();
    state_->StageCommit(&staged->batch, &staged->new_root);
    staged->stored.header.state_root = staged->new_root;
    staged->block_hash = staged->stored.header.Hash();
    Status append = blocks_->StageAppend(height, staged->block_hash,
                                         staged->stored.Serialize(),
                                         &staged->batch);
    if (!append.ok()) {
      stage2_status = append;
      failed_block_txs = std::move(staged->stored.transactions);
      break;
    }
    parent = staged->block_hash;
    ++height;
    if (!staged_queue.Push(&staged)) {
      // Commit stage failed and closed the queue; this block never commits.
      failed_block_txs = std::move(staged->stored.transactions);
      break;
    }
    pm.staged_queue->Set(int64_t(staged_queue.Size()));
  }
  if (!stage2_status.ok()) fail(stage2_status);
  staged_queue.Close();   // lets stage 3 drain what was validly staged
  verified_queue.Close();  // stops stage 1 if it is still producing

  stage3.get();
  stage1.get();

  // The committed prefix is final; everything staged past it unwinds.
  last_block_hash_ = durable_tip;
  state_->RollbackPending();
  blocks_->RollbackStaged();

  if (failed.load()) {
    // Re-queue every transaction that reached the pipeline but did not
    // commit, oldest first, so a retry replays them in order:
    // commit-stage casualties precede still-staged blocks, which precede
    // the block that failed in stage 2, the carry-over, and the verified
    // backlog.
    std::deque<Transaction> requeue;
    {
      std::lock_guard<std::mutex> lock(aborted_mu);
      for (Transaction& tx : aborted_txs) requeue.push_back(std::move(tx));
    }
    std::unique_ptr<StagedBlock> orphan;
    while (staged_queue.TryPop(&orphan)) {
      for (Transaction& tx : orphan->stored.transactions) {
        requeue.push_back(std::move(tx));
      }
    }
    for (Transaction& tx : failed_block_txs) requeue.push_back(std::move(tx));
    if (carry.has_value()) requeue.push_back(std::move(*carry));
    Transaction leftover;
    while (verified_queue.TryPop(&leftover)) requeue.push_back(std::move(leftover));
    {
      std::lock_guard<std::mutex> lock(pool_mutex_);
      for (auto it = requeue.rbegin(); it != requeue.rend(); ++it) {
        verified_.push_front(std::move(*it));
      }
      NodeMetrics::Get().verified_pool->Set(int64_t(verified_.size()));
    }
    std::lock_guard<std::mutex> lock(error_mu);
    return error;
  }
  return committed_receipts;
}

Result<Receipt> Node::GetReceipt(const crypto::Hash256& tx_hash) const {
  CONFIDE_ASSIGN_OR_RETURN(Bytes wire, kv_->Get(ReceiptKey(tx_hash)));
  return Receipt::Deserialize(wire);
}

Result<TxProof> Node::ProveTransaction(const crypto::Hash256& tx_hash) const {
  CONFIDE_ASSIGN_OR_RETURN(Bytes height_bytes, kv_->Get(TxIndexKey(tx_hash)));
  if (height_bytes.size() != 8) return Status::Corruption("node: bad tx index");
  uint64_t height = LoadBe64(height_bytes.data());
  CONFIDE_ASSIGN_OR_RETURN(Bytes block_wire, blocks_->GetByHeight(height));
  CONFIDE_ASSIGN_OR_RETURN(Block block, Block::Deserialize(block_wire));

  std::vector<Bytes> leaves;
  size_t index = block.transactions.size();
  for (size_t i = 0; i < block.transactions.size(); ++i) {
    leaves.push_back(block.transactions[i].Serialize());
    if (block.transactions[i].Hash() == tx_hash) index = i;
  }
  if (index == block.transactions.size()) {
    return Status::Corruption("node: tx index points to wrong block");
  }
  crypto::MerkleTree tree(leaves);
  TxProof proof;
  proof.header = block.header;
  proof.tx_wire = leaves[index];
  CONFIDE_ASSIGN_OR_RETURN(proof.proof, tree.Prove(index));
  return proof;
}

bool Node::VerifyTxProof(const TxProof& proof) {
  return crypto::MerkleTree::Verify(proof.header.tx_root, proof.tx_wire,
                                    proof.proof);
}

size_t Node::UnverifiedPoolSize() const {
  std::lock_guard<std::mutex> lock(pool_mutex_);
  return unverified_.size();
}

size_t Node::VerifiedPoolSize() const {
  std::lock_guard<std::mutex> lock(pool_mutex_);
  return verified_.size();
}

}  // namespace confide::chain
