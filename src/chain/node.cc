#include "chain/node.h"

#include <atomic>
#include <thread>

#include "common/endian.h"
#include "common/fault.h"
#include "common/metrics.h"

namespace confide::chain {

namespace {

struct NodeMetrics {
  metrics::Counter* blocks = metrics::GetCounter("chain.block.count");
  metrics::Counter* block_txs = metrics::GetCounter("chain.block.tx.count");
  metrics::Histogram* txs_per_block = metrics::GetHistogram(
      "chain.block.txs", {1, 2, 4, 8, 16, 32, 64, 128, 256, 512, 1024});
  metrics::Histogram* block_execute_latency =
      metrics::GetHistogram("chain.block.execute.latency_ns");
  metrics::Histogram* preverify_batch_latency =
      metrics::GetHistogram("chain.preverify.batch.latency_ns");
  metrics::Gauge* unverified_pool = metrics::GetGauge("chain.pool.unverified");
  metrics::Gauge* verified_pool = metrics::GetGauge("chain.pool.verified");

  static const NodeMetrics& Get() {
    static const NodeMetrics instruments;
    return instruments;
  }
};

std::string ReceiptKey(const crypto::Hash256& tx_hash) {
  return "rcpt/" + HexEncode(crypto::HashView(tx_hash));
}

std::string TxIndexKey(const crypto::Hash256& tx_hash) {
  return "txix/" + HexEncode(crypto::HashView(tx_hash));
}

}  // namespace

Node::Node(NodeOptions options, EngineSet engines,
           std::shared_ptr<storage::KvStore> kv)
    : options_(options),
      engines_(engines),
      executor_(ExecutorOptions{options.parallelism}),
      kv_(std::move(kv)) {
  state_ = std::make_unique<CommitStateDb>(kv_);
  blocks_ = std::make_unique<storage::BlockStore>(kv_, options.clock);
}

Result<std::unique_ptr<Node>> Node::Create(NodeOptions options,
                                           EngineSet engines) {
  storage::LsmOptions lsm;
  lsm.wal_dir = options.state_wal_dir;
  auto store = storage::LsmKvStore::Open(lsm);
  if (!store.ok()) {
    // A node configured for durability must not come up volatile: an
    // unusable WAL would otherwise mean every acknowledged write is lost
    // on restart while the node reports success throughout.
    metrics::GetCounter("chain.node.storage_open_failure.count")->Increment();
    return store.status();
  }
  return std::unique_ptr<Node>(new Node(
      options, engines, std::shared_ptr<storage::KvStore>(std::move(*store))));
}

Status Node::SubmitTransaction(Transaction tx) {
  if (fault::FaultInjector::Global().ShouldFail("fault.chain.submit")) {
    return Status::Unavailable("node: injected submit failure");
  }
  if (tx.type == TxType::kConfidential && tx.envelope.empty()) {
    return Status::InvalidArgument("node: confidential tx without envelope");
  }
  std::lock_guard<std::mutex> lock(pool_mutex_);
  unverified_.push_back(std::move(tx));
  NodeMetrics::Get().unverified_pool->Set(int64_t(unverified_.size()));
  return Status::OK();
}

Result<size_t> Node::PreVerify() {
  std::deque<Transaction> pending;
  {
    std::lock_guard<std::mutex> lock(pool_mutex_);
    pending.swap(unverified_);
    NodeMetrics::Get().unverified_pool->Set(0);
  }
  if (pending.empty()) return size_t(0);
  metrics::ScopedLatencyTimer timer(NodeMetrics::Get().preverify_batch_latency);

  std::vector<Transaction> txs(pending.begin(), pending.end());
  std::vector<uint8_t> valid(txs.size(), 0);
  std::atomic<size_t> next{0};

  auto worker = [&] {
    for (;;) {
      size_t i = next.fetch_add(1);
      if (i >= txs.size()) return;
      ExecutionEngine* engine = engines_.Route(txs[i]);
      if (engine == nullptr) continue;
      auto ok = engine->PreVerify(txs[i]);
      valid[i] = (ok.ok() && *ok) ? 1 : 0;
    }
  };

  uint32_t n_threads = std::max<uint32_t>(1, options_.parallelism);
  if (n_threads == 1) {
    worker();
  } else {
    std::vector<std::thread> threads;
    for (uint32_t t = 0; t < n_threads; ++t) threads.emplace_back(worker);
    for (std::thread& thread : threads) thread.join();
  }

  size_t count = 0;
  {
    std::lock_guard<std::mutex> lock(pool_mutex_);
    for (size_t i = 0; i < txs.size(); ++i) {
      if (valid[i]) {
        verified_.push_back(std::move(txs[i]));
        ++count;
      }
    }
    NodeMetrics::Get().verified_pool->Set(int64_t(verified_.size()));
  }
  return count;
}

Result<Block> Node::ProposeBlock() {
  Block block;
  block.header.height = blocks_->NextHeight();
  block.header.parent_hash = last_block_hash_;
  block.header.timestamp_ns = block.header.height;  // deterministic

  size_t bytes = 0;
  {
    std::lock_guard<std::mutex> lock(pool_mutex_);
    while (!verified_.empty()) {
      size_t tx_bytes = verified_.front().Serialize().size();
      if (!block.transactions.empty() && bytes + tx_bytes > options_.block_max_bytes) {
        break;
      }
      block.transactions.push_back(std::move(verified_.front()));
      verified_.pop_front();
      bytes += tx_bytes;
    }
    NodeMetrics::Get().verified_pool->Set(int64_t(verified_.size()));
  }

  std::vector<Bytes> leaves;
  for (const Transaction& tx : block.transactions) {
    leaves.push_back(tx.Serialize());
  }
  block.header.tx_root = crypto::MerkleTree(leaves).Root();
  return block;
}

Result<std::vector<Receipt>> Node::ApplyBlock(const Block& block) {
  if (fault::FaultInjector::Global().ShouldFail("fault.chain.apply_block")) {
    return Status::Unavailable("node: injected apply-block failure");
  }
  if (block.header.height != blocks_->NextHeight()) {
    return Status::InvalidArgument("node: block height mismatch");
  }
  if (block.header.height > 0 && block.header.parent_hash != last_block_hash_) {
    return Status::InvalidArgument("node: parent hash mismatch");
  }

  std::vector<Receipt> receipts;
  {
    metrics::ScopedLatencyTimer timer(NodeMetrics::Get().block_execute_latency);
    auto executed =
        executor_.ExecuteBlock(block.transactions, engines_, state_.get());
    if (!executed.ok()) {
      state_->Discard();  // partial overlay from failed groups
      return executed.status();
    }
    receipts = std::move(*executed);
  }
  NodeMetrics::Get().blocks->Increment();
  NodeMetrics::Get().block_txs->Increment(block.transactions.size());
  NodeMetrics::Get().txs_per_block->Observe(block.transactions.size());

  // Receipts, the tx→block index, the state writes and the block itself
  // land in ONE batch: the store applies a batch atomically (single WAL
  // record), so any write failure — injected or real — leaves the chain
  // exactly at the previous block.
  storage::WriteBatch batch;
  for (size_t i = 0; i < receipts.size(); ++i) {
    const crypto::Hash256 tx_hash = block.transactions[i].Hash();
    receipts[i].tx_hash = tx_hash;
    uint8_t height_be[8];
    StoreBe64(height_be, block.header.height);
    batch.Put(ReceiptKey(tx_hash), receipts[i].Serialize());
    batch.Put(TxIndexKey(tx_hash), Bytes(height_be, height_be + 8));
  }

  std::vector<Bytes> receipt_leaves;
  for (const Receipt& receipt : receipts) {
    receipt_leaves.push_back(receipt.Serialize());
  }

  Block stored = block;
  stored.header.receipt_root = crypto::MerkleTree(receipt_leaves).Root();
  crypto::Hash256 new_root;
  state_->StageCommit(&batch, &new_root);
  stored.header.state_root = new_root;

  crypto::Hash256 block_hash = stored.header.Hash();
  Status staged = blocks_->StageAppend(stored.header.height, block_hash,
                                       stored.Serialize(), &batch);
  if (!staged.ok()) {
    state_->Discard();
    return staged;
  }
  Status written = kv_->Write(batch);
  if (!written.ok()) {
    state_->Discard();
    return written;
  }
  state_->FinalizeCommit(new_root);
  blocks_->FinalizeAppend();
  last_block_hash_ = block_hash;
  return receipts;
}

Result<Receipt> Node::GetReceipt(const crypto::Hash256& tx_hash) const {
  CONFIDE_ASSIGN_OR_RETURN(Bytes wire, kv_->Get(ReceiptKey(tx_hash)));
  return Receipt::Deserialize(wire);
}

Result<TxProof> Node::ProveTransaction(const crypto::Hash256& tx_hash) const {
  CONFIDE_ASSIGN_OR_RETURN(Bytes height_bytes, kv_->Get(TxIndexKey(tx_hash)));
  if (height_bytes.size() != 8) return Status::Corruption("node: bad tx index");
  uint64_t height = LoadBe64(height_bytes.data());
  CONFIDE_ASSIGN_OR_RETURN(Bytes block_wire, blocks_->GetByHeight(height));
  CONFIDE_ASSIGN_OR_RETURN(Block block, Block::Deserialize(block_wire));

  std::vector<Bytes> leaves;
  size_t index = block.transactions.size();
  for (size_t i = 0; i < block.transactions.size(); ++i) {
    leaves.push_back(block.transactions[i].Serialize());
    if (block.transactions[i].Hash() == tx_hash) index = i;
  }
  if (index == block.transactions.size()) {
    return Status::Corruption("node: tx index points to wrong block");
  }
  crypto::MerkleTree tree(leaves);
  TxProof proof;
  proof.header = block.header;
  proof.tx_wire = leaves[index];
  CONFIDE_ASSIGN_OR_RETURN(proof.proof, tree.Prove(index));
  return proof;
}

bool Node::VerifyTxProof(const TxProof& proof) {
  return crypto::MerkleTree::Verify(proof.header.tx_root, proof.tx_wire,
                                    proof.proof);
}

size_t Node::UnverifiedPoolSize() const {
  std::lock_guard<std::mutex> lock(pool_mutex_);
  return unverified_.size();
}

size_t Node::VerifiedPoolSize() const {
  std::lock_guard<std::mutex> lock(pool_mutex_);
  return verified_.size();
}

}  // namespace confide::chain
