#include "chain/pbft.h"

#include <algorithm>
#include <queue>

#include "common/fault.h"
#include "common/metrics.h"
#include "crypto/drbg.h"

namespace confide::chain {

namespace {

enum class MsgType : uint8_t { kPrePrepare, kPrepare, kCommit };

struct Event {
  uint64_t time_ns;
  uint32_t to;
  uint32_t from;
  MsgType type;

  bool operator>(const Event& other) const { return time_ns > other.time_ns; }
};

struct ReplicaState {
  bool preprepared = false;
  bool prepared = false;   // sent commit
  bool committed = false;
  uint32_t prepare_votes = 0;
  uint32_t commit_votes = 0;
  uint64_t busy_until_ns = 0;  // models serial message processing
};

}  // namespace

PbftRoundResult SimulatePbftRound(const NetworkSim& net, uint32_t leader,
                                  uint64_t payload_bytes,
                                  const PbftCostModel& cost) {
  const uint32_t n = uint32_t(net.NodeCount());
  const uint32_t f = (n - 1) / 3;
  const uint32_t prepare_quorum = 2 * f;      // prepares from others + own
  const uint32_t commit_quorum = 2 * f + 1;   // commits incl. own

  std::priority_queue<Event, std::vector<Event>, std::greater<Event>> queue;
  std::vector<ReplicaState> replicas(n);
  PbftRoundResult result;
  result.commit_time_ns.assign(n, 0);

  // The sender's NIC serializes outgoing copies one after another, so a
  // broadcast of a large proposal to many (especially WAN) peers takes
  // longer as the cluster grows — the Figure 11 two-zone effect.
  std::vector<uint64_t> nic_free(n, 0);
  auto broadcast = [&](uint32_t from, uint64_t at_ns, MsgType type,
                       uint64_t bytes) {
    for (uint32_t to = 0; to < n; ++to) {
      if (to == from) continue;
      uint64_t depart = std::max(at_ns, nic_free[from]);
      uint64_t serialization = net.SerializationNs(from, to, bytes);
      nic_free[from] = depart + serialization;
      queue.push({depart + serialization + net.LatencyNs(from, to), to, from, type});
      ++result.messages_sent;
    }
  };

  // Leader pre-prepares at t=0 (already prepared by construction).
  replicas[leader].preprepared = true;
  broadcast(leader, 0, MsgType::kPrePrepare, payload_bytes);
  // Leader's own prepare counts implicitly; it also broadcasts prepare.
  broadcast(leader, 0, MsgType::kPrepare, cost.vote_bytes);

  uint32_t committed_count = 0;

  while (!queue.empty()) {
    Event ev = queue.top();
    queue.pop();
    ReplicaState& replica = replicas[ev.to];

    // Serial processing at the replica.
    uint64_t start = std::max(ev.time_ns, replica.busy_until_ns);
    uint64_t processing = (ev.type == MsgType::kPrePrepare)
                              ? cost.preprepare_processing_ns
                              : cost.vote_processing_ns;
    uint64_t done = start + processing;
    replica.busy_until_ns = done;

    switch (ev.type) {
      case MsgType::kPrePrepare:
        if (!replica.preprepared) {
          replica.preprepared = true;
          broadcast(ev.to, done, MsgType::kPrepare, cost.vote_bytes);
        }
        break;
      case MsgType::kPrepare:
        ++replica.prepare_votes;
        break;
      case MsgType::kCommit:
        ++replica.commit_votes;
        break;
    }

    // Phase transitions (evaluated after every message).
    if (replica.preprepared && !replica.prepared &&
        replica.prepare_votes >= prepare_quorum) {
      replica.prepared = true;
      broadcast(ev.to, done, MsgType::kCommit, cost.vote_bytes);
      ++replica.commit_votes;  // own commit
    }
    if (replica.prepared && !replica.committed &&
        replica.commit_votes >= commit_quorum) {
      replica.committed = true;
      result.commit_time_ns[ev.to] = done;
      ++committed_count;
      if (committed_count == commit_quorum && result.quorum_commit_ns == 0) {
        result.quorum_commit_ns = done;
      }
    }
  }

  // The leader commits too (its votes arrive via the same queue); if any
  // replica never committed (tiny networks), fall back to the max.
  if (result.quorum_commit_ns == 0) {
    result.quorum_commit_ns =
        *std::max_element(result.commit_time_ns.begin(), result.commit_time_ns.end());
  }

  static metrics::Counter* rounds = metrics::GetCounter("chain.pbft.round.count");
  static metrics::Counter* messages =
      metrics::GetCounter("chain.pbft.message.count");
  static metrics::Histogram* quorum_latency =
      metrics::GetHistogram("chain.pbft.quorum_commit_ns");
  rounds->Increment();
  messages->Increment(result.messages_sent);
  quorum_latency->Observe(result.quorum_commit_ns);
  return result;
}

// ---------------------------------------------------------------------------
// Fault-aware simulator with view changes
// ---------------------------------------------------------------------------

namespace {

enum class FMsgType : uint8_t {
  kPrePrepare,  // view-0 proposal (NewView plays this role in later views)
  kPrepare,
  kCommit,
  kViewChange,
  kNewView,
  kTimer,       // local view timeout, no network crossing
};

struct FEvent {
  uint64_t time_ns;
  uint32_t to;
  uint32_t from;
  uint32_t view;
  FMsgType type;
  bool valid;  // false = equivocating sender; honest receivers discard

  bool operator>(const FEvent& other) const { return time_ns > other.time_ns; }
};

struct FReplica {
  uint32_t view = 0;
  uint64_t busy_until_ns = 0;
  bool committed = false;
  // Per-view protocol state (indexed by view, size max_views + 1).
  std::vector<uint8_t> preprepared, prepared, timer_armed, newview_sent;
  std::vector<uint32_t> prepare_votes, commit_votes, viewchange_votes;
};

}  // namespace

PbftFaultResult SimulatePbftWithFaults(const NetworkSim& net, uint32_t leader,
                                       uint64_t payload_bytes,
                                       const PbftFaultModel& faults,
                                       const PbftCostModel& cost) {
  const uint32_t n = uint32_t(net.NodeCount());
  const uint32_t f = (n - 1) / 3;
  const uint32_t prepare_quorum = 2 * f;     // prepares from others + own
  const uint32_t commit_quorum = 2 * f + 1;  // commits incl. own
  const uint32_t max_view = faults.max_views;

  auto behavior = [&](uint32_t i) {
    return i < faults.behavior.size() ? faults.behavior[i]
                                      : ReplicaBehavior::kHonest;
  };
  auto view_leader = [&](uint32_t v) { return (leader + v) % n; };

  crypto::Drbg rng(faults.seed);
  std::priority_queue<FEvent, std::vector<FEvent>, std::greater<FEvent>> queue;
  std::vector<FReplica> replicas(n);
  for (FReplica& r : replicas) {
    r.preprepared.assign(max_view + 1, 0);
    r.prepared.assign(max_view + 1, 0);
    r.timer_armed.assign(max_view + 1, 0);
    r.newview_sent.assign(max_view + 1, 0);
    r.prepare_votes.assign(max_view + 1, 0);
    r.commit_votes.assign(max_view + 1, 0);
    r.viewchange_votes.assign(max_view + 1, 0);
  }

  PbftFaultResult result;
  result.commit_time_ns.assign(n, 0);
  uint32_t committed_count = 0;
  uint32_t highest_view = 0;
  std::vector<uint64_t> nic_free(n, 0);

  const bool leader_crashed = behavior(leader) == ReplicaBehavior::kCrashed;
  if (leader_crashed) fault::NoteInjected("fault.chain.leader_crash");

  static metrics::Counter* dropped_counter =
      metrics::GetCounter("chain.pbft.message.dropped");

  auto unicast = [&](uint32_t from, uint32_t to, uint64_t at_ns, FMsgType type,
                     uint32_t view, uint64_t bytes, bool valid) {
    uint64_t depart = std::max(at_ns, nic_free[from]);
    uint64_t serialization = net.SerializationNs(from, to, bytes);
    nic_free[from] = depart + serialization;
    ++result.messages_sent;
    // Loss: partition, link drop rate, armed injector site, dead receiver.
    bool drop = !net.Reachable(from, to) ||
                behavior(to) == ReplicaBehavior::kCrashed;
    double rate = net.DropRate(from, to);
    if (!drop && rate > 0.0 &&
        rng.NextBounded(1'000'000) < uint64_t(rate * 1'000'000.0)) {
      drop = true;
    }
    if (!drop &&
        fault::FaultInjector::Global().ShouldFail("fault.chain.pbft_msg_drop")) {
      drop = true;
    }
    if (drop) {
      ++result.messages_dropped;
      dropped_counter->Increment();
      return;
    }
    uint64_t jitter = net.JitterNs(from, to);
    uint64_t extra = jitter > 0 ? rng.NextBounded(jitter + 1) : 0;
    queue.push({depart + serialization + net.LatencyNs(from, to) + extra, to,
                from, view, type, valid});
  };

  auto broadcast = [&](uint32_t from, uint64_t at_ns, FMsgType type,
                       uint32_t view, uint64_t bytes, bool valid) {
    for (uint32_t to = 0; to < n; ++to) {
      if (to != from) unicast(from, to, at_ns, type, view, bytes, valid);
    }
  };

  // Does replica i put messages on the wire, and are they truthful?
  auto sends = [&](uint32_t i) {
    return behavior(i) == ReplicaBehavior::kHonest ||
           behavior(i) == ReplicaBehavior::kEquivocating;
  };
  auto truthful = [&](uint32_t i) {
    return behavior(i) == ReplicaBehavior::kHonest;
  };

  auto arm_timer = [&](uint32_t i, uint32_t view, uint64_t now_ns) {
    if (view > max_view || replicas[i].timer_armed[view]) return;
    replicas[i].timer_armed[view] = 1;
    queue.push({now_ns + faults.view_timeout_ns, i, i, view, FMsgType::kTimer,
                true});
  };

  // Enters `view` at replica i; `announce` = broadcast a VIEW-CHANGE vote
  // (false when entering because a NEW-VIEW arrived).
  auto enter_view = [&](uint32_t i, uint32_t view, uint64_t now_ns,
                        bool announce) {
    FReplica& r = replicas[i];
    if (view <= r.view && !(view == 0 && r.view == 0)) return;
    r.view = view;
    highest_view = std::max(highest_view, view);
    if (announce && sends(i)) {
      broadcast(i, now_ns, FMsgType::kViewChange, view, cost.vote_bytes,
                truthful(i));
    }
    if (announce && truthful(i) && view_leader(view) == i) {
      ++r.viewchange_votes[view];  // its own view-change vote
    }
    arm_timer(i, view, now_ns);
  };

  // New leader of `view` proposes once it holds a 2f+1 view-change quorum.
  auto maybe_new_view = [&](uint32_t i, uint32_t view, uint64_t now_ns) {
    FReplica& r = replicas[i];
    if (view_leader(view) != i || view > max_view || r.newview_sent[view]) return;
    if (r.viewchange_votes[view] < commit_quorum) return;
    r.newview_sent[view] = 1;
    if (!sends(i)) return;  // a silent new leader stalls this view too
    if (r.view < view) enter_view(i, view, now_ns, /*announce=*/false);
    r.preprepared[view] = 1;
    broadcast(i, now_ns, FMsgType::kNewView, view, payload_bytes, truthful(i));
    broadcast(i, now_ns, FMsgType::kPrepare, view, cost.vote_bytes, truthful(i));
  };

  // t=0: every live replica arms its view-0 timer; the leader proposes.
  for (uint32_t i = 0; i < n; ++i) {
    if (behavior(i) != ReplicaBehavior::kCrashed) arm_timer(i, 0, 0);
  }
  if (sends(leader)) {
    replicas[leader].preprepared[0] = 1;
    broadcast(leader, 0, FMsgType::kPrePrepare, 0, payload_bytes,
              truthful(leader));
    broadcast(leader, 0, FMsgType::kPrepare, 0, cost.vote_bytes,
              truthful(leader));
  }

  while (!queue.empty()) {
    FEvent ev = queue.top();
    queue.pop();
    FReplica& r = replicas[ev.to];

    uint64_t processing = 0;
    switch (ev.type) {
      case FMsgType::kPrePrepare:
      case FMsgType::kNewView:
        processing = cost.preprepare_processing_ns;
        break;
      case FMsgType::kPrepare:
      case FMsgType::kCommit:
      case FMsgType::kViewChange:
        processing = cost.vote_processing_ns;
        break;
      case FMsgType::kTimer:
        break;
    }
    uint64_t start = std::max(ev.time_ns, r.busy_until_ns);
    uint64_t done = start + processing;
    if (processing > 0) r.busy_until_ns = done;

    switch (ev.type) {
      case FMsgType::kTimer:
        // Stale once the replica committed or moved past the timed view.
        if (!r.committed && ev.view == r.view && ev.view < max_view) {
          enter_view(ev.to, ev.view + 1, done, /*announce=*/true);
          maybe_new_view(ev.to, ev.view + 1, done);
        }
        break;
      case FMsgType::kPrePrepare:
        if (ev.valid && r.view == 0 && !r.preprepared[0]) {
          r.preprepared[0] = 1;
          if (sends(ev.to)) {
            broadcast(ev.to, done, FMsgType::kPrepare, 0, cost.vote_bytes,
                      truthful(ev.to));
          }
        }
        break;
      case FMsgType::kNewView:
        if (ev.valid && ev.view >= r.view && !r.preprepared[ev.view]) {
          enter_view(ev.to, ev.view, done, /*announce=*/false);
          r.preprepared[ev.view] = 1;
          if (sends(ev.to)) {
            broadcast(ev.to, done, FMsgType::kPrepare, ev.view, cost.vote_bytes,
                      truthful(ev.to));
          }
        }
        break;
      case FMsgType::kPrepare:
        if (ev.valid) ++r.prepare_votes[ev.view];
        break;
      case FMsgType::kCommit:
        if (ev.valid) ++r.commit_votes[ev.view];
        break;
      case FMsgType::kViewChange:
        if (ev.valid) {
          ++r.viewchange_votes[ev.view];
          maybe_new_view(ev.to, ev.view, done);
        }
        break;
    }

    // Phase transitions in the replica's current view.
    const uint32_t w = r.view;
    if (r.preprepared[w] && !r.prepared[w] && r.prepare_votes[w] >= prepare_quorum) {
      r.prepared[w] = 1;
      if (sends(ev.to)) {
        broadcast(ev.to, done, FMsgType::kCommit, w, cost.vote_bytes,
                  truthful(ev.to));
      }
      ++r.commit_votes[w];  // own commit
    }
    if (r.prepared[w] && !r.committed && r.commit_votes[w] >= commit_quorum) {
      r.committed = true;
      result.commit_time_ns[ev.to] = done;
      // Only honest/silent replicas count toward the trusted quorum.
      if (behavior(ev.to) == ReplicaBehavior::kHonest ||
          behavior(ev.to) == ReplicaBehavior::kSilent) {
        ++committed_count;
        if (committed_count == commit_quorum && !result.committed) {
          result.committed = true;
          result.quorum_commit_ns = done;
          result.commit_view = w;
        }
      }
    }
  }

  result.view_changes = highest_view;
  if (result.committed && leader_crashed) {
    fault::NoteRecovered("fault.chain.leader_crash");
  }

  static metrics::Counter* fault_rounds =
      metrics::GetCounter("chain.pbft.fault_round.count");
  static metrics::Counter* view_changes =
      metrics::GetCounter("chain.pbft.view_change.count");
  static metrics::Counter* messages =
      metrics::GetCounter("chain.pbft.message.count");
  static metrics::Histogram* quorum_latency =
      metrics::GetHistogram("chain.pbft.fault.quorum_commit_ns");
  fault_rounds->Increment();
  view_changes->Increment(result.view_changes);
  messages->Increment(result.messages_sent);
  if (result.committed) quorum_latency->Observe(result.quorum_commit_ns);
  return result;
}

}  // namespace confide::chain
