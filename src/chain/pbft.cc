#include "chain/pbft.h"

#include <algorithm>
#include <queue>

#include "common/metrics.h"

namespace confide::chain {

namespace {

enum class MsgType : uint8_t { kPrePrepare, kPrepare, kCommit };

struct Event {
  uint64_t time_ns;
  uint32_t to;
  uint32_t from;
  MsgType type;

  bool operator>(const Event& other) const { return time_ns > other.time_ns; }
};

struct ReplicaState {
  bool preprepared = false;
  bool prepared = false;   // sent commit
  bool committed = false;
  uint32_t prepare_votes = 0;
  uint32_t commit_votes = 0;
  uint64_t busy_until_ns = 0;  // models serial message processing
};

}  // namespace

PbftRoundResult SimulatePbftRound(const NetworkSim& net, uint32_t leader,
                                  uint64_t payload_bytes,
                                  const PbftCostModel& cost) {
  const uint32_t n = uint32_t(net.NodeCount());
  const uint32_t f = (n - 1) / 3;
  const uint32_t prepare_quorum = 2 * f;      // prepares from others + own
  const uint32_t commit_quorum = 2 * f + 1;   // commits incl. own

  std::priority_queue<Event, std::vector<Event>, std::greater<Event>> queue;
  std::vector<ReplicaState> replicas(n);
  PbftRoundResult result;
  result.commit_time_ns.assign(n, 0);

  // The sender's NIC serializes outgoing copies one after another, so a
  // broadcast of a large proposal to many (especially WAN) peers takes
  // longer as the cluster grows — the Figure 11 two-zone effect.
  std::vector<uint64_t> nic_free(n, 0);
  auto broadcast = [&](uint32_t from, uint64_t at_ns, MsgType type,
                       uint64_t bytes) {
    for (uint32_t to = 0; to < n; ++to) {
      if (to == from) continue;
      uint64_t depart = std::max(at_ns, nic_free[from]);
      uint64_t serialization = net.SerializationNs(from, to, bytes);
      nic_free[from] = depart + serialization;
      queue.push({depart + serialization + net.LatencyNs(from, to), to, from, type});
      ++result.messages_sent;
    }
  };

  // Leader pre-prepares at t=0 (already prepared by construction).
  replicas[leader].preprepared = true;
  broadcast(leader, 0, MsgType::kPrePrepare, payload_bytes);
  // Leader's own prepare counts implicitly; it also broadcasts prepare.
  broadcast(leader, 0, MsgType::kPrepare, cost.vote_bytes);

  uint32_t committed_count = 0;

  while (!queue.empty()) {
    Event ev = queue.top();
    queue.pop();
    ReplicaState& replica = replicas[ev.to];

    // Serial processing at the replica.
    uint64_t start = std::max(ev.time_ns, replica.busy_until_ns);
    uint64_t processing = (ev.type == MsgType::kPrePrepare)
                              ? cost.preprepare_processing_ns
                              : cost.vote_processing_ns;
    uint64_t done = start + processing;
    replica.busy_until_ns = done;

    switch (ev.type) {
      case MsgType::kPrePrepare:
        if (!replica.preprepared) {
          replica.preprepared = true;
          broadcast(ev.to, done, MsgType::kPrepare, cost.vote_bytes);
        }
        break;
      case MsgType::kPrepare:
        ++replica.prepare_votes;
        break;
      case MsgType::kCommit:
        ++replica.commit_votes;
        break;
    }

    // Phase transitions (evaluated after every message).
    if (replica.preprepared && !replica.prepared &&
        replica.prepare_votes >= prepare_quorum) {
      replica.prepared = true;
      broadcast(ev.to, done, MsgType::kCommit, cost.vote_bytes);
      ++replica.commit_votes;  // own commit
    }
    if (replica.prepared && !replica.committed &&
        replica.commit_votes >= commit_quorum) {
      replica.committed = true;
      result.commit_time_ns[ev.to] = done;
      ++committed_count;
      if (committed_count == commit_quorum && result.quorum_commit_ns == 0) {
        result.quorum_commit_ns = done;
      }
    }
  }

  // The leader commits too (its votes arrive via the same queue); if any
  // replica never committed (tiny networks), fall back to the max.
  if (result.quorum_commit_ns == 0) {
    result.quorum_commit_ns =
        *std::max_element(result.commit_time_ns.begin(), result.commit_time_ns.end());
  }

  static metrics::Counter* rounds = metrics::GetCounter("chain.pbft.round.count");
  static metrics::Counter* messages =
      metrics::GetCounter("chain.pbft.message.count");
  static metrics::Histogram* quorum_latency =
      metrics::GetHistogram("chain.pbft.quorum_commit_ns");
  rounds->Increment();
  messages->Increment(result.messages_sent);
  quorum_latency->Observe(result.quorum_commit_ns);
  return result;
}

}  // namespace confide::chain
