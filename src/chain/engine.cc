#include "chain/engine.h"

namespace confide::chain {

Status ContractRegistry::Deploy(StateDb* state, const Address& contract,
                                VmKind vm, Bytes code) {
  state->Put(contract, AsByteView(kCodeKey), std::move(code));
  state->Put(contract, AsByteView(kVmKey), Bytes{uint8_t(vm)});
  return state->Commit();
}

Result<ContractRegistry::ContractInfo> ContractRegistry::Load(
    StateDb* state, const Address& contract) {
  CONFIDE_ASSIGN_OR_RETURN(Bytes code, state->Get(contract, AsByteView(kCodeKey)));
  CONFIDE_ASSIGN_OR_RETURN(Bytes vm_byte, state->Get(contract, AsByteView(kVmKey)));
  if (vm_byte.size() != 1 || vm_byte[0] > 1) {
    return Status::Corruption("chain: bad vm kind for contract");
  }
  return ContractInfo{VmKind(vm_byte[0]), std::move(code)};
}

}  // namespace confide::chain
