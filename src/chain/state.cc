#include "chain/state.h"

namespace confide::chain {

std::string StateDb::StateKey(const Address& contract, ByteView key) {
  return AddressToString(contract) + "/" + ToString(key);
}

// ---------------------------------------------------------------------------
// CommitStateDb
// ---------------------------------------------------------------------------

Result<Bytes> CommitStateDb::Get(const Address& contract, ByteView key) const {
  std::string full_key = StateKey(contract, key);
  {
    std::lock_guard<std::mutex> lock(mutex_);
    auto it = overlay_.find(full_key);
    if (it != overlay_.end()) return it->second;
    // Staged-but-not-yet-durable writes, newest generation first: the
    // pipeline executes block N+1 against block N's staged state.
    for (auto gen = pending_.rbegin(); gen != pending_.rend(); ++gen) {
      auto hit = gen->values.find(full_key);
      if (hit != gen->values.end()) return hit->second;
    }
  }
  return kv_->Get(full_key);
}

std::vector<Result<Bytes>> StateDb::GetMany(
    const std::vector<std::pair<Address, Bytes>>& keys) const {
  std::vector<Result<Bytes>> out;
  out.reserve(keys.size());
  for (const auto& [contract, key] : keys) out.push_back(Get(contract, key));
  return out;
}

std::vector<Result<Bytes>> CommitStateDb::GetMany(
    const std::vector<std::pair<Address, Bytes>>& keys) const {
  std::vector<Result<Bytes>> out;
  out.reserve(keys.size());
  std::vector<size_t> unresolved;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    for (size_t i = 0; i < keys.size(); ++i) {
      std::string full_key = StateKey(keys[i].first, keys[i].second);
      auto it = overlay_.find(full_key);
      if (it != overlay_.end()) {
        out.push_back(it->second);
        continue;
      }
      bool staged = false;
      for (auto gen = pending_.rbegin(); gen != pending_.rend(); ++gen) {
        auto hit = gen->values.find(full_key);
        if (hit != gen->values.end()) {
          out.push_back(hit->second);
          staged = true;
          break;
        }
      }
      if (staged) continue;
      out.push_back(Status::NotFound("state: unresolved"));  // placeholder
      unresolved.push_back(i);
    }
  }
  if (!unresolved.empty()) {
    // One pinned snapshot answers every store-level miss. Taking it after
    // the lock above is safe: FinalizeCommit drops a pending generation
    // only after its batch landed in the store, so the snapshot can never
    // be older than the staged state just consulted.
    std::unique_ptr<storage::KvSnapshot> snapshot = kv_->GetSnapshot();
    for (size_t i : unresolved) {
      out[i] = snapshot->Get(StateKey(keys[i].first, keys[i].second));
    }
  }
  return out;
}

void CommitStateDb::Put(const Address& contract, ByteView key, Bytes value) {
  std::string full_key = StateKey(contract, key);
  std::lock_guard<std::mutex> lock(mutex_);
  overlay_[full_key] = std::move(value);
}

size_t CommitStateDb::PendingWrites() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return overlay_.size();
}

void CommitStateDb::StageCommit(storage::WriteBatch* batch,
                                crypto::Hash256* new_root) {
  std::lock_guard<std::mutex> lock(mutex_);
  PendingGeneration gen;
  if (overlay_.empty()) {
    // An empty generation keeps the StageCommit/FinalizeCommit pairing
    // 1:1, which is what lets the commit stage finalize blindly in FIFO
    // order.
    gen.root = staged_root_;
    *new_root = staged_root_;
    pending_.push_back(std::move(gen));
    return;
  }
  crypto::Sha256 root_ctx;
  root_ctx.Update(crypto::HashView(staged_root_));
  for (auto& [key, value] : overlay_) {
    root_ctx.Update(AsByteView(key));
    root_ctx.Update(value);
    batch->Put(key, value);  // copy: the pending generation keeps serving reads
  }
  gen.values = std::move(overlay_);
  overlay_.clear();
  gen.root = root_ctx.Finish();
  staged_root_ = gen.root;
  *new_root = gen.root;
  pending_.push_back(std::move(gen));
}

void CommitStateDb::FinalizeCommit(const crypto::Hash256& new_root) {
  std::lock_guard<std::mutex> lock(mutex_);
  if (!pending_.empty()) pending_.pop_front();
  state_root_ = new_root;
  if (pending_.empty()) staged_root_ = state_root_;
}

void CommitStateDb::RollbackPending() {
  std::lock_guard<std::mutex> lock(mutex_);
  pending_.clear();
  overlay_.clear();
  staged_root_ = state_root_;
}

size_t CommitStateDb::PendingGenerations() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return pending_.size();
}

Status CommitStateDb::Commit() {
  storage::WriteBatch batch;
  crypto::Hash256 new_root;
  StageCommit(&batch, &new_root);
  if (batch.ops().empty()) {
    FinalizeCommit(new_root);  // pop the empty generation
    return Status::OK();
  }
  Status written = kv_->Write(batch);
  if (!written.ok()) {
    // Drop the just-staged generation so the caller re-executes against
    // the durable state.
    RollbackPending();
    return written;
  }
  FinalizeCommit(new_root);
  return Status::OK();
}

void CommitStateDb::Discard() {
  std::lock_guard<std::mutex> lock(mutex_);
  overlay_.clear();
}

crypto::Hash256 CommitStateDb::StateRoot() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return state_root_;
}

void CommitStateDb::RestoreRoot(const crypto::Hash256& root) {
  std::lock_guard<std::mutex> lock(mutex_);
  overlay_.clear();
  pending_.clear();
  state_root_ = root;
  staged_root_ = root;
}

// ---------------------------------------------------------------------------
// OverlayStateDb
// ---------------------------------------------------------------------------

Result<Bytes> OverlayStateDb::Get(const Address& contract, ByteView key) const {
  auto it = writes_.find(StateKey(contract, key));
  if (it != writes_.end()) return it->second.second;
  return parent_->Get(contract, key);
}

void OverlayStateDb::Put(const Address& contract, ByteView key, Bytes value) {
  writes_[StateKey(contract, key)] = {{contract, ToBytes(key)}, std::move(value)};
}

Status OverlayStateDb::Commit() {
  for (auto& [full_key, entry] : writes_) {
    parent_->Put(entry.first.first, entry.first.second, std::move(entry.second));
  }
  writes_.clear();
  return Status::OK();
}

}  // namespace confide::chain
