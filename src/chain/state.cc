#include "chain/state.h"

namespace confide::chain {

std::string StateDb::StateKey(const Address& contract, ByteView key) {
  return AddressToString(contract) + "/" + ToString(key);
}

// ---------------------------------------------------------------------------
// CommitStateDb
// ---------------------------------------------------------------------------

Result<Bytes> CommitStateDb::Get(const Address& contract, ByteView key) const {
  std::string full_key = StateKey(contract, key);
  {
    std::lock_guard<std::mutex> lock(mutex_);
    auto it = overlay_.find(full_key);
    if (it != overlay_.end()) return it->second;
  }
  return kv_->Get(full_key);
}

void CommitStateDb::Put(const Address& contract, ByteView key, Bytes value) {
  std::string full_key = StateKey(contract, key);
  std::lock_guard<std::mutex> lock(mutex_);
  overlay_[full_key] = std::move(value);
}

size_t CommitStateDb::PendingWrites() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return overlay_.size();
}

void CommitStateDb::StageCommit(storage::WriteBatch* batch,
                                crypto::Hash256* new_root) {
  std::lock_guard<std::mutex> lock(mutex_);
  if (overlay_.empty()) {
    *new_root = state_root_;
    return;
  }
  crypto::Sha256 root_ctx;
  root_ctx.Update(crypto::HashView(state_root_));
  for (auto& [key, value] : overlay_) {
    root_ctx.Update(AsByteView(key));
    root_ctx.Update(value);
    batch->Put(key, std::move(value));
  }
  *new_root = root_ctx.Finish();
}

void CommitStateDb::FinalizeCommit(const crypto::Hash256& new_root) {
  std::lock_guard<std::mutex> lock(mutex_);
  overlay_.clear();
  state_root_ = new_root;
}

Status CommitStateDb::Commit() {
  storage::WriteBatch batch;
  crypto::Hash256 new_root;
  StageCommit(&batch, &new_root);
  if (batch.ops().empty()) return Status::OK();
  Status written = kv_->Write(batch);
  if (!written.ok()) {
    // The stage consumed the overlay values; drop the husk so the caller
    // re-executes against a clean buffer.
    Discard();
    return written;
  }
  FinalizeCommit(new_root);
  return Status::OK();
}

void CommitStateDb::Discard() {
  std::lock_guard<std::mutex> lock(mutex_);
  overlay_.clear();
}

crypto::Hash256 CommitStateDb::StateRoot() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return state_root_;
}

// ---------------------------------------------------------------------------
// OverlayStateDb
// ---------------------------------------------------------------------------

Result<Bytes> OverlayStateDb::Get(const Address& contract, ByteView key) const {
  auto it = writes_.find(StateKey(contract, key));
  if (it != writes_.end()) return it->second.second;
  return parent_->Get(contract, key);
}

void OverlayStateDb::Put(const Address& contract, ByteView key, Bytes value) {
  writes_[StateKey(contract, key)] = {{contract, ToBytes(key)}, std::move(value)};
}

Status OverlayStateDb::Commit() {
  for (auto& [full_key, entry] : writes_) {
    parent_->Put(entry.first.first, entry.first.second, std::move(entry.second));
  }
  writes_.clear();
  return Status::OK();
}

}  // namespace confide::chain
