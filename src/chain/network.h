/// \file network.h
/// \brief Simulated consortium network with zones.
///
/// Substitution for the paper's deployments: nodes in one VPC
/// (intra-zone RTT ~0.2 ms) or split across Shanghai/Beijing over public
/// network (inter-zone RTT ~30 ms, lower bandwidth) — the Figure 11
/// two-zone configuration.

#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/status.h"

namespace confide::chain {

/// \brief Link parameters between two zones.
struct LinkModel {
  uint64_t latency_ns = 200'000;          ///< one-way propagation
  uint64_t bandwidth_bytes_per_sec = 1'250'000'000;  ///< 10 Gb/s default
};

/// \brief Node placement + pairwise link model.
class NetworkSim {
 public:
  /// \brief Declares a zone; returns its id.
  uint32_t AddZone(std::string name);

  /// \brief Places a node in `zone`; returns the node id.
  uint32_t AddNode(uint32_t zone);

  /// \brief Sets the link model between two zones (symmetric).
  void SetLink(uint32_t zone_a, uint32_t zone_b, LinkModel link);

  size_t NodeCount() const { return node_zone_.size(); }
  uint32_t ZoneOf(uint32_t node) const { return node_zone_[node]; }

  /// \brief Modelled one-way delivery time for `bytes` from a to b.
  uint64_t TransferNs(uint32_t from_node, uint32_t to_node, uint64_t bytes) const;

  /// \brief Propagation-only latency (no payload).
  uint64_t LatencyNs(uint32_t from_node, uint32_t to_node) const;

  /// \brief Wire-serialization time for `bytes` on the a→b link (the
  /// sender NIC is busy for this long per message).
  uint64_t SerializationNs(uint32_t from_node, uint32_t to_node, uint64_t bytes) const;

  /// \brief Convenience: a single-zone network of n nodes with
  /// intra-datacenter links.
  static NetworkSim SingleZone(size_t n);

  /// \brief Convenience: the paper's two-city setup — nodes split 1:2
  /// between zones connected by a high-latency public link.
  static NetworkSim TwoZone(size_t n, uint64_t inter_latency_ns = 30'000'000);

 private:
  std::vector<std::string> zones_;
  std::vector<uint32_t> node_zone_;
  std::vector<std::vector<LinkModel>> links_;  // [zone][zone]
};

}  // namespace confide::chain
