/// \file network.h
/// \brief Simulated consortium network with zones.
///
/// Substitution for the paper's deployments: nodes in one VPC
/// (intra-zone RTT ~0.2 ms) or split across Shanghai/Beijing over public
/// network (inter-zone RTT ~30 ms, lower bandwidth) — the Figure 11
/// two-zone configuration. Links additionally carry a loss model (drop
/// rate, delivery jitter) and nodes can be split into partitions, which
/// the fault-aware PBFT simulator uses to exercise view changes.

#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/status.h"

namespace confide::chain {

/// \brief Link parameters between two zones.
struct LinkModel {
  uint64_t latency_ns = 200'000;          ///< one-way propagation
  uint64_t bandwidth_bytes_per_sec = 1'250'000'000;  ///< 10 Gb/s default
  double drop_rate = 0.0;                 ///< per-message loss chance [0,1]
  uint64_t jitter_ns = 0;                 ///< max extra delivery delay
};

/// \brief Node placement + pairwise link model.
///
/// All node-id accessors are bounds-checked: an out-of-range id returns
/// the documented sentinel (kInvalidZone / zero cost / unreachable)
/// instead of indexing out of bounds.
class NetworkSim {
 public:
  /// \brief ZoneOf() result for an out-of-range node id.
  static constexpr uint32_t kInvalidZone = UINT32_MAX;

  /// \brief Declares a zone; returns its id.
  uint32_t AddZone(std::string name);

  /// \brief Places a node in `zone`; returns the node id.
  uint32_t AddNode(uint32_t zone);

  /// \brief Sets the link model between two zones (symmetric). Unknown
  /// zone ids are rejected.
  Status SetLink(uint32_t zone_a, uint32_t zone_b, LinkModel link);

  /// \brief Assigns `node` to a partition group. Nodes in different
  /// groups cannot exchange messages (network split). All nodes start in
  /// group 0.
  Status SetPartition(uint32_t node, uint32_t group);

  /// \brief Merges all partition groups back (heals the split).
  void HealPartitions();

  /// \brief True when a message from `from_node` can reach `to_node`
  /// (same partition group, both ids valid).
  bool Reachable(uint32_t from_node, uint32_t to_node) const;

  size_t NodeCount() const { return node_zone_.size(); }

  /// \brief Zone of `node`, or kInvalidZone for an out-of-range id.
  uint32_t ZoneOf(uint32_t node) const {
    return node < node_zone_.size() ? node_zone_[node] : kInvalidZone;
  }

  /// \brief Modelled one-way delivery time for `bytes` from a to b.
  /// Out-of-range ids cost 0 (and are unreachable — see Reachable()).
  uint64_t TransferNs(uint32_t from_node, uint32_t to_node, uint64_t bytes) const;

  /// \brief Propagation-only latency (no payload).
  uint64_t LatencyNs(uint32_t from_node, uint32_t to_node) const;

  /// \brief Wire-serialization time for `bytes` on the a→b link (the
  /// sender NIC is busy for this long per message).
  uint64_t SerializationNs(uint32_t from_node, uint32_t to_node, uint64_t bytes) const;

  /// \brief Per-message loss probability on the a→b link.
  double DropRate(uint32_t from_node, uint32_t to_node) const;

  /// \brief Max extra delivery delay on the a→b link (uniform draw).
  uint64_t JitterNs(uint32_t from_node, uint32_t to_node) const;

  /// \brief Convenience: a single-zone network of n nodes with
  /// intra-datacenter links.
  static NetworkSim SingleZone(size_t n);

  /// \brief Convenience: the paper's two-city setup — nodes split 1:2
  /// between zones connected by a high-latency public link.
  static NetworkSim TwoZone(size_t n, uint64_t inter_latency_ns = 30'000'000);

 private:
  /// \brief Link between two nodes, or nullptr when either id is
  /// out of range (the clean-error path for unchecked callers).
  const LinkModel* LinkBetween(uint32_t from_node, uint32_t to_node) const;

  std::vector<std::string> zones_;
  std::vector<uint32_t> node_zone_;
  std::vector<uint32_t> node_partition_;
  std::vector<std::vector<LinkModel>> links_;  // [zone][zone]
};

}  // namespace confide::chain
