#include "chain/sync.h"

#include <algorithm>
#include <utility>

#include "common/fault.h"
#include "common/metrics.h"

namespace confide::chain {

namespace {

constexpr const char* kFaultProviderDead = "fault.chain.sync.provider_dead";
constexpr const char* kFaultChunkDrop = "fault.chain.sync.chunk_drop";
constexpr const char* kFaultChunkCorrupt = "fault.chain.sync.chunk_corrupt";
constexpr const char* kFaultForgedCert = "fault.chain.sync.forged_certificate";
constexpr const char* kFaultStaleCert = "fault.chain.sync.stale_certificate";
constexpr const char* kFaultClientCrash = "fault.chain.sync.crash";
/// A colluding-quorum fork: the provider serves a checkpoint whose state
/// root was tampered *and re-certified with real validator keys*, so the
/// certificate verifies — only the client's witnessed-roots log can catch
/// the conflict with the checkpoint it saw before.
constexpr const char* kFaultEquivocatingCert =
    "fault.chain.sync.equivocating_certificate";

struct SyncMetrics {
  metrics::Counter* runs = metrics::GetCounter("chain.sync.runs.count");
  metrics::Counter* success = metrics::GetCounter("chain.sync.success.count");
  metrics::Counter* failure = metrics::GetCounter("chain.sync.failure.count");
  metrics::Counter* chunks_fetched =
      metrics::GetCounter("chain.sync.chunks.fetched");
  metrics::Counter* chunks_verified =
      metrics::GetCounter("chain.sync.chunks.verified");
  metrics::Counter* chunks_rejected =
      metrics::GetCounter("chain.sync.chunks.rejected");
  metrics::Counter* blocks_replayed =
      metrics::GetCounter("chain.sync.blocks.replayed");
  metrics::Counter* bytes = metrics::GetCounter("chain.sync.bytes");
  metrics::Counter* failovers =
      metrics::GetCounter("chain.sync.provider_failover.count");
  metrics::Counter* certs_rejected =
      metrics::GetCounter("chain.sync.certificate.rejected");
  metrics::Counter* fork_offers_rejected =
      metrics::GetCounter("chain.fork.rejected_offer.count");
  metrics::Histogram* latency = metrics::GetHistogram("chain.sync.latency_ns");

  static const SyncMetrics& Get() {
    static const SyncMetrics instruments;
    return instruments;
  }
};

}  // namespace

// ---------------------------------------------------------------------------
// SyncProvider
// ---------------------------------------------------------------------------

SyncProvider::SyncProvider(std::string name, Node* node, NetworkSim* net,
                           uint32_t node_id)
    : name_(std::move(name)), node_(node), net_(net), node_id_(node_id) {}

Status SyncProvider::CheckReachable(uint32_t requester) const {
  if (dead_.load(std::memory_order_relaxed)) {
    return Status::Unavailable("sync: provider " + name_ + " is dead");
  }
  if (fault::FaultInjector::Global().ShouldFail(kFaultProviderDead)) {
    // Permanent death mid-stream: this and every later request fails, so
    // the client has to fail over to another provider.
    dead_.store(true, std::memory_order_relaxed);
    return Status::Unavailable("sync: provider " + name_ +
                               " died (injected)");
  }
  if (net_ != nullptr && !net_->Reachable(requester, node_id_)) {
    return Status::Unavailable("sync: provider " + name_ +
                               " unreachable (partitioned)");
  }
  return Status::OK();
}

void SyncProvider::ChargeTransfer(uint32_t requester, SimClock* clock,
                                  uint64_t bytes) const {
  if (net_ == nullptr || clock == nullptr) return;
  clock->AdvanceNs(net_->TransferNs(node_id_, requester, bytes));
}

Result<std::pair<CheckpointManifest, CheckpointCertificate>>
SyncProvider::LatestCheckpoint(uint32_t requester, SimClock* clock) const {
  CONFIDE_RETURN_NOT_OK(CheckReachable(requester));
  CheckpointManager* manager = node_->checkpoints();
  if (manager == nullptr || manager->LatestHeight() == 0) {
    return Status::NotFound("sync: provider " + name_ + " has no checkpoint");
  }
  uint64_t height = manager->LatestHeight();
  if (fault::FaultInjector::Global().ShouldFail(kFaultStaleCert)) {
    // A stale provider advertises its oldest retained checkpoint as the
    // latest one; the client must notice it does not advance its chain.
    std::vector<uint64_t> retained = manager->RetainedHeights();
    if (!retained.empty()) height = retained.front();
  }
  CONFIDE_ASSIGN_OR_RETURN(CheckpointManifest manifest,
                           manager->ManifestAt(height));
  CONFIDE_ASSIGN_OR_RETURN(CheckpointCertificate certificate,
                           manager->CertificateAt(height));
  if (fault::FaultInjector::Global().ShouldFail(kFaultForgedCert)) {
    // Forge the certificate: flip one bit of the first vote's signature
    // (or of the claimed digest when no votes survived serialization).
    if (!certificate.votes.empty()) {
      certificate.votes.front().second[0] ^= 0x01;
    } else {
      certificate.manifest_digest[0] ^= 0x01;
    }
  }
  if (fault::FaultInjector::Global().ShouldFail(kFaultEquivocatingCert)) {
    // Equivocation: serve a *different* state root at the same height,
    // re-certified with the real validator keys (a colluding quorum).
    // Certificate verification cannot reject this; only the client's
    // witnessed-roots log exposes the conflict.
    manifest.state_root[0] ^= 0x01;
    if (const ValidatorSet* vs = manager->validators(); vs != nullptr) {
      auto recertified = vs->Certify(manifest);
      if (recertified.ok()) certificate = std::move(*recertified);
    }
  }
  ChargeTransfer(requester, clock,
                 manifest.Serialize().size() + certificate.Serialize().size());
  return std::make_pair(std::move(manifest), std::move(certificate));
}

Result<Bytes> SyncProvider::FetchChunk(uint32_t requester, SimClock* clock,
                                       uint64_t height, size_t index) const {
  CONFIDE_RETURN_NOT_OK(CheckReachable(requester));
  CheckpointManager* manager = node_->checkpoints();
  if (manager == nullptr) {
    return Status::NotFound("sync: provider " + name_ + " has no checkpoint");
  }
  if (fault::FaultInjector::Global().ShouldFail(kFaultChunkDrop)) {
    return Status::Unavailable("sync: chunk dropped in transit (injected)");
  }
  // Serve the whole transfer from one pinned view per height: every
  // chunk read runs lock-free against the snapshot instead of taking the
  // provider's store lock while it keeps committing blocks.
  std::shared_ptr<storage::KvSnapshot> view;
  {
    std::lock_guard<std::mutex> lock(serve_mutex_);
    if (serving_view_ == nullptr || serving_height_ != height) {
      serving_view_ = manager->PinView();
      serving_height_ = height;
    }
    view = serving_view_;
  }
  CONFIDE_ASSIGN_OR_RETURN(Bytes payload,
                           CheckpointManager::ChunkAt(*view, height, index));
  if (!payload.empty() &&
      fault::FaultInjector::Global().ShouldFail(kFaultChunkCorrupt)) {
    payload[payload.size() / 2] ^= 0x01;  // bit flip in transit
  }
  ChargeTransfer(requester, clock, payload.size());
  return payload;
}

Result<Bytes> SyncProvider::FetchBlock(uint32_t requester, SimClock* clock,
                                       uint64_t height) const {
  CONFIDE_RETURN_NOT_OK(CheckReachable(requester));
  CONFIDE_ASSIGN_OR_RETURN(Bytes wire, node_->blocks()->GetByHeight(height));
  ChargeTransfer(requester, clock, wire.size());
  return wire;
}

Result<uint64_t> SyncProvider::TipHeight(uint32_t requester) const {
  CONFIDE_RETURN_NOT_OK(CheckReachable(requester));
  return node_->Height();
}

// ---------------------------------------------------------------------------
// StateSyncClient
// ---------------------------------------------------------------------------

StateSyncClient::StateSyncClient(Node* node, const ValidatorSet* validators,
                                 SyncOptions options)
    : node_(node), validators_(validators), options_(std::move(options)) {}

void StateSyncClient::AddProvider(SyncProvider* provider) {
  providers_.push_back(provider);
}

common::RetryOptions StateSyncClient::RotationRetryOptions() const {
  // Rotation happens *after* a failed attempt, so visiting every
  // registered provider takes providers_.size() attempts — with N dead
  // providers ahead of the one live one, max_attempts == N stops exactly
  // one rotation short of it. Guarantee at least one attempt per provider.
  common::RetryOptions effective = options_.retry;
  effective.max_attempts = std::max<uint32_t>(
      effective.max_attempts, static_cast<uint32_t>(providers_.size()));
  return effective;
}

void StateSyncClient::RotateProvider(SyncStats* stats) {
  if (providers_.size() < 2) return;
  current_provider_ = (current_provider_ + 1) % providers_.size();
  ++stats->provider_failovers;
  SyncMetrics::Get().failovers->Increment();
}

void StateSyncClient::AcknowledgeRecoveredFaults() {
  fault::FaultInjector& injector = fault::FaultInjector::Global();
  for (const char* site :
       {kFaultProviderDead, kFaultChunkDrop, kFaultChunkCorrupt,
        kFaultForgedCert, kFaultStaleCert, kFaultClientCrash,
        kFaultEquivocatingCert}) {
    uint64_t fired = injector.FiredCount(site);
    uint64_t& acked = acked_fires_[site];
    if (fired > acked) {
      fault::NoteRecovered(site);
      acked = fired;
    }
  }
}

Result<SyncStats> StateSyncClient::SyncToTip() {
  const SyncMetrics& sm = SyncMetrics::Get();
  sm.runs->Increment();
  metrics::ScopedLatencyTimer timer(sm.latency);

  SyncStats stats;
  auto fail = [&sm](Status status) -> Result<SyncStats> {
    sm.failure->Increment();
    return status;
  };
  if (providers_.empty()) {
    return fail(Status::InvalidArgument("sync: no providers registered"));
  }
  if (validators_ == nullptr) {
    return fail(Status::InvalidArgument("sync: no validator set to verify "
                                        "checkpoint certificates against"));
  }

  // Confidential keys first: block replay executes confidential
  // transactions inside the CS enclave, and the synced sealed state must
  // be readable before this node serves reads.
  if (options_.reprovision) {
    Status provisioned = options_.reprovision();
    if (!provisioned.ok()) return fail(std::move(provisioned));
  }

  auto choice = DiscoverCheckpoint(&stats);
  if (!choice.ok()) return fail(choice.status());
  if (choice->found) {
    Status transferred = TransferSnapshot(*choice, &stats);
    if (!transferred.ok()) return fail(std::move(transferred));
  }

  Status replayed = ReplayBlocks(&stats);
  if (!replayed.ok()) return fail(std::move(replayed));

  sm.success->Increment();
  AcknowledgeRecoveredFaults();
  return stats;
}

Result<StateSyncClient::CheckpointChoice> StateSyncClient::DiscoverCheckpoint(
    SyncStats* stats) {
  const SyncMetrics& sm = SyncMetrics::Get();
  CheckpointChoice best;
  const uint64_t own_height = node_->Height();
  for (size_t i = 0; i < providers_.size(); ++i) {
    auto checkpoint = providers_[i]->LatestCheckpoint(options_.client_node_id,
                                                      options_.clock);
    if (!checkpoint.ok()) continue;  // no checkpoint / unreachable: skip
    CheckpointManifest& manifest = checkpoint->first;
    const CheckpointCertificate& certificate = checkpoint->second;
    // A forged or under-quorum certificate means this provider cannot be
    // trusted for snapshots; reject it and re-select among the others.
    Status verdict = validators_->Verify(manifest, certificate);
    if (!verdict.ok()) {
      ++stats->certificates_rejected;
      sm.certs_rejected->Increment();
      continue;
    }
    // Stale checkpoint: it would not advance this node at all. Blocks can
    // still be replayed from live providers, so just reject the snapshot.
    if (manifest.height <= own_height) {
      ++stats->certificates_rejected;
      sm.certs_rejected->Increment();
      continue;
    }
    // Cross-check the certified offer against every checkpoint this node
    // has witnessed: a *valid* certificate over a different root at the
    // same height is consortium equivocation (fork) — reject the provider
    // and record the evidence, never install its snapshot.
    if (node_->checkpoints() != nullptr) {
      Status witnessed = node_->checkpoints()->WitnessCheckpoint(
          manifest.height, manifest.block_hash, manifest.state_root);
      if (!witnessed.ok()) {
        if (witnessed.code() != StatusCode::kPermissionDenied) {
          return witnessed;
        }
        ++stats->forks_detected;
        ++stats->certificates_rejected;
        sm.fork_offers_rejected->Increment();
        sm.certs_rejected->Increment();
        continue;
      }
    }
    if (!best.found || manifest.height > best.manifest.height) {
      best.manifest = std::move(manifest);
      best.certificate = certificate;
      best.provider_index = i;
      best.found = true;
    }
  }
  return best;
}

Result<Bytes> StateSyncClient::FetchVerifiedChunk(
    const CheckpointManifest& manifest, const crypto::MerkleTree& chunk_tree,
    size_t index, SyncStats* stats) {
  const SyncMetrics& sm = SyncMetrics::Get();
  common::RetryPolicy retry(RotationRetryOptions(), options_.clock);
  Bytes verified;
  Status status = retry.Run("sync chunk fetch", [&]() -> Status {
    SyncProvider* provider = providers_[current_provider_];
    auto fetched = provider->FetchChunk(options_.client_node_id,
                                        options_.clock, manifest.height, index);
    ++stats->chunks_fetched;
    sm.chunks_fetched->Increment();
    if (!fetched.ok()) {
      // Dropped in transit, provider dead, partitioned, or the provider
      // pruned this checkpoint: try the next provider (same manifest —
      // correct replicas serve byte-identical chunk sets).
      RotateProvider(stats);
      return fetched.status();
    }
    // Verify the payload hash AND its Merkle path to the certificate-signed
    // chunks_root before a single byte is trusted.
    crypto::Hash256 digest = crypto::Sha256::Digest(*fetched);
    auto proof = chunk_tree.Prove(index);
    bool merkle_ok =
        proof.ok() &&
        crypto::MerkleTree::Verify(manifest.chunks_root,
                                   ByteView(digest.data(), digest.size()),
                                   *proof);
    if (digest != manifest.chunk_hashes[index] || !merkle_ok) {
      ++stats->chunks_rejected;
      sm.chunks_rejected->Increment();
      // Re-fetch (same provider first — a transit corruption is transient).
      return Status::Corruption("sync: chunk " + std::to_string(index) +
                                " failed Merkle verification");
    }
    stats->bytes_transferred += fetched->size();
    sm.bytes->Increment(fetched->size());
    verified = std::move(*fetched);
    return Status::OK();
  });
  CONFIDE_RETURN_NOT_OK(status);
  return verified;
}

Status StateSyncClient::TransferSnapshot(const CheckpointChoice& choice,
                                         SyncStats* stats) {
  const SyncMetrics& sm = SyncMetrics::Get();
  const CheckpointManifest& manifest = choice.manifest;

  // The certificate signs the manifest, and the manifest's chunks_root
  // must commit to the chunk hash list chunks are verified against.
  std::vector<Bytes> leaves;
  leaves.reserve(manifest.chunk_hashes.size());
  for (const crypto::Hash256& h : manifest.chunk_hashes) {
    leaves.push_back(ToBytes(crypto::HashView(h)));
  }
  crypto::MerkleTree chunk_tree(leaves);
  if (chunk_tree.Root() != manifest.chunks_root) {
    return Status::Corruption(
        "sync: manifest chunk hashes do not match the signed chunks root");
  }

  current_provider_ = choice.provider_index;

  // Buffer every verified chunk into ONE batch: the local store is not
  // touched until the complete snapshot verified, so a crash anywhere
  // mid-transfer leaves the node exactly where it started.
  storage::WriteBatch install;
  std::vector<Bytes> raw_chunks;
  raw_chunks.reserve(manifest.chunk_count());
  uint64_t entries = 0;
  for (size_t index = 0; index < manifest.chunk_count(); ++index) {
    CONFIDE_ASSIGN_OR_RETURN(
        Bytes payload, FetchVerifiedChunk(manifest, chunk_tree, index, stats));
    CONFIDE_ASSIGN_OR_RETURN(auto parsed, CheckpointManager::ParseChunk(payload));
    for (auto& [key, value] : parsed) {
      install.Put(key, std::move(value));
      ++entries;
    }
    raw_chunks.push_back(std::move(payload));
    ++stats->chunks_verified;
    sm.chunks_verified->Increment();
    // Injected client crash at the chunk boundary: abandon the sync with
    // nothing installed; the caller restarts it from scratch.
    if (fault::FaultInjector::Global().ShouldFail(kFaultClientCrash)) {
      return Status::Unavailable(
          "sync: injected client crash at chunk boundary " +
          std::to_string(index));
    }
  }
  if (entries != manifest.total_entries) {
    return Status::Corruption("sync: snapshot entry count mismatch");
  }

  CONFIDE_RETURN_NOT_OK(node_->state()->backing()->Write(install));
  CONFIDE_RETURN_NOT_OK(node_->ResyncFromStore());

  // The adopted chain must land exactly on the certified checkpoint.
  if (node_->Height() != manifest.height) {
    return Status::Corruption("sync: installed snapshot height mismatch");
  }
  if (node_->TipHash() != manifest.block_hash) {
    return Status::Corruption("sync: installed snapshot tip hash mismatch");
  }
  if (node_->state()->StateRoot() != manifest.state_root) {
    return Status::Corruption("sync: installed snapshot state root mismatch");
  }
  stats->checkpoint_height = manifest.height;
  stats->snapshot_installed = true;

  // Adopt the verified checkpoint into our own manager: a freshly synced
  // replica immediately becomes a provider for the same stable
  // checkpoint instead of waiting for its next interval boundary.
  if (node_->checkpoints() != nullptr) {
    CONFIDE_RETURN_NOT_OK(
        node_->checkpoints()->Adopt(manifest, choice.certificate, raw_chunks));
  }
  return Status::OK();
}

Status StateSyncClient::ReplayBlocks(SyncStats* stats) {
  const SyncMetrics& sm = SyncMetrics::Get();
  uint64_t tip = node_->Height();
  for (SyncProvider* provider : providers_) {
    auto height = provider->TipHeight(options_.client_node_id);
    if (height.ok()) tip = std::max(tip, *height);
  }

  while (node_->Height() < tip) {
    const uint64_t height = node_->Height();
    common::RetryPolicy retry(RotationRetryOptions(), options_.clock);
    Bytes wire;
    Status fetched = retry.Run("sync block fetch", [&]() -> Status {
      auto block = providers_[current_provider_]->FetchBlock(
          options_.client_node_id, options_.clock, height);
      if (!block.ok()) {
        RotateProvider(stats);
        return block.status();
      }
      wire = std::move(*block);
      return Status::OK();
    });
    CONFIDE_RETURN_NOT_OK(fetched);

    CONFIDE_ASSIGN_OR_RETURN(Block block, Block::Deserialize(wire));
    const crypto::Hash256 expected = block.header.Hash();
    auto receipts = node_->ApplyBlock(block);
    CONFIDE_RETURN_NOT_OK(receipts.status());
    // ApplyBlock re-executed the block and recomputed every commitment;
    // any divergence from the provider's header is an execution split.
    if (node_->TipHash() != expected) {
      return Status::Corruption("sync: replay diverged from provider at "
                                "height " +
                                std::to_string(height));
    }
    stats->bytes_transferred += wire.size();
    sm.bytes->Increment(wire.size());
    ++stats->blocks_replayed;
    sm.blocks_replayed->Increment();
  }
  return Status::OK();
}

}  // namespace confide::chain
