/// \file engine.h
/// \brief Execution-engine interface and contract registry.
///
/// The chain routes transactions by TYPE to one of two engines (paper
/// Figure 2): Public-Engine for plain transactions, Confidential-Engine
/// (the CONFIDE plugin, src/confide) for TYPE=1. The chain itself knows
/// nothing about enclaves — this seam is what makes CONFIDE pluggable.

#pragma once

#include <memory>
#include <string>
#include <vector>

#include "chain/state.h"
#include "chain/types.h"

namespace confide::chain {

/// \brief Which VM executes a contract's code.
enum class VmKind : uint8_t { kCvm = 0, kEvm = 1 };

/// \brief On-chain contract code access. Code lives in contract state
/// under reserved keys so it is replicated and (for confidential
/// contracts) encrypted like any other state (D-Protocol covers "contract
/// states and contract code", §3.2.4).
class ContractRegistry {
 public:
  static constexpr const char* kCodeKey = "__code__";
  static constexpr const char* kVmKey = "__vm__";

  /// \brief Writes contract code to state (plain form — the confidential
  /// engine wraps this with D-Protocol encryption).
  static Status Deploy(StateDb* state, const Address& contract, VmKind vm,
                       Bytes code);

  struct ContractInfo {
    VmKind vm;
    Bytes code;
  };
  static Result<ContractInfo> Load(StateDb* state, const Address& contract);
};

/// \brief Conflict keys of the contracts one execution actually touched,
/// including contracts reached through nested calls. The parallel executor
/// uses these to detect cross-group overlap that the envelope-level
/// ConflictKey (target contract only) cannot see.
struct TxTouchSet {
  std::vector<uint64_t> read_keys;
  std::vector<uint64_t> written_keys;
};

/// \brief A transaction execution engine.
class ExecutionEngine {
 public:
  virtual ~ExecutionEngine() = default;

  /// \brief Pre-verification (paper §5.2): signature checks that can run
  /// in parallel before ordering. Returns false for invalid transactions
  /// (which are discarded).
  virtual Result<bool> PreVerify(const Transaction& tx) = 0;

  /// \brief Executes against `state`. Must Discard() partial writes on
  /// failure; the caller commits per block. When `touch` is non-null the
  /// engine fills it with the conflict keys of every contract the
  /// execution read or wrote (nested calls included).
  virtual Result<Receipt> Execute(const Transaction& tx, StateDb* state,
                                  TxTouchSet* touch) = 0;

  /// \brief Convenience overload for callers that do not need touch sets.
  Result<Receipt> Execute(const Transaction& tx, StateDb* state) {
    return Execute(tx, state, nullptr);
  }

  /// \brief Conflict-group key for k-way parallel execution: transactions
  /// with equal keys are serialized, distinct keys may run concurrently.
  /// Returning 0 means "unknown — run in the serial group".
  virtual uint64_t ConflictKey(const Transaction& tx) = 0;
};

/// \brief The engine pair a node routes to.
struct EngineSet {
  ExecutionEngine* public_engine = nullptr;
  ExecutionEngine* confidential_engine = nullptr;

  ExecutionEngine* Route(const Transaction& tx) const {
    return tx.type == TxType::kConfidential ? confidential_engine : public_engine;
  }
};

}  // namespace confide::chain
