/// \file types.h
/// \brief Core chain data types: transactions, receipts, blocks.
///
/// Transactions carry TYPE=0 (public) or TYPE=1 (confidential, paper
/// Figure 3). A confidential transaction's body is a T-Protocol envelope;
/// its plain fields are only what routing needs. Serialization is RLP.

#pragma once

#include <array>
#include <string>
#include <string_view>
#include <vector>

#include "common/bytes.h"
#include "common/status.h"
#include "crypto/secp256k1.h"
#include "crypto/sha256.h"

namespace confide::chain {

/// \brief 20-byte account/contract address.
using Address = std::array<uint8_t, 20>;

inline std::string AddressToString(const Address& a) {
  return HexEncode(ByteView(a.data(), a.size()));
}

/// \brief Derives a contract address from a human-readable name
/// (consortium chains deploy named service contracts).
Address NamedAddress(std::string_view name);

/// \brief Transaction kind, carried in the clear for routing.
enum class TxType : uint8_t { kPublic = 0, kConfidential = 1 };

/// \brief A smart-contract transaction.
///
/// For kPublic every field is populated and `signature` covers
/// SigningHash(). For kConfidential only `type` and `envelope` are
/// meaningful on the wire; the remaining fields exist after the
/// Confidential-Engine decrypts the envelope into a raw transaction.
struct Transaction {
  TxType type = TxType::kPublic;
  crypto::PublicKey sender{};   ///< initiator's public key
  Address contract{};           ///< target contract
  std::string entry;            ///< method name
  Bytes input;                  ///< method arguments
  uint64_t nonce = 0;
  crypto::Signature signature{};
  Bytes envelope;               ///< kConfidential: Enc(pk,k_tx)|Enc(k_tx,raw)

  /// \brief Hash over the full wire form (transaction id).
  crypto::Hash256 Hash() const;

  /// \brief Digest the sender signs (excludes the signature itself).
  crypto::Hash256 SigningHash() const;

  Bytes Serialize() const;
  static Result<Transaction> Deserialize(ByteView wire);
};

/// \brief Zero-copy decoded transaction: every field is a ByteView slice
/// into the wire buffer, which must outlive the ref. This is the decode
/// form used on the enclave hot path, where the wire bytes (a decrypted
/// envelope body) are alive for the whole call and per-field copies are
/// pure overhead. Copy via ToOwned() (or an Arena) to keep fields past
/// the buffer's lifetime — see DESIGN.md §Zero-copy serialization.
struct TransactionRef {
  TxType type = TxType::kPublic;
  ByteView sender;      ///< 64 bytes (public tx)
  ByteView contract;    ///< 20 bytes (public tx)
  ByteView entry;       ///< method name (public tx)
  ByteView input;       ///< method arguments (public tx)
  uint64_t nonce = 0;
  ByteView signature;   ///< 64 bytes (public tx)
  ByteView envelope;    ///< confidential tx body

  /// \brief Parses `wire`, borrowing every field. Identical validation to
  /// Transaction::Deserialize; no allocation on success.
  static Result<TransactionRef> Decode(ByteView wire);

  /// \brief Materializes an owning Transaction (copies the fields).
  Transaction ToOwned() const;

  /// \brief Digest the sender signs (re-encodes the signing fields).
  crypto::Hash256 SigningHash() const;

  // Fixed-size copies for call sites needing typed arrays (public tx only;
  // Decode validated the field widths).
  crypto::PublicKey SenderKey() const;
  Address ContractAddress() const;
  crypto::Signature SignatureValue() const;
  std::string_view EntryString() const {
    return std::string_view(reinterpret_cast<const char*>(entry.data()),
                            entry.size());
  }
};

/// \brief Execution receipt. For confidential transactions the stored
/// form is encrypted under k_tx (T-Protocol, paper formula 2).
struct Receipt {
  crypto::Hash256 tx_hash{};
  bool success = false;
  std::string status_message;   ///< trap/status text when !success
  Bytes output;
  std::vector<Bytes> logs;
  uint64_t gas_used = 0;

  Bytes Serialize() const;
  static Result<Receipt> Deserialize(ByteView wire);
};

/// \brief Zero-copy decoded receipt. Scalar fields are materialized; byte
/// fields alias the wire buffer. Logs stay in wire form (`logs_payload`
/// holds the RLP payload of the validated logs list) and are iterated
/// with an RlpReader on demand — decoding a receipt does not allocate.
struct ReceiptRef {
  ByteView tx_hash;         ///< 32 bytes
  bool success = false;
  ByteView status_message;
  ByteView output;
  ByteView logs_payload;    ///< RLP payload of the logs list (validated)
  size_t log_count = 0;
  uint64_t gas_used = 0;

  static Result<ReceiptRef> Decode(ByteView wire);
  Receipt ToOwned() const;
};

/// \brief Block header with Merkle commitments.
struct BlockHeader {
  uint64_t height = 0;
  crypto::Hash256 parent_hash{};
  crypto::Hash256 tx_root{};
  crypto::Hash256 receipt_root{};
  crypto::Hash256 state_root{};
  uint64_t timestamp_ns = 0;

  crypto::Hash256 Hash() const;
  Bytes Serialize() const;
};

/// \brief A block: header plus full transactions.
struct Block {
  BlockHeader header;
  std::vector<Transaction> transactions;

  Bytes Serialize() const;
  static Result<Block> Deserialize(ByteView wire);
};

}  // namespace confide::chain
