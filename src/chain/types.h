/// \file types.h
/// \brief Core chain data types: transactions, receipts, blocks.
///
/// Transactions carry TYPE=0 (public) or TYPE=1 (confidential, paper
/// Figure 3). A confidential transaction's body is a T-Protocol envelope;
/// its plain fields are only what routing needs. Serialization is RLP.

#pragma once

#include <array>
#include <string>
#include <vector>

#include "common/bytes.h"
#include "common/status.h"
#include "crypto/secp256k1.h"
#include "crypto/sha256.h"

namespace confide::chain {

/// \brief 20-byte account/contract address.
using Address = std::array<uint8_t, 20>;

inline std::string AddressToString(const Address& a) {
  return HexEncode(ByteView(a.data(), a.size()));
}

/// \brief Derives a contract address from a human-readable name
/// (consortium chains deploy named service contracts).
Address NamedAddress(std::string_view name);

/// \brief Transaction kind, carried in the clear for routing.
enum class TxType : uint8_t { kPublic = 0, kConfidential = 1 };

/// \brief A smart-contract transaction.
///
/// For kPublic every field is populated and `signature` covers
/// SigningHash(). For kConfidential only `type` and `envelope` are
/// meaningful on the wire; the remaining fields exist after the
/// Confidential-Engine decrypts the envelope into a raw transaction.
struct Transaction {
  TxType type = TxType::kPublic;
  crypto::PublicKey sender{};   ///< initiator's public key
  Address contract{};           ///< target contract
  std::string entry;            ///< method name
  Bytes input;                  ///< method arguments
  uint64_t nonce = 0;
  crypto::Signature signature{};
  Bytes envelope;               ///< kConfidential: Enc(pk,k_tx)|Enc(k_tx,raw)

  /// \brief Hash over the full wire form (transaction id).
  crypto::Hash256 Hash() const;

  /// \brief Digest the sender signs (excludes the signature itself).
  crypto::Hash256 SigningHash() const;

  Bytes Serialize() const;
  static Result<Transaction> Deserialize(ByteView wire);
};

/// \brief Execution receipt. For confidential transactions the stored
/// form is encrypted under k_tx (T-Protocol, paper formula 2).
struct Receipt {
  crypto::Hash256 tx_hash{};
  bool success = false;
  std::string status_message;   ///< trap/status text when !success
  Bytes output;
  std::vector<Bytes> logs;
  uint64_t gas_used = 0;

  Bytes Serialize() const;
  static Result<Receipt> Deserialize(ByteView wire);
};

/// \brief Block header with Merkle commitments.
struct BlockHeader {
  uint64_t height = 0;
  crypto::Hash256 parent_hash{};
  crypto::Hash256 tx_root{};
  crypto::Hash256 receipt_root{};
  crypto::Hash256 state_root{};
  uint64_t timestamp_ns = 0;

  crypto::Hash256 Hash() const;
  Bytes Serialize() const;
};

/// \brief A block: header plus full transactions.
struct Block {
  BlockHeader header;
  std::vector<Transaction> transactions;

  Bytes Serialize() const;
  static Result<Block> Deserialize(ByteView wire);
};

}  // namespace confide::chain
