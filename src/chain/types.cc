#include "chain/types.h"

#include "serialize/rlp.h"

namespace confide::chain {

using serialize::RlpReader;
using serialize::RlpWriter;

Address NamedAddress(std::string_view name) {
  crypto::Hash256 h = crypto::Sha256::Digest(
      Concat(AsByteView("confide-contract:"), AsByteView(name)));
  Address addr;
  std::copy(h.begin(), h.begin() + addr.size(), addr.begin());
  return addr;
}

namespace {

template <size_t N>
void CopyInto(ByteView src, std::array<uint8_t, N>* dst) {
  std::copy(src.begin(), src.end(), dst->begin());
}

/// Writes the fields every signature covers; Serialize appends the
/// signature after these, SigningHash stops here.
void WritePublicSigningFields(RlpWriter* w, uint64_t type, ByteView sender,
                              ByteView contract, ByteView entry, ByteView input,
                              uint64_t nonce) {
  w->WriteU64(type);
  w->WriteBytes(sender);
  w->WriteBytes(contract);
  w->WriteBytes(entry);
  w->WriteBytes(input);
  w->WriteU64(nonce);
}

}  // namespace

Bytes Transaction::Serialize() const {
  RlpWriter w(64 + entry.size() + input.size() + envelope.size() + 64);
  size_t list = w.BeginList();
  if (type == TxType::kConfidential) {
    w.WriteU64(uint64_t(type));
    w.WriteBytes(envelope);
  } else {
    WritePublicSigningFields(&w, uint64_t(type),
                             ByteView(sender.data(), sender.size()),
                             ByteView(contract.data(), contract.size()),
                             AsByteView(entry), input, nonce);
    w.WriteBytes(ByteView(signature.data(), signature.size()));
  }
  w.EndList(list);
  return std::move(w).Take();
}

Result<TransactionRef> TransactionRef::Decode(ByteView wire) {
  CONFIDE_ASSIGN_OR_RETURN(RlpReader r, RlpReader::AtList(wire));
  TransactionRef tx;
  CONFIDE_ASSIGN_OR_RETURN(uint64_t type_num, r.NextU64());
  if (type_num > 1) return Status::Corruption("chain: unknown tx type");
  tx.type = TxType(type_num);
  if (tx.type == TxType::kConfidential) {
    CONFIDE_ASSIGN_OR_RETURN(tx.envelope, r.NextBytes());
    CONFIDE_RETURN_NOT_OK(r.ExpectEnd("chain: confidential tx"));
    return tx;
  }
  CONFIDE_ASSIGN_OR_RETURN(tx.sender, r.NextFixed(64, "sender"));
  CONFIDE_ASSIGN_OR_RETURN(tx.contract, r.NextFixed(20, "contract"));
  CONFIDE_ASSIGN_OR_RETURN(tx.entry, r.NextBytes());
  CONFIDE_ASSIGN_OR_RETURN(tx.input, r.NextBytes());
  CONFIDE_ASSIGN_OR_RETURN(tx.nonce, r.NextU64());
  CONFIDE_ASSIGN_OR_RETURN(tx.signature, r.NextFixed(64, "signature"));
  CONFIDE_RETURN_NOT_OK(r.ExpectEnd("chain: public tx"));
  return tx;
}

Transaction TransactionRef::ToOwned() const {
  Transaction tx;
  tx.type = type;
  if (type == TxType::kConfidential) {
    tx.envelope = ToBytes(envelope);
    return tx;
  }
  CopyInto(sender, &tx.sender);
  CopyInto(contract, &tx.contract);
  tx.entry = ToString(entry);
  tx.input = ToBytes(input);
  tx.nonce = nonce;
  CopyInto(signature, &tx.signature);
  return tx;
}

crypto::PublicKey TransactionRef::SenderKey() const {
  crypto::PublicKey key{};
  CopyInto(sender, &key);
  return key;
}

Address TransactionRef::ContractAddress() const {
  Address addr{};
  CopyInto(contract, &addr);
  return addr;
}

crypto::Signature TransactionRef::SignatureValue() const {
  crypto::Signature sig{};
  CopyInto(signature, &sig);
  return sig;
}

crypto::Hash256 TransactionRef::SigningHash() const {
  RlpWriter w(128 + entry.size() + input.size());
  size_t list = w.BeginList();
  WritePublicSigningFields(&w, uint64_t(type), sender, contract, entry, input,
                           nonce);
  w.EndList(list);
  return crypto::Sha256::Digest(w.buffer());
}

Result<Transaction> Transaction::Deserialize(ByteView wire) {
  CONFIDE_ASSIGN_OR_RETURN(TransactionRef ref, TransactionRef::Decode(wire));
  return ref.ToOwned();
}

crypto::Hash256 Transaction::Hash() const {
  return crypto::Sha256::Digest(Serialize());
}

crypto::Hash256 Transaction::SigningHash() const {
  RlpWriter w(128 + entry.size() + input.size());
  size_t list = w.BeginList();
  WritePublicSigningFields(&w, uint64_t(type),
                           ByteView(sender.data(), sender.size()),
                           ByteView(contract.data(), contract.size()),
                           AsByteView(entry), input, nonce);
  w.EndList(list);
  return crypto::Sha256::Digest(w.buffer());
}

Bytes Receipt::Serialize() const {
  RlpWriter w(64 + status_message.size() + output.size());
  size_t list = w.BeginList();
  w.WriteBytes(crypto::HashView(tx_hash));
  w.WriteU64(success ? 1 : 0);
  w.WriteString(status_message);
  w.WriteBytes(output);
  size_t log_list = w.BeginList();
  for (const Bytes& log : logs) w.WriteBytes(log);
  w.EndList(log_list);
  w.WriteU64(gas_used);
  w.EndList(list);
  return std::move(w).Take();
}

Result<ReceiptRef> ReceiptRef::Decode(ByteView wire) {
  CONFIDE_ASSIGN_OR_RETURN(RlpReader r, RlpReader::AtList(wire));
  ReceiptRef receipt;
  CONFIDE_ASSIGN_OR_RETURN(receipt.tx_hash, r.NextFixed(32, "tx hash"));
  CONFIDE_ASSIGN_OR_RETURN(uint64_t success, r.NextU64());
  receipt.success = success != 0;
  CONFIDE_ASSIGN_OR_RETURN(receipt.status_message, r.NextBytes());
  CONFIDE_ASSIGN_OR_RETURN(receipt.output, r.NextBytes());
  CONFIDE_ASSIGN_OR_RETURN(RlpReader logs, r.NextList());
  receipt.logs_payload = logs.payload();
  // Validate each log now so ToOwned / later iteration cannot fail.
  size_t count = 0;
  while (!logs.AtEnd()) {
    CONFIDE_ASSIGN_OR_RETURN(ByteView log, logs.NextBytes());
    (void)log;
    ++count;
  }
  receipt.log_count = count;
  CONFIDE_ASSIGN_OR_RETURN(receipt.gas_used, r.NextU64());
  CONFIDE_RETURN_NOT_OK(r.ExpectEnd("chain: receipt"));
  return receipt;
}

Receipt ReceiptRef::ToOwned() const {
  Receipt receipt;
  CopyInto(tx_hash, &receipt.tx_hash);
  receipt.success = success;
  receipt.status_message = ToString(status_message);
  receipt.output = ToBytes(output);
  receipt.logs.reserve(log_count);
  RlpReader logs = RlpReader::OverPayload(logs_payload);
  while (!logs.AtEnd()) {
    auto log = logs.NextBytes();
    if (!log.ok()) break;  // unreachable: Decode validated every log
    receipt.logs.push_back(ToBytes(log.value()));
  }
  receipt.gas_used = gas_used;
  return receipt;
}

Result<Receipt> Receipt::Deserialize(ByteView wire) {
  CONFIDE_ASSIGN_OR_RETURN(ReceiptRef ref, ReceiptRef::Decode(wire));
  return ref.ToOwned();
}

Bytes BlockHeader::Serialize() const {
  RlpWriter w(6 * 36);
  size_t list = w.BeginList();
  w.WriteU64(height);
  w.WriteBytes(crypto::HashView(parent_hash));
  w.WriteBytes(crypto::HashView(tx_root));
  w.WriteBytes(crypto::HashView(receipt_root));
  w.WriteBytes(crypto::HashView(state_root));
  w.WriteU64(timestamp_ns);
  w.EndList(list);
  return std::move(w).Take();
}

crypto::Hash256 BlockHeader::Hash() const {
  return crypto::Sha256::Digest(Serialize());
}

Bytes Block::Serialize() const {
  RlpWriter w;
  size_t list = w.BeginList();
  w.WriteBytes(header.Serialize());
  size_t tx_list = w.BeginList();
  for (const Transaction& tx : transactions) {
    w.WriteBytes(tx.Serialize());
  }
  w.EndList(tx_list);
  w.EndList(list);
  return std::move(w).Take();
}

Result<Block> Block::Deserialize(ByteView wire) {
  CONFIDE_ASSIGN_OR_RETURN(RlpReader r, RlpReader::AtList(wire));
  Block block;
  // Header: a byte-string item whose content is the header's RLP list.
  CONFIDE_ASSIGN_OR_RETURN(ByteView header_wire, r.NextBytes());
  CONFIDE_ASSIGN_OR_RETURN(RlpReader h, RlpReader::AtList(header_wire));
  CONFIDE_ASSIGN_OR_RETURN(block.header.height, h.NextU64());
  auto read_hash = [&](crypto::Hash256* dst) -> Status {
    CONFIDE_ASSIGN_OR_RETURN(ByteView bytes, h.NextFixed(32, "header hash"));
    std::copy(bytes.begin(), bytes.end(), dst->begin());
    return Status::OK();
  };
  CONFIDE_RETURN_NOT_OK(read_hash(&block.header.parent_hash));
  CONFIDE_RETURN_NOT_OK(read_hash(&block.header.tx_root));
  CONFIDE_RETURN_NOT_OK(read_hash(&block.header.receipt_root));
  CONFIDE_RETURN_NOT_OK(read_hash(&block.header.state_root));
  CONFIDE_ASSIGN_OR_RETURN(block.header.timestamp_ns, h.NextU64());
  CONFIDE_RETURN_NOT_OK(h.ExpectEnd("chain: block header"));
  // Transactions: a list of byte-string items, each one tx wire encoding.
  CONFIDE_ASSIGN_OR_RETURN(RlpReader txs, r.NextList());
  while (!txs.AtEnd()) {
    CONFIDE_ASSIGN_OR_RETURN(ByteView tx_wire, txs.NextBytes());
    CONFIDE_ASSIGN_OR_RETURN(Transaction tx, Transaction::Deserialize(tx_wire));
    block.transactions.push_back(std::move(tx));
  }
  CONFIDE_RETURN_NOT_OK(r.ExpectEnd("chain: block"));
  return block;
}

}  // namespace confide::chain
