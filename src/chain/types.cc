#include "chain/types.h"

#include "serialize/rlp.h"

namespace confide::chain {

using serialize::RlpDecode;
using serialize::RlpEncode;
using serialize::RlpItem;

Address NamedAddress(std::string_view name) {
  crypto::Hash256 h = crypto::Sha256::Digest(
      Concat(AsByteView("confide-contract:"), AsByteView(name)));
  Address addr;
  std::copy(h.begin(), h.begin() + addr.size(), addr.begin());
  return addr;
}

namespace {

RlpItem BytesItem(ByteView b) { return RlpItem(ToBytes(b)); }

Result<Bytes> FixedBytes(const RlpItem& item, size_t n, const char* what) {
  if (!item.is_bytes() || item.bytes().size() != n) {
    return Status::Corruption(std::string("chain: bad ") + what);
  }
  return item.bytes();
}

}  // namespace

Bytes Transaction::Serialize() const {
  std::vector<RlpItem> items;
  items.push_back(RlpItem::U64(uint64_t(type)));
  if (type == TxType::kConfidential) {
    items.push_back(BytesItem(envelope));
  } else {
    items.push_back(BytesItem(ByteView(sender.data(), sender.size())));
    items.push_back(BytesItem(ByteView(contract.data(), contract.size())));
    items.push_back(RlpItem::String(entry));
    items.push_back(BytesItem(input));
    items.push_back(RlpItem::U64(nonce));
    items.push_back(BytesItem(ByteView(signature.data(), signature.size())));
  }
  return RlpEncode(RlpItem::List(std::move(items)));
}

Result<Transaction> Transaction::Deserialize(ByteView wire) {
  CONFIDE_ASSIGN_OR_RETURN(RlpItem item, RlpDecode(wire));
  if (!item.is_list() || item.list().empty()) {
    return Status::Corruption("chain: transaction is not a list");
  }
  const auto& fields = item.list();
  Transaction tx;
  CONFIDE_ASSIGN_OR_RETURN(uint64_t type_num, fields[0].AsU64());
  if (type_num > 1) return Status::Corruption("chain: unknown tx type");
  tx.type = TxType(type_num);
  if (tx.type == TxType::kConfidential) {
    if (fields.size() != 2 || !fields[1].is_bytes()) {
      return Status::Corruption("chain: bad confidential tx");
    }
    tx.envelope = fields[1].bytes();
    return tx;
  }
  if (fields.size() != 7) return Status::Corruption("chain: bad public tx arity");
  CONFIDE_ASSIGN_OR_RETURN(Bytes sender, FixedBytes(fields[1], 64, "sender"));
  std::copy(sender.begin(), sender.end(), tx.sender.begin());
  CONFIDE_ASSIGN_OR_RETURN(Bytes contract, FixedBytes(fields[2], 20, "contract"));
  std::copy(contract.begin(), contract.end(), tx.contract.begin());
  if (!fields[3].is_bytes()) return Status::Corruption("chain: bad entry");
  tx.entry = ToString(fields[3].bytes());
  if (!fields[4].is_bytes()) return Status::Corruption("chain: bad input");
  tx.input = fields[4].bytes();
  CONFIDE_ASSIGN_OR_RETURN(tx.nonce, fields[5].AsU64());
  CONFIDE_ASSIGN_OR_RETURN(Bytes sig, FixedBytes(fields[6], 64, "signature"));
  std::copy(sig.begin(), sig.end(), tx.signature.begin());
  return tx;
}

crypto::Hash256 Transaction::Hash() const {
  return crypto::Sha256::Digest(Serialize());
}

crypto::Hash256 Transaction::SigningHash() const {
  std::vector<RlpItem> items;
  items.push_back(RlpItem::U64(uint64_t(type)));
  items.push_back(BytesItem(ByteView(sender.data(), sender.size())));
  items.push_back(BytesItem(ByteView(contract.data(), contract.size())));
  items.push_back(RlpItem::String(entry));
  items.push_back(BytesItem(input));
  items.push_back(RlpItem::U64(nonce));
  return crypto::Sha256::Digest(RlpEncode(RlpItem::List(std::move(items))));
}

Bytes Receipt::Serialize() const {
  std::vector<RlpItem> items;
  items.push_back(BytesItem(crypto::HashView(tx_hash)));
  items.push_back(RlpItem::U64(success ? 1 : 0));
  items.push_back(RlpItem::String(status_message));
  items.push_back(BytesItem(output));
  std::vector<RlpItem> log_items;
  for (const Bytes& log : logs) log_items.push_back(BytesItem(log));
  items.push_back(RlpItem::List(std::move(log_items)));
  items.push_back(RlpItem::U64(gas_used));
  return RlpEncode(RlpItem::List(std::move(items)));
}

Result<Receipt> Receipt::Deserialize(ByteView wire) {
  CONFIDE_ASSIGN_OR_RETURN(RlpItem item, RlpDecode(wire));
  if (!item.is_list() || item.list().size() != 6) {
    return Status::Corruption("chain: bad receipt");
  }
  const auto& fields = item.list();
  Receipt receipt;
  CONFIDE_ASSIGN_OR_RETURN(Bytes hash, FixedBytes(fields[0], 32, "tx hash"));
  std::copy(hash.begin(), hash.end(), receipt.tx_hash.begin());
  CONFIDE_ASSIGN_OR_RETURN(uint64_t success, fields[1].AsU64());
  receipt.success = success != 0;
  receipt.status_message = ToString(fields[2].bytes());
  receipt.output = fields[3].bytes();
  if (!fields[4].is_list()) return Status::Corruption("chain: bad logs");
  for (const RlpItem& log : fields[4].list()) {
    receipt.logs.push_back(log.bytes());
  }
  CONFIDE_ASSIGN_OR_RETURN(receipt.gas_used, fields[5].AsU64());
  return receipt;
}

Bytes BlockHeader::Serialize() const {
  std::vector<RlpItem> items;
  items.push_back(RlpItem::U64(height));
  items.push_back(BytesItem(crypto::HashView(parent_hash)));
  items.push_back(BytesItem(crypto::HashView(tx_root)));
  items.push_back(BytesItem(crypto::HashView(receipt_root)));
  items.push_back(BytesItem(crypto::HashView(state_root)));
  items.push_back(RlpItem::U64(timestamp_ns));
  return RlpEncode(RlpItem::List(std::move(items)));
}

crypto::Hash256 BlockHeader::Hash() const {
  return crypto::Sha256::Digest(Serialize());
}

Bytes Block::Serialize() const {
  std::vector<RlpItem> tx_items;
  for (const Transaction& tx : transactions) {
    tx_items.push_back(RlpItem(tx.Serialize()));
  }
  std::vector<RlpItem> items;
  items.push_back(RlpItem(header.Serialize()));
  items.push_back(RlpItem::List(std::move(tx_items)));
  return RlpEncode(RlpItem::List(std::move(items)));
}

Result<Block> Block::Deserialize(ByteView wire) {
  CONFIDE_ASSIGN_OR_RETURN(RlpItem item, RlpDecode(wire));
  if (!item.is_list() || item.list().size() != 2) {
    return Status::Corruption("chain: bad block");
  }
  Block block;
  // Header.
  CONFIDE_ASSIGN_OR_RETURN(RlpItem header_item, RlpDecode(item.list()[0].bytes()));
  if (!header_item.is_list() || header_item.list().size() != 6) {
    return Status::Corruption("chain: bad block header");
  }
  const auto& h = header_item.list();
  CONFIDE_ASSIGN_OR_RETURN(block.header.height, h[0].AsU64());
  auto copy_hash = [&](const RlpItem& src, crypto::Hash256* dst) -> Status {
    CONFIDE_ASSIGN_OR_RETURN(Bytes bytes, FixedBytes(src, 32, "header hash"));
    std::copy(bytes.begin(), bytes.end(), dst->begin());
    return Status::OK();
  };
  CONFIDE_RETURN_NOT_OK(copy_hash(h[1], &block.header.parent_hash));
  CONFIDE_RETURN_NOT_OK(copy_hash(h[2], &block.header.tx_root));
  CONFIDE_RETURN_NOT_OK(copy_hash(h[3], &block.header.receipt_root));
  CONFIDE_RETURN_NOT_OK(copy_hash(h[4], &block.header.state_root));
  CONFIDE_ASSIGN_OR_RETURN(block.header.timestamp_ns, h[5].AsU64());
  // Transactions.
  if (!item.list()[1].is_list()) return Status::Corruption("chain: bad tx list");
  for (const RlpItem& tx_item : item.list()[1].list()) {
    CONFIDE_ASSIGN_OR_RETURN(Transaction tx, Transaction::Deserialize(tx_item.bytes()));
    block.transactions.push_back(std::move(tx));
  }
  return block;
}

}  // namespace confide::chain
