#include "chain/network.h"

namespace confide::chain {

uint32_t NetworkSim::AddZone(std::string name) {
  zones_.push_back(std::move(name));
  // Grow the link matrix with default (intra-DC) links.
  for (auto& row : links_) row.resize(zones_.size());
  links_.emplace_back(zones_.size());
  return uint32_t(zones_.size() - 1);
}

uint32_t NetworkSim::AddNode(uint32_t zone) {
  node_zone_.push_back(zone);
  node_partition_.push_back(0);
  return uint32_t(node_zone_.size() - 1);
}

Status NetworkSim::SetLink(uint32_t zone_a, uint32_t zone_b, LinkModel link) {
  if (zone_a >= zones_.size() || zone_b >= zones_.size()) {
    return Status::OutOfRange("network: unknown zone id");
  }
  links_[zone_a][zone_b] = link;
  links_[zone_b][zone_a] = link;
  return Status::OK();
}

Status NetworkSim::SetPartition(uint32_t node, uint32_t group) {
  if (node >= node_partition_.size()) {
    return Status::OutOfRange("network: unknown node id");
  }
  node_partition_[node] = group;
  return Status::OK();
}

void NetworkSim::HealPartitions() {
  std::fill(node_partition_.begin(), node_partition_.end(), 0);
}

bool NetworkSim::Reachable(uint32_t from_node, uint32_t to_node) const {
  if (from_node >= node_partition_.size() || to_node >= node_partition_.size()) {
    return false;
  }
  return node_partition_[from_node] == node_partition_[to_node];
}

const LinkModel* NetworkSim::LinkBetween(uint32_t from_node,
                                         uint32_t to_node) const {
  if (from_node >= node_zone_.size() || to_node >= node_zone_.size()) {
    return nullptr;
  }
  return &links_[node_zone_[from_node]][node_zone_[to_node]];
}

uint64_t NetworkSim::TransferNs(uint32_t from_node, uint32_t to_node,
                                uint64_t bytes) const {
  if (from_node == to_node) return 0;
  return LatencyNs(from_node, to_node) +
         SerializationNs(from_node, to_node, bytes);
}

uint64_t NetworkSim::LatencyNs(uint32_t from_node, uint32_t to_node) const {
  if (from_node == to_node) return 0;
  const LinkModel* link = LinkBetween(from_node, to_node);
  return link == nullptr ? 0 : link->latency_ns;
}

uint64_t NetworkSim::SerializationNs(uint32_t from_node, uint32_t to_node,
                                     uint64_t bytes) const {
  if (from_node == to_node) return 0;
  const LinkModel* link = LinkBetween(from_node, to_node);
  if (link == nullptr || link->bandwidth_bytes_per_sec == 0) return 0;
  return bytes * 1'000'000'000ull / link->bandwidth_bytes_per_sec;
}

double NetworkSim::DropRate(uint32_t from_node, uint32_t to_node) const {
  if (from_node == to_node) return 0.0;
  const LinkModel* link = LinkBetween(from_node, to_node);
  return link == nullptr ? 0.0 : link->drop_rate;
}

uint64_t NetworkSim::JitterNs(uint32_t from_node, uint32_t to_node) const {
  if (from_node == to_node) return 0;
  const LinkModel* link = LinkBetween(from_node, to_node);
  return link == nullptr ? 0 : link->jitter_ns;
}

NetworkSim NetworkSim::SingleZone(size_t n) {
  NetworkSim net;
  uint32_t zone = net.AddZone("vpc");
  for (size_t i = 0; i < n; ++i) net.AddNode(zone);
  return net;
}

NetworkSim NetworkSim::TwoZone(size_t n, uint64_t inter_latency_ns) {
  NetworkSim net;
  uint32_t shanghai = net.AddZone("shanghai");
  uint32_t beijing = net.AddZone("beijing");
  LinkModel wan;
  wan.latency_ns = inter_latency_ns;
  // "connected through public network with relatively less network
  // bandwidth" (§6.2): ~50 Mb/s effective cross-city throughput.
  wan.bandwidth_bytes_per_sec = 6'250'000;
  (void)net.SetLink(shanghai, beijing, wan);
  // 1:2 split, as in the paper's evaluation.
  for (size_t i = 0; i < n; ++i) {
    net.AddNode(i < n / 3 ? shanghai : beijing);
  }
  return net;
}

}  // namespace confide::chain
