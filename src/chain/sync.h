/// \file sync.h
/// \brief Merkle-verified peer catch-up for crashed and lagging replicas.
///
/// A replica that was down for N blocks (or lost its disk entirely)
/// rejoins in three phases:
///
///   1. **Discover** — query every known SyncProvider for its latest
///      stable checkpoint and verify the 2f+1 certificate against the
///      consortium ValidatorSet. Forged or stale certificates are
///      rejected and the provider is skipped (re-selection).
///   2. **Transfer** — stream the checkpoint's fixed-size chunks, verify
///      each against the manifest's chunk hash and its Merkle path to the
///      signed chunks_root, and install the whole snapshot as ONE atomic
///      WriteBatch (a crash mid-sync leaves the local store untouched;
///      re-sync simply starts over). Confidential entries move as the
///      sealed ciphertext they are stored as — the sync path never sees
///      plaintext; the joining node's CS enclave re-provisions the
///      consortium keys through the existing RecoverConfidentialEngine /
///      KM flow (the `reprovision` hook) before any block replay, which
///      executes confidential transactions.
///   3. **Replay** — apply blocks from the checkpoint height to the
///      provider tip through the normal ApplyBlock path, checking after
///      every block that the locally recomputed tip hash equals the
///      provider's block hash (execution divergence fails loudly).
///
/// Chunk and block fetches ride a shared common::RetryPolicy (jittered
/// exponential backoff); a provider that stops responding mid-stream is
/// failed over to the next one. All steps carry `fault.chain.sync.*`
/// injection sites and `chain.sync.*` metrics (docs/METRICS.md).

#pragma once

#include <atomic>
#include <functional>
#include <map>
#include <string>
#include <vector>

#include "chain/checkpoint.h"
#include "chain/network.h"
#include "chain/node.h"
#include "common/retry.h"

namespace confide::chain {

/// \brief Knobs for one StateSyncClient.
struct SyncOptions {
  /// Retry/backoff for chunk and block fetches (and provider failover).
  common::RetryOptions retry;
  /// NetworkSim node id of the joining replica (transfer-time modelling).
  uint32_t client_node_id = 0;
  /// Clock charged with modelled transfer time and retry backoff.
  SimClock* clock = nullptr;
  /// Invoked once at sync start, before chunk transfer and block replay:
  /// the hook that re-provisions the CS enclave's consortium keys when
  /// the engine is dead (replay executes confidential transactions and
  /// synced sealed state must be readable before the node serves reads).
  std::function<Status()> reprovision;
};

/// \brief What one SyncToTip() run did (also mirrored in chain.sync.*).
struct SyncStats {
  uint64_t checkpoint_height = 0;  ///< 0 = no snapshot used (replay only)
  bool snapshot_installed = false;
  size_t chunks_fetched = 0;
  size_t chunks_verified = 0;
  size_t chunks_rejected = 0;   ///< failed hash/Merkle verification
  size_t blocks_replayed = 0;
  size_t provider_failovers = 0;
  size_t certificates_rejected = 0;  ///< forged or stale
  /// Certified checkpoints conflicting with a locally witnessed one at
  /// the same height (equivocating provider — fork evidence).
  size_t forks_detected = 0;
  uint64_t bytes_transferred = 0;
};

/// \brief Serving side of state sync: wraps a live peer's node +
/// checkpoint manager behind the NetworkSim link model and the
/// `fault.chain.sync.*` injection sites. Thread-compatible.
class SyncProvider {
 public:
  /// \brief `net` may be null (no reachability/transfer modelling);
  /// `node_id` is this provider's NetworkSim placement.
  SyncProvider(std::string name, Node* node, NetworkSim* net = nullptr,
               uint32_t node_id = 0);

  const std::string& name() const { return name_; }

  /// \brief Latest certified checkpoint. NotFound when the peer has never
  /// checkpointed. Under `fault.chain.sync.forged_certificate` the served
  /// certificate is tampered; under `fault.chain.sync.stale_certificate`
  /// the oldest retained checkpoint is served as if it were the latest.
  Result<std::pair<CheckpointManifest, CheckpointCertificate>> LatestCheckpoint(
      uint32_t requester, SimClock* clock) const;

  /// \brief Chunk `index` of the checkpoint at `height`. Injection sites:
  /// `chunk_drop` (lost in transit), `chunk_corrupt` (bit flip),
  /// `provider_dead` (this and every later request fails).
  Result<Bytes> FetchChunk(uint32_t requester, SimClock* clock, uint64_t height,
                           size_t index) const;

  /// \brief Serialized block at `height` (replay source).
  Result<Bytes> FetchBlock(uint32_t requester, SimClock* clock,
                           uint64_t height) const;

  /// \brief The peer's durable chain height.
  Result<uint64_t> TipHeight(uint32_t requester) const;

  /// \brief True once the provider died (injected); all requests fail.
  bool dead() const { return dead_.load(std::memory_order_relaxed); }

  /// \brief Kills this provider deterministically (tests): every later
  /// request fails exactly as after an injected `provider_dead`.
  void Kill() { dead_.store(true, std::memory_order_relaxed); }

 private:
  /// \brief Dead-flag + injected-death + partition check shared by every
  /// request.
  Status CheckReachable(uint32_t requester) const;

  /// \brief Charges the modelled transfer time for `bytes` to `clock`.
  void ChargeTransfer(uint32_t requester, SimClock* clock, uint64_t bytes) const;

  std::string name_;
  Node* node_;
  NetworkSim* net_;
  uint32_t node_id_;
  mutable std::atomic<bool> dead_{false};
  /// Pinned store view the current transfer is served from (one per
  /// checkpoint height): chunk reads bypass the store lock entirely and
  /// survive a concurrent retention prune.
  mutable std::mutex serve_mutex_;
  mutable uint64_t serving_height_ = 0;
  mutable std::shared_ptr<storage::KvSnapshot> serving_view_;
};

/// \brief Client side: drives a rebooted or lagging node back to the live
/// tip from a set of providers.
class StateSyncClient {
 public:
  /// \brief `validators` verifies checkpoint certificates; must outlive
  /// the client.
  StateSyncClient(Node* node, const ValidatorSet* validators,
                  SyncOptions options);

  /// \brief Providers are tried in registration order; a failed provider
  /// rotates to the next.
  void AddProvider(SyncProvider* provider);

  /// \brief Runs discover → transfer → replay until the node matches the
  /// best provider's tip. Returns what was done; any verification failure
  /// that cannot be retried away fails loudly (never a wrong-state node).
  Result<SyncStats> SyncToTip();

 private:
  struct CheckpointChoice {
    CheckpointManifest manifest;
    CheckpointCertificate certificate;
    size_t provider_index = 0;
    bool found = false;
  };

  /// \brief Phase 1: query + verify certificates; picks the highest
  /// certified checkpoint strictly above the node's current height.
  Result<CheckpointChoice> DiscoverCheckpoint(SyncStats* stats);

  /// \brief Phase 2: fetch, verify and atomically install the snapshot.
  Status TransferSnapshot(const CheckpointChoice& choice, SyncStats* stats);

  /// \brief Phase 3: replay blocks [node height, provider tip).
  Status ReplayBlocks(SyncStats* stats);

  /// \brief Fetches one chunk with retry + provider failover.
  Result<Bytes> FetchVerifiedChunk(const CheckpointManifest& manifest,
                                   const crypto::MerkleTree& chunk_tree,
                                   size_t index, SyncStats* stats);

  /// \brief Advances to the next provider after a fetch failure.
  void RotateProvider(SyncStats* stats);

  /// \brief Retry options widened so every registered provider gets at
  /// least one attempt (rotation happens after a failure, so reaching all
  /// providers needs >= providers_.size() attempts).
  common::RetryOptions RotationRetryOptions() const;

  /// \brief On a successful sync, reports `fault.chain.sync.*.recovered`
  /// for every site that fired since the last acknowledgment (surviving an
  /// injected drop/corruption/death/forgery IS the recovery).
  void AcknowledgeRecoveredFaults();

  Node* node_;
  const ValidatorSet* validators_;
  SyncOptions options_;
  std::vector<SyncProvider*> providers_;
  size_t current_provider_ = 0;

  /// Fired-count watermark per fault site already reported as recovered,
  /// so repeated syncs do not over-report recoveries.
  std::map<std::string, uint64_t> acked_fires_;
};

}  // namespace confide::chain
