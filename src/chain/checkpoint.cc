#include "chain/checkpoint.h"

#include <algorithm>

#include "common/endian.h"
#include "common/fault.h"
#include "common/metrics.h"
#include "crypto/drbg.h"
#include "serialize/rlp.h"

namespace confide::chain {

namespace {

using serialize::RlpDecode;
using serialize::RlpEncode;
using serialize::RlpItem;

constexpr std::string_view kCheckpointPrefix = "ckpt/";
constexpr std::string_view kFreshnessPrefix = "fresh/";
constexpr const char* kIndexKey = "ckpt/index";

struct CheckpointMetrics {
  metrics::Counter* count = metrics::GetCounter("chain.checkpoint.count");
  metrics::Counter* chunks = metrics::GetCounter("chain.checkpoint.chunks");
  metrics::Counter* bytes = metrics::GetCounter("chain.checkpoint.bytes");
  metrics::Counter* entries = metrics::GetCounter("chain.checkpoint.entries");
  metrics::Counter* pruned = metrics::GetCounter("chain.checkpoint.pruned.count");
  metrics::Counter* adopted =
      metrics::GetCounter("chain.checkpoint.adopted.count");
  metrics::Counter* forks_detected =
      metrics::GetCounter("chain.fork.detected.count");
  metrics::Counter* witnessed =
      metrics::GetCounter("chain.fork.witnessed.count");
  metrics::Histogram* build_latency =
      metrics::GetHistogram("chain.checkpoint.build.latency_ns");

  static const CheckpointMetrics& Get() {
    static const CheckpointMetrics instruments;
    return instruments;
  }
};

RlpItem HashItem(const crypto::Hash256& hash) {
  return RlpItem(ToBytes(crypto::HashView(hash)));
}

Result<crypto::Hash256> HashFromItem(const RlpItem& item) {
  if (!item.is_bytes() || item.bytes().size() != 32) {
    return Status::Corruption("checkpoint: bad hash field");
  }
  crypto::Hash256 hash;
  std::copy(item.bytes().begin(), item.bytes().end(), hash.begin());
  return hash;
}

}  // namespace

// ---------------------------------------------------------------------------
// CheckpointManifest
// ---------------------------------------------------------------------------

Bytes CheckpointManifest::Serialize() const {
  std::vector<RlpItem> items;
  items.push_back(RlpItem::U64(height));
  items.push_back(HashItem(block_hash));
  items.push_back(HashItem(state_root));
  items.push_back(RlpItem::U64(total_entries));
  items.push_back(RlpItem::U64(total_bytes));
  items.push_back(HashItem(chunks_root));
  Bytes hashes;
  for (const crypto::Hash256& h : chunk_hashes) {
    hashes.insert(hashes.end(), h.begin(), h.end());
  }
  items.push_back(RlpItem(std::move(hashes)));
  return RlpEncode(RlpItem::List(std::move(items)));
}

Result<CheckpointManifest> CheckpointManifest::Deserialize(ByteView wire) {
  CONFIDE_ASSIGN_OR_RETURN(RlpItem item, RlpDecode(wire));
  if (!item.is_list() || item.list().size() != 7) {
    return Status::Corruption("checkpoint: malformed manifest");
  }
  const auto& fields = item.list();
  CheckpointManifest manifest;
  CONFIDE_ASSIGN_OR_RETURN(manifest.height, fields[0].AsU64());
  CONFIDE_ASSIGN_OR_RETURN(manifest.block_hash, HashFromItem(fields[1]));
  CONFIDE_ASSIGN_OR_RETURN(manifest.state_root, HashFromItem(fields[2]));
  CONFIDE_ASSIGN_OR_RETURN(manifest.total_entries, fields[3].AsU64());
  CONFIDE_ASSIGN_OR_RETURN(manifest.total_bytes, fields[4].AsU64());
  CONFIDE_ASSIGN_OR_RETURN(manifest.chunks_root, HashFromItem(fields[5]));
  if (!fields[6].is_bytes() || fields[6].bytes().size() % 32 != 0) {
    return Status::Corruption("checkpoint: malformed chunk hash list");
  }
  const Bytes& hashes = fields[6].bytes();
  for (size_t off = 0; off < hashes.size(); off += 32) {
    crypto::Hash256 h;
    std::copy(hashes.begin() + ptrdiff_t(off),
              hashes.begin() + ptrdiff_t(off + 32), h.begin());
    manifest.chunk_hashes.push_back(h);
  }
  return manifest;
}

crypto::Hash256 CheckpointManifest::Digest() const {
  return crypto::Sha256::Digest(Serialize());
}

// ---------------------------------------------------------------------------
// CheckpointCertificate
// ---------------------------------------------------------------------------

Bytes CheckpointCertificate::Serialize() const {
  std::vector<RlpItem> items;
  items.push_back(HashItem(manifest_digest));
  std::vector<RlpItem> vote_items;
  for (const auto& [signer, sig] : votes) {
    std::vector<RlpItem> vote;
    vote.push_back(RlpItem::U64(signer));
    vote.push_back(RlpItem(ToBytes(ByteView(sig.data(), sig.size()))));
    vote_items.push_back(RlpItem::List(std::move(vote)));
  }
  items.push_back(RlpItem::List(std::move(vote_items)));
  return RlpEncode(RlpItem::List(std::move(items)));
}

Result<CheckpointCertificate> CheckpointCertificate::Deserialize(ByteView wire) {
  CONFIDE_ASSIGN_OR_RETURN(RlpItem item, RlpDecode(wire));
  if (!item.is_list() || item.list().size() != 2 || !item.list()[1].is_list()) {
    return Status::Corruption("checkpoint: malformed certificate");
  }
  CheckpointCertificate certificate;
  CONFIDE_ASSIGN_OR_RETURN(certificate.manifest_digest,
                           HashFromItem(item.list()[0]));
  for (const RlpItem& vote : item.list()[1].list()) {
    if (!vote.is_list() || vote.list().size() != 2 ||
        !vote.list()[1].is_bytes() || vote.list()[1].bytes().size() != 64) {
      return Status::Corruption("checkpoint: malformed vote");
    }
    CONFIDE_ASSIGN_OR_RETURN(uint64_t signer, vote.list()[0].AsU64());
    crypto::Signature sig;
    std::copy(vote.list()[1].bytes().begin(), vote.list()[1].bytes().end(),
              sig.begin());
    certificate.votes.emplace_back(uint32_t(signer), sig);
  }
  return certificate;
}

// ---------------------------------------------------------------------------
// ValidatorSet
// ---------------------------------------------------------------------------

ValidatorSet ValidatorSet::Generate(size_t n, uint64_t seed) {
  ValidatorSet set;
  crypto::Drbg rng(seed ^ 0xc4ec9017ull);
  for (size_t i = 0; i < n; ++i) {
    set.keys_.push_back(crypto::GenerateKeyPair(&rng));
  }
  return set;
}

size_t ValidatorSet::QuorumSize() const {
  // n = 3f+1 -> 2f+1; for other n this is still a strict majority that
  // intersects any two quorums.
  size_t f = (keys_.size() - 1) / 3;
  return std::min(keys_.size(), 2 * f + 1);
}

Result<CheckpointCertificate> ValidatorSet::Certify(
    const CheckpointManifest& manifest) const {
  if (keys_.empty()) {
    return Status::InvalidArgument("checkpoint: empty validator set");
  }
  CheckpointCertificate certificate;
  certificate.manifest_digest = manifest.Digest();
  for (size_t i = 0; i < QuorumSize(); ++i) {
    CONFIDE_ASSIGN_OR_RETURN(
        crypto::Signature sig,
        crypto::EcdsaSign(keys_[i].priv, certificate.manifest_digest));
    certificate.votes.emplace_back(uint32_t(i), sig);
  }
  return certificate;
}

Status ValidatorSet::Verify(const CheckpointManifest& manifest,
                            const CheckpointCertificate& certificate) const {
  crypto::Hash256 digest = manifest.Digest();
  if (digest != certificate.manifest_digest) {
    return Status::PermissionDenied(
        "checkpoint: certificate signs a different manifest");
  }
  std::vector<bool> voted(keys_.size(), false);
  size_t valid = 0;
  for (const auto& [signer, sig] : certificate.votes) {
    if (signer >= keys_.size()) {
      return Status::PermissionDenied("checkpoint: unknown validator in vote");
    }
    if (voted[signer]) {
      return Status::PermissionDenied("checkpoint: duplicate validator vote");
    }
    if (!crypto::EcdsaVerify(keys_[signer].pub, digest, sig)) {
      return Status::PermissionDenied("checkpoint: forged validator signature");
    }
    voted[signer] = true;
    ++valid;
  }
  if (valid < QuorumSize()) {
    return Status::PermissionDenied("checkpoint: certificate below 2f+1 quorum");
  }
  return Status::OK();
}

// ---------------------------------------------------------------------------
// CheckpointManager
// ---------------------------------------------------------------------------

CheckpointManager::CheckpointManager(CheckpointOptions options,
                                     std::shared_ptr<storage::KvStore> kv,
                                     const ValidatorSet* validators)
    : options_(options), kv_(std::move(kv)), validators_(validators) {}

std::string CheckpointManager::ManifestKey(uint64_t height) {
  uint8_t be[8];
  StoreBe64(be, height);
  return "ckpt/m/" + HexEncode(ByteView(be, 8));
}

std::string CheckpointManager::CertificateKey(uint64_t height) {
  uint8_t be[8];
  StoreBe64(be, height);
  return "ckpt/s/" + HexEncode(ByteView(be, 8));
}

std::string CheckpointManager::ChunkKey(uint64_t height, size_t index) {
  uint8_t be[16];
  StoreBe64(be, height);
  StoreBe64(be + 8, index);
  return "ckpt/c/" + HexEncode(ByteView(be, 16));
}

std::string CheckpointManager::WitnessKey(uint64_t height) {
  uint8_t be[8];
  StoreBe64(be, height);
  return "ckpt/w/" + HexEncode(ByteView(be, 8));
}

void CheckpointManager::SetForkAlarm(ForkAlarm alarm) {
  std::lock_guard<std::mutex> lock(mutex_);
  fork_alarm_ = std::move(alarm);
}

Status CheckpointManager::WitnessCheckpoint(uint64_t height,
                                            const crypto::Hash256& block_hash,
                                            const crypto::Hash256& state_root) {
  ForkAlarm alarm;
  crypto::Hash256 seen_root{};
  bool conflict = false;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    Result<Bytes> existing = kv_->Get(WitnessKey(height));
    if (existing.ok()) {
      CONFIDE_ASSIGN_OR_RETURN(RlpItem item, RlpDecode(*existing));
      if (!item.is_list() || item.list().size() != 2) {
        return Status::Corruption("checkpoint: malformed witness record");
      }
      crypto::Hash256 seen_hash;
      CONFIDE_ASSIGN_OR_RETURN(seen_hash, HashFromItem(item.list()[0]));
      CONFIDE_ASSIGN_OR_RETURN(seen_root, HashFromItem(item.list()[1]));
      if (seen_hash == block_hash && seen_root == state_root) {
        return Status::OK();  // same checkpoint re-witnessed
      }
      conflict = true;
      alarm = fork_alarm_;
      CheckpointMetrics::Get().forks_detected->Increment();
    } else if (existing.status().IsNotFound()) {
      std::vector<RlpItem> record;
      record.push_back(HashItem(block_hash));
      record.push_back(HashItem(state_root));
      CONFIDE_RETURN_NOT_OK(
          kv_->Put(WitnessKey(height), RlpEncode(RlpItem::List(std::move(record)))));
      CheckpointMetrics::Get().witnessed->Increment();
    } else {
      return existing.status();
    }
  }
  if (!conflict) return Status::OK();
  // Two 2f+1-certified checkpoints over divergent state at one height:
  // consortium equivocation. Alarm outside the manager lock.
  if (alarm) alarm(height, seen_root, state_root);
  return Status::PermissionDenied(
      "checkpoint: fork detected — conflicting certified checkpoint at height " +
      std::to_string(height));
}

Status CheckpointManager::MaybeCheckpoint(uint64_t height,
                                          const crypto::Hash256& block_hash,
                                          const crypto::Hash256& state_root) {
  if (options_.interval == 0 || height == 0 || height % options_.interval != 0) {
    return Status::OK();
  }
  {
    std::lock_guard<std::mutex> lock(mutex_);
    if (height <= latest_height_) return Status::OK();  // already covered
  }
  return WriteCheckpoint(height, block_hash, state_root);
}

Status CheckpointManager::WriteCheckpoint(uint64_t height,
                                          const crypto::Hash256& block_hash,
                                          const crypto::Hash256& state_root) {
  if (validators_ == nullptr) {
    return Status::InvalidArgument(
        "checkpoint: no validator set to certify with");
  }
  const CheckpointMetrics& cm = CheckpointMetrics::Get();
  metrics::ScopedLatencyTimer timer(cm.build_latency);

  if (fault::FaultInjector::Global().ShouldFail("fault.chain.checkpoint.write")) {
    return Status::Unavailable("checkpoint: injected write failure");
  }

  // Fork evidence first: producing a checkpoint that conflicts with one
  // already witnessed at this height means this replica itself diverged.
  CONFIDE_RETURN_NOT_OK(WitnessCheckpoint(height, block_hash, state_root));

  // Chunked iteration of the full store (state, receipts, tx index, block
  // bodies) — everything except previous checkpoint blobs, so peers at
  // the same height snapshot identical chunk sets.
  CheckpointManifest manifest;
  manifest.height = height;
  manifest.block_hash = block_hash;
  manifest.state_root = state_root;

  storage::WriteBatch batch;
  Bytes chunk;
  size_t chunk_index = 0;
  auto flush_chunk = [&] {
    if (chunk.empty()) return;
    manifest.chunk_hashes.push_back(crypto::Sha256::Digest(chunk));
    manifest.total_bytes += chunk.size();
    batch.Put(ChunkKey(height, chunk_index), std::move(chunk));
    chunk.clear();
    ++chunk_index;
  };

  // Scan a sequence-pinned snapshot: the whole chunking pass runs without
  // the store lock, so it cannot contend with the group-commit path while
  // the node keeps finalizing blocks.
  std::unique_ptr<storage::KvSnapshot> snapshot = kv_->GetSnapshot();
  std::unique_ptr<storage::KvIterator> it = snapshot->NewIterator();
  for (it->SeekToFirst(); it->Valid(); it->Next()) {
    const std::string& key = it->key();
    if (key.rfind(kCheckpointPrefix, 0) == 0) continue;
    // Freshness headers are node-local trust state (like the witness
    // log): they bind to *this* platform's sealing key and must never
    // transfer to a peer.
    if (key.rfind(kFreshnessPrefix, 0) == 0) continue;
    uint8_t len[4];
    StoreBe32(len, uint32_t(key.size()));
    chunk.insert(chunk.end(), len, len + 4);
    chunk.insert(chunk.end(), key.begin(), key.end());
    StoreBe32(len, uint32_t(it->value().size()));
    chunk.insert(chunk.end(), len, len + 4);
    chunk.insert(chunk.end(), it->value().begin(), it->value().end());
    ++manifest.total_entries;
    if (chunk.size() >= options_.chunk_bytes) flush_chunk();
  }
  flush_chunk();

  std::vector<Bytes> leaves;
  for (const crypto::Hash256& h : manifest.chunk_hashes) {
    leaves.push_back(ToBytes(crypto::HashView(h)));
  }
  manifest.chunks_root = crypto::MerkleTree(leaves).Root();

  CONFIDE_ASSIGN_OR_RETURN(CheckpointCertificate certificate,
                           validators_->Certify(manifest));

  std::lock_guard<std::mutex> lock(mutex_);
  batch.Put(ManifestKey(height), manifest.Serialize());
  batch.Put(CertificateKey(height), certificate.Serialize());
  std::vector<uint64_t> retained = RetainLocked(&batch, height);

  CONFIDE_RETURN_NOT_OK(kv_->Write(batch));
  retained_ = std::move(retained);
  latest_height_ = height;

  cm.count->Increment();
  cm.chunks->Increment(manifest.chunk_count());
  cm.bytes->Increment(manifest.total_bytes);
  cm.entries->Increment(manifest.total_entries);
  return Status::OK();
}

std::vector<uint64_t> CheckpointManager::RetainLocked(
    storage::WriteBatch* batch, uint64_t height) {
  // Retention: drop the oldest retained checkpoint in the same atomic
  // batch (stable-checkpoint log truncation).
  const CheckpointMetrics& cm = CheckpointMetrics::Get();
  std::vector<uint64_t> retained = retained_;
  retained.push_back(height);
  while (retained.size() > std::max<size_t>(1, options_.keep)) {
    uint64_t victim = retained.front();
    retained.erase(retained.begin());
    auto victim_manifest = ManifestAt(victim);
    if (victim_manifest.ok()) {
      for (size_t i = 0; i < victim_manifest->chunk_count(); ++i) {
        batch->Delete(ChunkKey(victim, i));
      }
    }
    batch->Delete(ManifestKey(victim));
    batch->Delete(CertificateKey(victim));
    cm.pruned->Increment();
  }
  std::vector<RlpItem> index_items;
  for (uint64_t h : retained) index_items.push_back(RlpItem::U64(h));
  batch->Put(kIndexKey, RlpEncode(RlpItem::List(std::move(index_items))));
  return retained;
}

Status CheckpointManager::Adopt(const CheckpointManifest& manifest,
                                const CheckpointCertificate& certificate,
                                const std::vector<Bytes>& chunks) {
  if (chunks.size() != manifest.chunk_count()) {
    return Status::InvalidArgument("checkpoint: adopt chunk count mismatch");
  }
  // Cross-check against the witnessed-roots log before any install: an
  // equivocating peer serving a second certified checkpoint at a height
  // we already saw must fail loudly, not overwrite.
  CONFIDE_RETURN_NOT_OK(
      WitnessCheckpoint(manifest.height, manifest.block_hash, manifest.state_root));
  const CheckpointMetrics& cm = CheckpointMetrics::Get();
  std::lock_guard<std::mutex> lock(mutex_);
  if (manifest.height <= latest_height_) return Status::OK();

  storage::WriteBatch batch;
  for (size_t i = 0; i < chunks.size(); ++i) {
    batch.Put(ChunkKey(manifest.height, i), chunks[i]);
  }
  batch.Put(ManifestKey(manifest.height), manifest.Serialize());
  batch.Put(CertificateKey(manifest.height), certificate.Serialize());
  std::vector<uint64_t> retained = RetainLocked(&batch, manifest.height);

  CONFIDE_RETURN_NOT_OK(kv_->Write(batch));
  retained_ = std::move(retained);
  latest_height_ = manifest.height;

  cm.adopted->Increment();
  cm.chunks->Increment(manifest.chunk_count());
  cm.bytes->Increment(manifest.total_bytes);
  return Status::OK();
}

Status CheckpointManager::RecoverLatest() {
  auto index = kv_->Get(kIndexKey);
  if (index.status().IsNotFound()) return Status::OK();  // never checkpointed
  CONFIDE_RETURN_NOT_OK(index.status());
  CONFIDE_ASSIGN_OR_RETURN(RlpItem item, RlpDecode(*index));
  if (!item.is_list()) {
    return Status::Corruption("checkpoint: malformed retention index");
  }
  std::vector<uint64_t> retained;
  for (const RlpItem& entry : item.list()) {
    CONFIDE_ASSIGN_OR_RETURN(uint64_t h, entry.AsU64());
    retained.push_back(h);
  }
  std::lock_guard<std::mutex> lock(mutex_);
  retained_ = std::move(retained);
  latest_height_ = retained_.empty() ? 0 : retained_.back();
  return Status::OK();
}

uint64_t CheckpointManager::LatestHeight() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return latest_height_;
}

std::vector<uint64_t> CheckpointManager::RetainedHeights() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return retained_;
}

Result<CheckpointManifest> CheckpointManager::ManifestAt(uint64_t height) const {
  CONFIDE_ASSIGN_OR_RETURN(Bytes wire, kv_->Get(ManifestKey(height)));
  return CheckpointManifest::Deserialize(wire);
}

Result<CheckpointCertificate> CheckpointManager::CertificateAt(
    uint64_t height) const {
  CONFIDE_ASSIGN_OR_RETURN(Bytes wire, kv_->Get(CertificateKey(height)));
  return CheckpointCertificate::Deserialize(wire);
}

Result<Bytes> CheckpointManager::ChunkAt(uint64_t height, size_t index) const {
  return kv_->Get(ChunkKey(height, index));
}

std::shared_ptr<storage::KvSnapshot> CheckpointManager::PinView() const {
  return std::shared_ptr<storage::KvSnapshot>(kv_->GetSnapshot());
}

Result<Bytes> CheckpointManager::ChunkAt(const storage::KvSnapshot& view,
                                         uint64_t height, size_t index) {
  return view.Get(ChunkKey(height, index));
}

Result<std::vector<std::pair<std::string, Bytes>>> CheckpointManager::ParseChunk(
    ByteView payload) {
  std::vector<std::pair<std::string, Bytes>> entries;
  size_t off = 0;
  while (off < payload.size()) {
    if (off + 4 > payload.size()) {
      return Status::Corruption("checkpoint: truncated chunk key length");
    }
    uint32_t key_len = LoadBe32(payload.data() + off);
    off += 4;
    if (off + key_len + 4 > payload.size()) {
      return Status::Corruption("checkpoint: truncated chunk key");
    }
    std::string key(reinterpret_cast<const char*>(payload.data() + off), key_len);
    off += key_len;
    uint32_t value_len = LoadBe32(payload.data() + off);
    off += 4;
    if (off + value_len > payload.size()) {
      return Status::Corruption("checkpoint: truncated chunk value");
    }
    entries.emplace_back(std::move(key),
                         Bytes(payload.data() + off, payload.data() + off + value_len));
    off += value_len;
  }
  return entries;
}

}  // namespace confide::chain
