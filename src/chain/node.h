/// \file node.h
/// \brief A consortium blockchain node: transaction pools with parallel
/// pre-verification, block production, execution, commitment and
/// SPV-style consensus reads.

#pragma once

#include <deque>
#include <memory>
#include <mutex>

#include "chain/checkpoint.h"
#include "chain/executor.h"
#include "chain/types.h"
#include "common/thread_pool.h"
#include "crypto/merkle.h"
#include "storage/block_store.h"
#include "storage/lsm_store.h"

namespace confide::chain {

struct NodeOptions {
  uint32_t parallelism = 1;
  /// Block payload target (the paper's evaluation uses 4 KB blocks).
  size_t block_max_bytes = 4096;
  /// Charges the ~6 ms cloud-SSD write model on block commits when set.
  SimClock* clock = nullptr;
  /// Directory for the state-store WAL; empty = volatile state.
  std::string state_wal_dir;
  /// Blocks allowed in flight between the execute and commit stages of
  /// RunPipelined(). 0 = the old strictly serial lifecycle.
  uint32_t pipeline_depth = 0;
  /// fsync the store once per commit group (group commit): consecutive
  /// blocks' log records coalesce into one device flush.
  bool sync_commits = false;
  /// Real (wall-clock) commit latency, modelling the paper's ~6 ms
  /// cloud-SSD block write (§6.4) as actual blocking time the pipeline
  /// can overlap with execution. Charged once per commit group — one
  /// coalesced device flush covers consecutive blocks under group
  /// commit, so the serial lifecycle pays it per block while the
  /// pipeline pays it per group. 0 = no modelled wait.
  uint64_t commit_write_latency_ns = 0;
  /// Stable-checkpoint production (checkpoint.h). interval == 0 disables.
  CheckpointOptions checkpoint;
  /// Consortium validator set that certifies checkpoints; required when
  /// checkpointing is enabled (and for serving checkpoints to sync
  /// clients). Must outlive the node.
  const ValidatorSet* validators = nullptr;
};

/// \brief Inclusion proof for one transaction (SPV read, paper §3.3: "to
/// query blockchain data from other nodes, a consensus read should be
/// performed"). The caller compares `header` against headers fetched from
/// a quorum of nodes.
struct TxProof {
  BlockHeader header;
  crypto::MerkleProof proof;
  Bytes tx_wire;
};

/// \brief One node. Thread-compatible: external synchronization required
/// only around block production; pools are internally locked.
class Node {
 public:
  /// \brief Opens the state store (recovering from the WAL when
  /// `options.state_wal_dir` is set) and builds the node. A store that
  /// cannot be opened fails creation — a node asked for durability never
  /// silently degrades to a volatile store.
  static Result<std::unique_ptr<Node>> Create(NodeOptions options,
                                              EngineSet engines);

  /// \brief Receives a transaction into the unverified pool.
  Status SubmitTransaction(Transaction tx);

  /// \brief Runs pre-verification over the unverified pool (the paper's
  /// parallelizable phase, §5.2); valid transactions move to the verified
  /// pool, invalid ones are discarded. Returns the number verified.
  Result<size_t> PreVerify();

  /// \brief Builds the next block from the verified pool (up to
  /// block_max_bytes of transactions, at least one if available).
  Result<Block> ProposeBlock();

  /// \brief Returns already-verified transactions to the front of the
  /// verified pool, preserving their order. Used when a proposed block is
  /// abandoned (e.g. the proposer lost its leadership view before the
  /// block committed) so the drained transactions are not lost.
  void RequeueVerified(std::vector<Transaction> txs);

  /// \brief Executes and commits a block: state writes, receipts, block
  /// storage — all folded into one atomic KV write, so an injected
  /// storage fault (or any write failure) surfaces as a clean error with
  /// no partial commit; the caller can retry the whole block. Returns
  /// the receipts in order.
  Result<std::vector<Receipt>> ApplyBlock(const Block& block);

  /// \brief Drains the transaction pools through the three-stage block
  /// pipeline: stage 1 batch-pre-verifies on the shared pool, stage 2
  /// (this thread) proposes + executes + stages blocks, stage 3 writes
  /// and finalizes them, one WAL fsync per commit group. Block N+1
  /// pre-verifies while block N executes and block N−1 commits; bounded
  /// queues (capacity `pipeline_depth`) provide backpressure. Every
  /// block still lands as one atomic WriteBatch. On failure the chain
  /// stops at the last durably committed block (staged state and
  /// appends roll back; unprocessed transactions return to the pools)
  /// and the error is returned. With pipeline_depth == 0 this is the
  /// serial PreVerify/ProposeBlock/ApplyBlock loop. Returns receipts in
  /// block order.
  Result<std::vector<Receipt>> RunPipelined();

  /// \brief Fetches a stored receipt by transaction hash.
  Result<Receipt> GetReceipt(const crypto::Hash256& tx_hash) const;

  /// \brief Builds an SPV inclusion proof for a transaction.
  Result<TxProof> ProveTransaction(const crypto::Hash256& tx_hash) const;

  /// \brief Verifies an SPV proof against a (quorum-checked) header.
  static bool VerifyTxProof(const TxProof& proof);

  /// \brief Re-derives every in-memory cursor (chain height, tip hash,
  /// state root, checkpoint retention) from the backing store. Called by
  /// state sync after installing a snapshot batch; also the restart
  /// recovery path.
  Status ResyncFromStore();

  CommitStateDb* state() { return state_.get(); }
  storage::BlockStore* blocks() { return blocks_.get(); }
  /// \brief Checkpoint producer/store; nullptr when no validator set was
  /// configured.
  CheckpointManager* checkpoints() { return checkpoints_.get(); }
  /// \brief Installs the fork-evidence callback on this node's checkpoint
  /// manager (no-op when checkpointing is disabled). See
  /// CheckpointManager::SetForkAlarm.
  void SetForkAlarm(CheckpointManager::ForkAlarm alarm) {
    if (checkpoints_) checkpoints_->SetForkAlarm(std::move(alarm));
  }
  uint64_t Height() const { return blocks_->NextHeight(); }
  /// \brief Hash of the latest durably committed block (zero at genesis).
  crypto::Hash256 TipHash() const { return last_block_hash_; }
  size_t UnverifiedPoolSize() const;
  size_t VerifiedPoolSize() const;

 private:
  Node(NodeOptions options, EngineSet engines,
       std::shared_ptr<storage::KvStore> kv);

  /// \brief Parallel pre-verification of `txs` on the shared pool;
  /// `valid[i]` is set for transactions that passed.
  void PreVerifyBatch(std::vector<Transaction>* txs, std::vector<uint8_t>* valid);

  /// \brief Restores the height cursors, tip hash and state root from the
  /// durable store after a restart (crash recovery).
  Status RecoverChainTip();

  /// \brief Checkpoint hook after a block finalized at `height`; a failed
  /// checkpoint is counted and logged but never fails the block (it is
  /// already durable).
  void MaybeCheckpointTip(uint64_t height, const crypto::Hash256& block_hash,
                          const crypto::Hash256& state_root);

  NodeOptions options_;
  EngineSet engines_;
  std::unique_ptr<ThreadPool> pool_;  ///< before executor_: executor borrows it
  BlockExecutor executor_;
  std::shared_ptr<storage::KvStore> kv_;
  std::unique_ptr<CommitStateDb> state_;
  std::unique_ptr<storage::BlockStore> blocks_;
  std::unique_ptr<CheckpointManager> checkpoints_;

  mutable std::mutex pool_mutex_;
  std::deque<Transaction> unverified_;
  std::deque<Transaction> verified_;
  crypto::Hash256 last_block_hash_{};
};

}  // namespace confide::chain
