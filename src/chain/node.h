/// \file node.h
/// \brief A consortium blockchain node: transaction pools with parallel
/// pre-verification, block production, execution, commitment and
/// SPV-style consensus reads.

#pragma once

#include <deque>
#include <memory>
#include <mutex>

#include "chain/executor.h"
#include "chain/types.h"
#include "crypto/merkle.h"
#include "storage/block_store.h"
#include "storage/lsm_store.h"

namespace confide::chain {

struct NodeOptions {
  uint32_t parallelism = 1;
  /// Block payload target (the paper's evaluation uses 4 KB blocks).
  size_t block_max_bytes = 4096;
  /// Charges the ~6 ms cloud-SSD write model on block commits when set.
  SimClock* clock = nullptr;
  /// Directory for the state-store WAL; empty = volatile state.
  std::string state_wal_dir;
};

/// \brief Inclusion proof for one transaction (SPV read, paper §3.3: "to
/// query blockchain data from other nodes, a consensus read should be
/// performed"). The caller compares `header` against headers fetched from
/// a quorum of nodes.
struct TxProof {
  BlockHeader header;
  crypto::MerkleProof proof;
  Bytes tx_wire;
};

/// \brief One node. Thread-compatible: external synchronization required
/// only around block production; pools are internally locked.
class Node {
 public:
  /// \brief Opens the state store (recovering from the WAL when
  /// `options.state_wal_dir` is set) and builds the node. A store that
  /// cannot be opened fails creation — a node asked for durability never
  /// silently degrades to a volatile store.
  static Result<std::unique_ptr<Node>> Create(NodeOptions options,
                                              EngineSet engines);

  /// \brief Receives a transaction into the unverified pool.
  Status SubmitTransaction(Transaction tx);

  /// \brief Runs pre-verification over the unverified pool (the paper's
  /// parallelizable phase, §5.2); valid transactions move to the verified
  /// pool, invalid ones are discarded. Returns the number verified.
  Result<size_t> PreVerify();

  /// \brief Builds the next block from the verified pool (up to
  /// block_max_bytes of transactions, at least one if available).
  Result<Block> ProposeBlock();

  /// \brief Executes and commits a block: state writes, receipts, block
  /// storage — all folded into one atomic KV write, so an injected
  /// storage fault (or any write failure) surfaces as a clean error with
  /// no partial commit; the caller can retry the whole block. Returns
  /// the receipts in order.
  Result<std::vector<Receipt>> ApplyBlock(const Block& block);

  /// \brief Fetches a stored receipt by transaction hash.
  Result<Receipt> GetReceipt(const crypto::Hash256& tx_hash) const;

  /// \brief Builds an SPV inclusion proof for a transaction.
  Result<TxProof> ProveTransaction(const crypto::Hash256& tx_hash) const;

  /// \brief Verifies an SPV proof against a (quorum-checked) header.
  static bool VerifyTxProof(const TxProof& proof);

  CommitStateDb* state() { return state_.get(); }
  storage::BlockStore* blocks() { return blocks_.get(); }
  uint64_t Height() const { return blocks_->NextHeight(); }
  size_t UnverifiedPoolSize() const;
  size_t VerifiedPoolSize() const;

 private:
  Node(NodeOptions options, EngineSet engines,
       std::shared_ptr<storage::KvStore> kv);

  NodeOptions options_;
  EngineSet engines_;
  BlockExecutor executor_;
  std::shared_ptr<storage::KvStore> kv_;
  std::unique_ptr<CommitStateDb> state_;
  std::unique_ptr<storage::BlockStore> blocks_;

  mutable std::mutex pool_mutex_;
  std::deque<Transaction> unverified_;
  std::deque<Transaction> verified_;
  crypto::Hash256 last_block_hash_{};
};

}  // namespace confide::chain
