#include "chain/executor.h"

#include <algorithm>
#include <map>
#include <set>

#include "common/metrics.h"

namespace confide::chain {

namespace {

struct ExecutorMetrics {
  metrics::Counter* regrouped_groups =
      metrics::GetCounter("chain.executor.conflict_regroup.count");
  metrics::Counter* reexecuted_txs =
      metrics::GetCounter("chain.executor.conflict_reexec_tx.count");

  static const ExecutorMetrics& Get() {
    static const ExecutorMetrics instruments;
    return instruments;
  }
};

/// Union of the touch sets reported by one group's transactions.
struct GroupTouch {
  std::set<uint64_t> reads;
  std::set<uint64_t> writes;
};

bool Intersects(const std::set<uint64_t>& a, const std::set<uint64_t>& b) {
  auto ia = a.begin();
  auto ib = b.begin();
  while (ia != a.end() && ib != b.end()) {
    if (*ia == *ib) return true;
    (*ia < *ib) ? ++ia : ++ib;
  }
  return false;
}

}  // namespace

BlockExecutor::BlockExecutor(ExecutorOptions options) : options_(options) {
  // A private pool is built once here — parallel blocks reuse it instead
  // of spawning fresh threads per block.
  if (options_.pool == nullptr && options_.parallelism > 1) {
    owned_pool_ = std::make_unique<ThreadPool>(options_.parallelism - 1);
  }
}

Result<std::map<uint64_t, std::vector<size_t>>> BlockExecutor::GroupByConflictKey(
    const std::vector<Transaction>& transactions, const EngineSet& engines) {
  // Group by conflict key, preserving in-block order within each group.
  std::map<uint64_t, std::vector<size_t>> groups;
  for (size_t i = 0; i < transactions.size(); ++i) {
    ExecutionEngine* engine = engines.Route(transactions[i]);
    if (engine == nullptr) {
      return Status::InvalidArgument("executor: no engine for tx type");
    }
    groups[engine->ConflictKey(transactions[i])].push_back(i);
  }
  return groups;
}

Result<std::vector<Receipt>> BlockExecutor::ExecuteBlock(
    const std::vector<Transaction>& transactions, const EngineSet& engines,
    StateDb* state) const {
  std::vector<Receipt> receipts(transactions.size());

  CONFIDE_ASSIGN_OR_RETURN(auto groups,
                           GroupByConflictKey(transactions, engines));

  // Each worker drains whole groups; writes stage in a per-group overlay
  // and merge in deterministic group order afterwards.
  std::vector<std::pair<uint64_t, std::vector<size_t>>> group_list(groups.begin(),
                                                                   groups.end());
  std::vector<OverlayStateDb> overlays;
  overlays.reserve(group_list.size());
  for (size_t g = 0; g < group_list.size(); ++g) overlays.emplace_back(state);
  // Filled by the worker that owns group g; read only after the join.
  std::vector<GroupTouch> touches(group_list.size());

  std::atomic<size_t> next_group{0};
  std::atomic<bool> failed{false};
  std::string failure;
  std::mutex failure_mutex;

  auto worker = [&] {
    for (;;) {
      size_t g = next_group.fetch_add(1);
      if (g >= group_list.size() || failed.load()) return;
      OverlayStateDb& overlay = overlays[g];
      for (size_t index : group_list[g].second) {
        const Transaction& tx = transactions[index];
        ExecutionEngine* engine = engines.Route(tx);
        // Per-transaction overlay so a failed tx discards only its own
        // writes while earlier group writes survive.
        OverlayStateDb txn(&overlay);
        TxTouchSet touch;
        Result<Receipt> result = engine->Execute(tx, &txn, &touch);
        touches[g].reads.insert(touch.read_keys.begin(), touch.read_keys.end());
        touches[g].writes.insert(touch.written_keys.begin(),
                                 touch.written_keys.end());
        Receipt receipt;
        if (result.ok()) {
          receipt = std::move(result).value();
          if (receipt.success) {
            (void)txn.Commit();
          } else {
            txn.Discard();
          }
        } else if (result.status().IsVmTrap() ||
                   result.status().code() == StatusCode::kResourceExhausted ||
                   result.status().IsCryptoError() ||
                   result.status().IsNotFound()) {
          // Transaction-level failure: record and continue.
          txn.Discard();
          receipt.tx_hash = tx.Hash();
          receipt.success = false;
          receipt.status_message = result.status().ToString();
        } else {
          // Engine/infrastructure failure: abort the block.
          std::lock_guard<std::mutex> lock(failure_mutex);
          failure = result.status().ToString();
          failed.store(true);
          return;
        }
        receipts[index] = std::move(receipt);
      }
    }
  };

  uint32_t n_threads = std::max<uint32_t>(1, options_.parallelism);
  ThreadPool* pool = options_.pool != nullptr ? options_.pool : owned_pool_.get();
  if (n_threads == 1 || group_list.size() <= 1 || pool == nullptr) {
    worker();
  } else {
    // The calling thread is the n-th worker (inline run), so only
    // n_threads - 1 pool helpers are requested; a saturated pool simply
    // yields fewer helpers, never a deadlock.
    pool->RunOnWorkers(n_threads - 1, worker);
  }

  if (failed.load()) {
    return Status::Internal("executor: block aborted: " + failure);
  }

  // Cross-group overlap check: nested calls can write a contract that a
  // *different* group also read or wrote, which the envelope-level
  // conflict key never sees. All groups executed against the same parent
  // snapshot, so any such overlap makes the parallel schedule unsound —
  // those groups rerun serially below, after the clean groups merge.
  std::vector<bool> conflicted(group_list.size(), false);
  for (size_t g = 0; g < group_list.size(); ++g) {
    for (size_t h = g + 1; h < group_list.size(); ++h) {
      if (Intersects(touches[g].writes, touches[h].writes) ||
          Intersects(touches[g].writes, touches[h].reads) ||
          Intersects(touches[g].reads, touches[h].writes)) {
        conflicted[g] = true;
        conflicted[h] = true;
      }
    }
  }

  // Deterministic merge order for the clean groups.
  for (size_t g = 0; g < group_list.size(); ++g) {
    if (conflicted[g]) continue;
    CONFIDE_RETURN_NOT_OK(overlays[g].Commit());
  }

  // Serial re-execution of conflicted groups, in group-key order, each
  // seeing every previously committed write. Their first-run overlays are
  // dropped wholesale; receipts are replaced by the serial results.
  for (size_t g = 0; g < group_list.size(); ++g) {
    if (!conflicted[g]) continue;
    ExecutorMetrics::Get().regrouped_groups->Increment();
    overlays[g].Discard();
    OverlayStateDb redo(state);
    for (size_t index : group_list[g].second) {
      const Transaction& tx = transactions[index];
      ExecutionEngine* engine = engines.Route(tx);
      ExecutorMetrics::Get().reexecuted_txs->Increment();
      OverlayStateDb txn(&redo);
      Result<Receipt> result = engine->Execute(tx, &txn, nullptr);
      Receipt receipt;
      if (result.ok()) {
        receipt = std::move(result).value();
        if (receipt.success) {
          (void)txn.Commit();
        } else {
          txn.Discard();
        }
      } else if (result.status().IsVmTrap() ||
                 result.status().code() == StatusCode::kResourceExhausted ||
                 result.status().IsCryptoError() ||
                 result.status().IsNotFound()) {
        txn.Discard();
        receipt.tx_hash = tx.Hash();
        receipt.success = false;
        receipt.status_message = result.status().ToString();
      } else {
        return Status::Internal("executor: block aborted: " +
                                result.status().ToString());
      }
      receipts[index] = std::move(receipt);
    }
    CONFIDE_RETURN_NOT_OK(redo.Commit());
  }
  return receipts;
}

}  // namespace confide::chain
