#include "chain/executor.h"

#include <map>
#include <thread>

namespace confide::chain {

Result<std::vector<Receipt>> BlockExecutor::ExecuteBlock(
    const std::vector<Transaction>& transactions, const EngineSet& engines,
    StateDb* state) const {
  std::vector<Receipt> receipts(transactions.size());

  // Group by conflict key, preserving in-block order within each group.
  std::map<uint64_t, std::vector<size_t>> groups;
  for (size_t i = 0; i < transactions.size(); ++i) {
    ExecutionEngine* engine = engines.Route(transactions[i]);
    if (engine == nullptr) {
      return Status::InvalidArgument("executor: no engine for tx type");
    }
    groups[engine->ConflictKey(transactions[i])].push_back(i);
  }

  // Each worker drains whole groups; writes stage in a per-group overlay
  // and merge in deterministic group order afterwards.
  std::vector<std::pair<uint64_t, std::vector<size_t>>> group_list(groups.begin(),
                                                                   groups.end());
  std::vector<OverlayStateDb> overlays;
  overlays.reserve(group_list.size());
  for (size_t g = 0; g < group_list.size(); ++g) overlays.emplace_back(state);

  std::atomic<size_t> next_group{0};
  std::atomic<bool> failed{false};
  std::string failure;
  std::mutex failure_mutex;

  auto worker = [&] {
    for (;;) {
      size_t g = next_group.fetch_add(1);
      if (g >= group_list.size() || failed.load()) return;
      OverlayStateDb& overlay = overlays[g];
      for (size_t index : group_list[g].second) {
        const Transaction& tx = transactions[index];
        ExecutionEngine* engine = engines.Route(tx);
        // Per-transaction overlay so a failed tx discards only its own
        // writes while earlier group writes survive.
        OverlayStateDb txn(&overlay);
        Result<Receipt> result = engine->Execute(tx, &txn);
        Receipt receipt;
        if (result.ok()) {
          receipt = std::move(result).value();
          if (receipt.success) {
            (void)txn.Commit();
          } else {
            txn.Discard();
          }
        } else if (result.status().IsVmTrap() ||
                   result.status().code() == StatusCode::kResourceExhausted ||
                   result.status().IsCryptoError() ||
                   result.status().IsNotFound()) {
          // Transaction-level failure: record and continue.
          txn.Discard();
          receipt.tx_hash = tx.Hash();
          receipt.success = false;
          receipt.status_message = result.status().ToString();
        } else {
          // Engine/infrastructure failure: abort the block.
          std::lock_guard<std::mutex> lock(failure_mutex);
          failure = result.status().ToString();
          failed.store(true);
          return;
        }
        receipts[index] = std::move(receipt);
      }
    }
  };

  uint32_t n_threads = std::max<uint32_t>(1, options_.parallelism);
  if (n_threads == 1 || group_list.size() <= 1) {
    worker();
  } else {
    std::vector<std::thread> threads;
    for (uint32_t t = 0; t < n_threads; ++t) threads.emplace_back(worker);
    for (std::thread& thread : threads) thread.join();
  }

  if (failed.load()) {
    return Status::Internal("executor: block aborted: " + failure);
  }
  // Deterministic merge order.
  for (OverlayStateDb& overlay : overlays) {
    CONFIDE_RETURN_NOT_OK(overlay.Commit());
  }
  return receipts;
}

}  // namespace confide::chain
