/// \file merkle.h
/// \brief Binary SHA-256 Merkle tree with inclusion proofs.
///
/// Blocks commit to their transactions and receipts through Merkle roots;
/// SPV-style consensus reads (paper §3.3) verify inclusion proofs against
/// roots fetched from a quorum of nodes.

#pragma once

#include <vector>

#include "common/bytes.h"
#include "common/status.h"
#include "crypto/sha256.h"

namespace confide::crypto {

/// \brief One step of a Merkle inclusion proof.
struct MerkleProofStep {
  Hash256 sibling;
  bool sibling_is_left = false;
};

/// \brief Inclusion proof for one leaf.
struct MerkleProof {
  size_t leaf_index = 0;
  std::vector<MerkleProofStep> steps;
};

/// \brief Immutable Merkle tree built over leaf byte strings.
///
/// Leaves are hashed with a 0x00 domain-separation prefix and interior
/// nodes with 0x01, preventing leaf/node confusion attacks. An odd node at
/// any level is paired with itself.
class MerkleTree {
 public:
  /// \brief Builds the tree; an empty leaf set yields the hash of an empty
  /// string as root.
  explicit MerkleTree(const std::vector<Bytes>& leaves);

  const Hash256& Root() const { return levels_.back()[0]; }
  size_t LeafCount() const { return leaf_count_; }

  /// \brief Produces an inclusion proof for leaf `index`.
  Result<MerkleProof> Prove(size_t index) const;

  /// \brief Verifies `proof` that `leaf` is under `root`.
  static bool Verify(const Hash256& root, ByteView leaf, const MerkleProof& proof);

  /// \brief Leaf hash with domain separation.
  static Hash256 HashLeaf(ByteView leaf);

  /// \brief Interior-node hash with domain separation.
  static Hash256 HashInterior(const Hash256& left, const Hash256& right);

 private:
  size_t leaf_count_;
  std::vector<std::vector<Hash256>> levels_;  // levels_[0] = leaf hashes
};

}  // namespace confide::crypto
