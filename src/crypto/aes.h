/// \file aes.h
/// \brief AES-128/192/256 block cipher (FIPS 197) from scratch.
///
/// The S-box is derived at static-init time from the GF(2^8) inverse plus
/// the affine transform, so there is no hand-transcribed table to get wrong.
/// This is a portable reference implementation (the paper uses AES-NI via
/// the Intel SGX SDK — algorithmic behaviour is identical, only throughput
/// differs).

#pragma once

#include <array>
#include <cstdint>

#include "common/bytes.h"
#include "common/status.h"

namespace confide::crypto {

/// \brief Expanded-key AES context supporting 128/192/256-bit keys.
class Aes {
 public:
  /// \brief Builds a context from a 16/24/32-byte key.
  static Result<Aes> Create(ByteView key);

  /// \brief Encrypts one 16-byte block. `in` and `out` may alias.
  void EncryptBlock(const uint8_t in[16], uint8_t out[16]) const;

  /// \brief Decrypts one 16-byte block. `in` and `out` may alias.
  void DecryptBlock(const uint8_t in[16], uint8_t out[16]) const;

  int rounds() const { return rounds_; }

 private:
  Aes() = default;

  // Expanded key: (rounds + 1) * 16 bytes, max 15 * 16 = 240.
  std::array<uint8_t, 240> round_keys_{};
  int rounds_ = 0;
};

}  // namespace confide::crypto
