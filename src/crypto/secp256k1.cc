#include "crypto/secp256k1.h"

#include <cstring>

#include "common/endian.h"
#include "common/metrics.h"
#include "crypto/hmac.h"
#include "crypto/keccak.h"

namespace confide::crypto {

namespace {

// ---------------------------------------------------------------------------
// 256-bit unsigned integers, 4x64 little-endian limbs.
// ---------------------------------------------------------------------------

struct U256 {
  uint64_t v[4] = {0, 0, 0, 0};

  static U256 FromU64(uint64_t x) {
    U256 r;
    r.v[0] = x;
    return r;
  }

  static U256 FromBytesBe(const uint8_t b[32]) {
    U256 r;
    for (int i = 0; i < 4; ++i) r.v[3 - i] = LoadBe64(b + 8 * i);
    return r;
  }

  void ToBytesBe(uint8_t b[32]) const {
    for (int i = 0; i < 4; ++i) StoreBe64(b + 8 * i, v[3 - i]);
  }

  bool IsZero() const { return (v[0] | v[1] | v[2] | v[3]) == 0; }

  bool Bit(int i) const { return (v[i >> 6] >> (i & 63)) & 1; }

  bool operator==(const U256& o) const {
    return v[0] == o.v[0] && v[1] == o.v[1] && v[2] == o.v[2] && v[3] == o.v[3];
  }
};

int Cmp(const U256& a, const U256& b) {
  for (int i = 3; i >= 0; --i) {
    if (a.v[i] < b.v[i]) return -1;
    if (a.v[i] > b.v[i]) return 1;
  }
  return 0;
}

// a + b; returns carry out.
uint64_t AddCarry(const U256& a, const U256& b, U256* out) {
  unsigned __int128 carry = 0;
  for (int i = 0; i < 4; ++i) {
    unsigned __int128 s = (unsigned __int128)a.v[i] + b.v[i] + carry;
    out->v[i] = (uint64_t)s;
    carry = s >> 64;
  }
  return (uint64_t)carry;
}

// a - b; returns borrow out (1 if a < b).
uint64_t SubBorrow(const U256& a, const U256& b, U256* out) {
  unsigned __int128 borrow = 0;
  for (int i = 0; i < 4; ++i) {
    unsigned __int128 d = (unsigned __int128)a.v[i] - b.v[i] - borrow;
    out->v[i] = (uint64_t)d;
    borrow = (d >> 64) & 1;
  }
  return (uint64_t)borrow;
}

struct U512 {
  uint64_t v[8] = {0};
};

U512 Mul(const U256& a, const U256& b) {
  U512 r;
  for (int i = 0; i < 4; ++i) {
    unsigned __int128 carry = 0;
    for (int j = 0; j < 4; ++j) {
      unsigned __int128 cur =
          (unsigned __int128)a.v[i] * b.v[j] + r.v[i + j] + carry;
      r.v[i + j] = (uint64_t)cur;
      carry = cur >> 64;
    }
    r.v[i + 4] += (uint64_t)carry;
  }
  return r;
}

// ---------------------------------------------------------------------------
// Field arithmetic mod p = 2^256 - 2^32 - 977.
// ---------------------------------------------------------------------------

const U256 kP = [] {
  U256 p;
  p.v[0] = 0xFFFFFFFEFFFFFC2FULL;
  p.v[1] = 0xFFFFFFFFFFFFFFFFULL;
  p.v[2] = 0xFFFFFFFFFFFFFFFFULL;
  p.v[3] = 0xFFFFFFFFFFFFFFFFULL;
  return p;
}();

// 2^256 mod p = 2^32 + 977.
constexpr uint64_t kPComplement = 0x1000003D1ULL;

const U256 kN = [] {
  U256 n;
  n.v[0] = 0xBFD25E8CD0364141ULL;
  n.v[1] = 0xBAAEDCE6AF48A03BULL;
  n.v[2] = 0xFFFFFFFFFFFFFFFEULL;
  n.v[3] = 0xFFFFFFFFFFFFFFFFULL;
  return n;
}();

// 2^256 mod n (= 2^256 - n since n > 2^255).
const U256 kNComplement = [] {
  U256 zero;
  U256 r;
  SubBorrow(zero, kN, &r);  // 2^256 - n via wraparound.
  return r;
}();

void ModAdd(const U256& a, const U256& b, const U256& m, uint64_t m_comp_lo,
            U256* out);

// Reduces a 512-bit value mod p using 2^256 ≡ kPComplement.
U256 ReduceP(const U512& x) {
  // x = hi * 2^256 + lo  ->  lo + hi * c, where c fits in 64+ bits.
  U256 lo, hi;
  std::memcpy(lo.v, x.v, 32);
  std::memcpy(hi.v, x.v + 4, 32);

  // hi * c: 256 x 33 bits -> at most 289 bits; track the overflow limb.
  U256 prod;
  uint64_t overflow = 0;
  {
    unsigned __int128 carry = 0;
    for (int i = 0; i < 4; ++i) {
      unsigned __int128 cur = (unsigned __int128)hi.v[i] * kPComplement + carry;
      prod.v[i] = (uint64_t)cur;
      carry = cur >> 64;
    }
    overflow = (uint64_t)carry;
  }

  U256 acc;
  uint64_t carry = AddCarry(lo, prod, &acc);
  uint64_t extra = overflow + carry;  // quantity of 2^256 still outstanding

  while (extra > 0) {
    // Fold extra * 2^256 ≡ extra * c.
    U256 fold;
    unsigned __int128 f = (unsigned __int128)extra * kPComplement;
    fold.v[0] = (uint64_t)f;
    fold.v[1] = (uint64_t)(f >> 64);
    extra = AddCarry(acc, fold, &acc);
  }
  while (Cmp(acc, kP) >= 0) {
    SubBorrow(acc, kP, &acc);
  }
  return acc;
}

U256 FAdd(const U256& a, const U256& b) {
  U256 r;
  uint64_t carry = AddCarry(a, b, &r);
  if (carry || Cmp(r, kP) >= 0) SubBorrow(r, kP, &r);
  return r;
}

U256 FSub(const U256& a, const U256& b) {
  U256 r;
  uint64_t borrow = SubBorrow(a, b, &r);
  if (borrow) AddCarry(r, kP, &r);
  return r;
}

U256 FMul(const U256& a, const U256& b) { return ReduceP(Mul(a, b)); }
U256 FSqr(const U256& a) { return FMul(a, a); }

U256 FPow(const U256& base, const U256& exp) {
  U256 result = U256::FromU64(1);
  U256 acc = base;
  for (int i = 0; i < 256; ++i) {
    if (exp.Bit(i)) result = FMul(result, acc);
    acc = FSqr(acc);
  }
  return result;
}

U256 FInv(const U256& a) {
  U256 p_minus_2;
  SubBorrow(kP, U256::FromU64(2), &p_minus_2);
  return FPow(a, p_minus_2);
}

// ---------------------------------------------------------------------------
// Scalar arithmetic mod n.
// ---------------------------------------------------------------------------

// Reduces a 512-bit value mod n using 2^256 ≡ kNComplement (129 bits).
U256 ReduceN(const U512& x) {
  U256 lo, hi;
  std::memcpy(lo.v, x.v, 32);
  std::memcpy(hi.v, x.v + 4, 32);

  // Iterate: value = lo + hi * kNComplement until hi part vanishes.
  while (!hi.IsZero()) {
    U512 prod = Mul(hi, kNComplement);
    U256 plo, phi;
    std::memcpy(plo.v, prod.v, 32);
    std::memcpy(phi.v, prod.v + 4, 32);
    U256 acc;
    uint64_t carry = AddCarry(lo, plo, &acc);
    lo = acc;
    hi = phi;
    // Propagate the addition carry into hi.
    if (carry) {
      U256 one = U256::FromU64(1);
      AddCarry(hi, one, &hi);
    }
  }
  while (Cmp(lo, kN) >= 0) SubBorrow(lo, kN, &lo);
  return lo;
}

U256 NAdd(const U256& a, const U256& b) {
  U256 r;
  uint64_t carry = AddCarry(a, b, &r);
  if (carry) {
    // r + 2^256 ≡ r + kNComplement.
    AddCarry(r, kNComplement, &r);
  }
  while (Cmp(r, kN) >= 0) SubBorrow(r, kN, &r);
  return r;
}

U256 NMul(const U256& a, const U256& b) { return ReduceN(Mul(a, b)); }

U256 NPow(const U256& base, const U256& exp) {
  U256 result = U256::FromU64(1);
  U256 acc = base;
  for (int i = 0; i < 256; ++i) {
    if (exp.Bit(i)) result = NMul(result, acc);
    acc = NMul(acc, acc);
  }
  return result;
}

U256 NInv(const U256& a) {
  U256 n_minus_2;
  SubBorrow(kN, U256::FromU64(2), &n_minus_2);
  return NPow(a, n_minus_2);
}

// Reduces a 256-bit big-endian byte string mod n.
U256 ReduceBytesModN(const uint8_t b[32]) {
  U256 x = U256::FromBytesBe(b);
  while (Cmp(x, kN) >= 0) SubBorrow(x, kN, &x);
  return x;
}

// ---------------------------------------------------------------------------
// Curve points. Jacobian coordinates (X, Z) with infinity flagged by Z == 0.
// ---------------------------------------------------------------------------

struct JacobianPoint {
  U256 x, y, z;
  bool IsInfinity() const { return z.IsZero(); }
  static JacobianPoint Infinity() {
    JacobianPoint p;
    p.x = U256::FromU64(1);
    p.y = U256::FromU64(1);
    p.z = U256();  // zero
    return p;
  }
};

struct AffinePoint {
  U256 x, y;
  bool infinity = false;
};

const AffinePoint kG = [] {
  AffinePoint g;
  g.x.v[3] = 0x79BE667EF9DCBBACULL;
  g.x.v[2] = 0x55A06295CE870B07ULL;
  g.x.v[1] = 0x029BFCDB2DCE28D9ULL;
  g.x.v[0] = 0x59F2815B16F81798ULL;
  g.y.v[3] = 0x483ADA7726A3C465ULL;
  g.y.v[2] = 0x5DA4FBFC0E1108A8ULL;
  g.y.v[1] = 0xFD17B448A6855419ULL;
  g.y.v[0] = 0x9C47D08FFB10D4B8ULL;
  return g;
}();

JacobianPoint ToJacobian(const AffinePoint& p) {
  JacobianPoint j;
  if (p.infinity) return JacobianPoint::Infinity();
  j.x = p.x;
  j.y = p.y;
  j.z = U256::FromU64(1);
  return j;
}

AffinePoint ToAffine(const JacobianPoint& p) {
  AffinePoint a;
  if (p.IsInfinity()) {
    a.infinity = true;
    return a;
  }
  U256 zinv = FInv(p.z);
  U256 zinv2 = FSqr(zinv);
  U256 zinv3 = FMul(zinv2, zinv);
  a.x = FMul(p.x, zinv2);
  a.y = FMul(p.y, zinv3);
  return a;
}

// Point doubling (dbl-2009-l formulas specialized for a = 0).
JacobianPoint Double(const JacobianPoint& p) {
  if (p.IsInfinity() || p.y.IsZero()) return JacobianPoint::Infinity();
  U256 a = FSqr(p.x);                       // X^2
  U256 b = FSqr(p.y);                       // Y^2
  U256 c = FSqr(b);                         // Y^4
  // D = 2*((X+B)^2 - A - C)
  U256 xb = FAdd(p.x, b);
  U256 d = FSub(FSub(FSqr(xb), a), c);
  d = FAdd(d, d);
  U256 e = FAdd(FAdd(a, a), a);             // 3*X^2
  U256 f = FSqr(e);
  JacobianPoint r;
  r.x = FSub(f, FAdd(d, d));                // F - 2D
  U256 c8 = FAdd(c, c);
  c8 = FAdd(c8, c8);
  c8 = FAdd(c8, c8);                        // 8*Y^4
  r.y = FSub(FMul(e, FSub(d, r.x)), c8);
  U256 yz = FMul(p.y, p.z);
  r.z = FAdd(yz, yz);                       // 2*Y*Z
  return r;
}

// General Jacobian addition.
JacobianPoint Add(const JacobianPoint& p, const JacobianPoint& q) {
  if (p.IsInfinity()) return q;
  if (q.IsInfinity()) return p;
  U256 z1z1 = FSqr(p.z);
  U256 z2z2 = FSqr(q.z);
  U256 u1 = FMul(p.x, z2z2);
  U256 u2 = FMul(q.x, z1z1);
  U256 s1 = FMul(FMul(p.y, q.z), z2z2);
  U256 s2 = FMul(FMul(q.y, p.z), z1z1);
  if (u1 == u2) {
    if (s1 == s2) return Double(p);
    return JacobianPoint::Infinity();
  }
  U256 h = FSub(u2, u1);
  U256 i = FSqr(FAdd(h, h));
  U256 j = FMul(h, i);
  U256 r2 = FSub(s2, s1);
  r2 = FAdd(r2, r2);
  U256 v = FMul(u1, i);
  JacobianPoint r;
  r.x = FSub(FSub(FSqr(r2), j), FAdd(v, v));
  U256 s1j = FMul(s1, j);
  r.y = FSub(FMul(r2, FSub(v, r.x)), FAdd(s1j, s1j));
  // Z3 = ((Z1+Z2)^2 - Z1Z1 - Z2Z2) * H
  U256 zsum = FAdd(p.z, q.z);
  r.z = FMul(FSub(FSub(FSqr(zsum), z1z1), z2z2), h);
  return r;
}

JacobianPoint ScalarMult(const U256& k, const AffinePoint& base) {
  JacobianPoint result = JacobianPoint::Infinity();
  JacobianPoint acc = ToJacobian(base);
  for (int i = 0; i < 256; ++i) {
    if (k.Bit(i)) result = Add(result, acc);
    acc = Double(acc);
  }
  return result;
}

bool IsOnCurve(const U256& x, const U256& y) {
  // y^2 == x^3 + 7 (mod p)
  U256 lhs = FSqr(y);
  U256 rhs = FAdd(FMul(FSqr(x), x), U256::FromU64(7));
  return lhs == rhs;
}

U256 PrivToScalar(const PrivateKey& priv) {
  return U256::FromBytesBe(priv.data());
}

bool ScalarValid(const U256& s) { return !s.IsZero() && Cmp(s, kN) < 0; }

void EncodePoint(const AffinePoint& p, PublicKey* out) {
  p.x.ToBytesBe(out->data());
  p.y.ToBytesBe(out->data() + 32);
}

Result<AffinePoint> DecodePoint(const PublicKey& pub) {
  AffinePoint p;
  p.x = U256::FromBytesBe(pub.data());
  p.y = U256::FromBytesBe(pub.data() + 32);
  if (Cmp(p.x, kP) >= 0 || Cmp(p.y, kP) >= 0 || !IsOnCurve(p.x, p.y)) {
    return Status::CryptoError("public key is not a curve point");
  }
  return p;
}

}  // namespace

KeyPair GenerateKeyPair(Drbg* rng) {
  KeyPair kp;
  for (;;) {
    rng->Fill(kp.priv.data(), kp.priv.size());
    U256 d = PrivToScalar(kp.priv);
    if (!ScalarValid(d)) continue;
    AffinePoint pub = ToAffine(ScalarMult(d, kG));
    EncodePoint(pub, &kp.pub);
    return kp;
  }
}

Result<PublicKey> DerivePublicKey(const PrivateKey& priv) {
  U256 d = PrivToScalar(priv);
  if (!ScalarValid(d)) {
    return Status::InvalidArgument("private key scalar out of range");
  }
  AffinePoint pub = ToAffine(ScalarMult(d, kG));
  PublicKey out;
  EncodePoint(pub, &out);
  return out;
}

bool IsValidPublicKey(const PublicKey& pub) {
  return DecodePoint(pub).ok();
}

Result<Signature> EcdsaSign(const PrivateKey& priv, const Hash256& digest) {
  static metrics::Counter* ops = metrics::GetCounter("crypto.ecdsa.sign.count");
  ops->Increment();
  U256 d = PrivToScalar(priv);
  if (!ScalarValid(d)) {
    return Status::InvalidArgument("private key scalar out of range");
  }
  U256 z = ReduceBytesModN(digest.data());

  // Deterministic nonce: HMAC(priv, digest || counter), RFC-6979 flavoured.
  for (uint32_t counter = 0;; ++counter) {
    uint8_t ctr_bytes[4];
    StoreBe32(ctr_bytes, counter);
    Bytes nonce_input = Concat(HashView(digest), ByteView(ctr_bytes, 4));
    Hash256 k_bytes = HmacSha256(ByteView(priv.data(), priv.size()), nonce_input);
    U256 k = ReduceBytesModN(k_bytes.data());
    if (!ScalarValid(k)) continue;

    AffinePoint kg = ToAffine(ScalarMult(k, kG));
    if (kg.infinity) continue;
    U256 r = kg.x;
    while (Cmp(r, kN) >= 0) SubBorrow(r, kN, &r);
    if (r.IsZero()) continue;

    U256 s = NMul(NInv(k), NAdd(z, NMul(r, d)));
    if (s.IsZero()) continue;

    // Normalize s to the low half (malleability guard).
    U256 half_n = kN;
    // half_n = (n - 1) / 2 computed via right shift of n (n is odd).
    for (int i = 0; i < 4; ++i) {
      half_n.v[i] = (kN.v[i] >> 1) | (i < 3 ? (kN.v[i + 1] << 63) : 0);
    }
    if (Cmp(s, half_n) > 0) {
      SubBorrow(kN, s, &s);
    }

    Signature sig;
    r.ToBytesBe(sig.data());
    s.ToBytesBe(sig.data() + 32);
    return sig;
  }
}

bool EcdsaVerify(const PublicKey& pub, const Hash256& digest, const Signature& sig) {
  static metrics::Counter* ops = metrics::GetCounter("crypto.ecdsa.verify.count");
  ops->Increment();
  auto point = DecodePoint(pub);
  if (!point.ok()) return false;

  U256 r = U256::FromBytesBe(sig.data());
  U256 s = U256::FromBytesBe(sig.data() + 32);
  if (!ScalarValid(r) || !ScalarValid(s)) return false;

  U256 z = ReduceBytesModN(digest.data());
  U256 s_inv = NInv(s);
  U256 u1 = NMul(z, s_inv);
  U256 u2 = NMul(r, s_inv);

  JacobianPoint sum = Add(ScalarMult(u1, kG), ScalarMult(u2, *point));
  if (sum.IsInfinity()) return false;
  AffinePoint rp = ToAffine(sum);
  U256 rx = rp.x;
  while (Cmp(rx, kN) >= 0) SubBorrow(rx, kN, &rx);
  return rx == r;
}

Result<Hash256> EcdhSharedSecret(const PrivateKey& priv, const PublicKey& pub) {
  static metrics::Counter* ops = metrics::GetCounter("crypto.ecdh.count");
  ops->Increment();
  U256 d = PrivToScalar(priv);
  if (!ScalarValid(d)) {
    return Status::InvalidArgument("private key scalar out of range");
  }
  CONFIDE_ASSIGN_OR_RETURN(AffinePoint q, DecodePoint(pub));
  JacobianPoint shared = ScalarMult(d, q);
  if (shared.IsInfinity()) {
    return Status::CryptoError("ECDH produced the point at infinity");
  }
  AffinePoint a = ToAffine(shared);
  uint8_t x_bytes[32];
  a.x.ToBytesBe(x_bytes);
  return Sha256::Digest(ByteView(x_bytes, 32));
}

std::array<uint8_t, 20> PublicKeyToAddress(const PublicKey& pub) {
  Hash256 h = Keccak256::Digest(ByteView(pub.data(), pub.size()));
  std::array<uint8_t, 20> addr;
  std::memcpy(addr.data(), h.data() + 12, 20);
  return addr;
}

}  // namespace confide::crypto
