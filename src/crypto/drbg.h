/// \file drbg.h
/// \brief Deterministic random bit generator built on ChaCha20.
///
/// Deterministic seeding keeps every simulation reproducible: enclaves,
/// nodes, and workload generators all draw from seeded Drbg instances.

#pragma once

#include <cstdint>

#include "common/bytes.h"

namespace confide::crypto {

/// \brief ChaCha20-based DRBG. Not thread-safe; one instance per consumer.
class Drbg {
 public:
  /// \brief Seeds from arbitrary bytes (hashed to a 32-byte key).
  explicit Drbg(ByteView seed);

  /// \brief Seeds from a 64-bit value (convenient for tests/benchmarks).
  explicit Drbg(uint64_t seed);

  /// \brief Fills `out` with pseudo-random bytes.
  void Fill(uint8_t* out, size_t len);

  /// \brief Returns `len` pseudo-random bytes.
  Bytes Generate(size_t len);

  /// \brief Uniform 64-bit value.
  uint64_t NextU64();

  /// \brief Uniform value in [0, bound) for bound > 0.
  uint64_t NextBounded(uint64_t bound);

 private:
  void Refill();

  uint8_t key_[32];
  uint64_t counter_ = 0;
  uint8_t block_[64];
  size_t block_pos_ = 64;  // exhausted
};

}  // namespace confide::crypto
