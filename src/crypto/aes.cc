#include "crypto/aes.h"

#include <cstring>

namespace confide::crypto {

namespace {

// GF(2^8) multiply with the AES polynomial x^8 + x^4 + x^3 + x + 1.
uint8_t GfMul(uint8_t a, uint8_t b) {
  uint8_t p = 0;
  for (int i = 0; i < 8; ++i) {
    if (b & 1) p ^= a;
    bool hi = a & 0x80;
    a <<= 1;
    if (hi) a ^= 0x1b;
    b >>= 1;
  }
  return p;
}

struct SboxTables {
  uint8_t sbox[256];
  uint8_t inv_sbox[256];

  SboxTables() {
    // Multiplicative inverses via brute force (startup-only cost).
    uint8_t inv[256] = {0};
    for (int a = 1; a < 256; ++a) {
      for (int b = 1; b < 256; ++b) {
        if (GfMul(uint8_t(a), uint8_t(b)) == 1) {
          inv[a] = uint8_t(b);
          break;
        }
      }
    }
    for (int i = 0; i < 256; ++i) {
      uint8_t x = inv[i];
      // Affine transform: s = x ^ rotl(x,1) ^ rotl(x,2) ^ rotl(x,3) ^ rotl(x,4) ^ 0x63.
      auto rotl8 = [](uint8_t v, int n) -> uint8_t {
        return uint8_t((v << n) | (v >> (8 - n)));
      };
      uint8_t s = x ^ rotl8(x, 1) ^ rotl8(x, 2) ^ rotl8(x, 3) ^ rotl8(x, 4) ^ 0x63;
      sbox[i] = s;
      inv_sbox[s] = uint8_t(i);
    }
  }
};

const SboxTables& Tables() {
  static const SboxTables tables;
  return tables;
}

void SubBytes(uint8_t state[16]) {
  const auto& t = Tables();
  for (int i = 0; i < 16; ++i) state[i] = t.sbox[state[i]];
}

void InvSubBytes(uint8_t state[16]) {
  const auto& t = Tables();
  for (int i = 0; i < 16; ++i) state[i] = t.inv_sbox[state[i]];
}

// State layout: column-major, state[r + 4c].
void ShiftRows(uint8_t s[16]) {
  uint8_t t;
  // Row 1: shift left 1.
  t = s[1]; s[1] = s[5]; s[5] = s[9]; s[9] = s[13]; s[13] = t;
  // Row 2: shift left 2.
  std::swap(s[2], s[10]);
  std::swap(s[6], s[14]);
  // Row 3: shift left 3 (== right 1).
  t = s[15]; s[15] = s[11]; s[11] = s[7]; s[7] = s[3]; s[3] = t;
}

void InvShiftRows(uint8_t s[16]) {
  uint8_t t;
  t = s[13]; s[13] = s[9]; s[9] = s[5]; s[5] = s[1]; s[1] = t;
  std::swap(s[2], s[10]);
  std::swap(s[6], s[14]);
  t = s[3]; s[3] = s[7]; s[7] = s[11]; s[11] = s[15]; s[15] = t;
}

void MixColumns(uint8_t s[16]) {
  for (int c = 0; c < 4; ++c) {
    uint8_t* col = s + 4 * c;
    uint8_t a0 = col[0], a1 = col[1], a2 = col[2], a3 = col[3];
    col[0] = GfMul(a0, 2) ^ GfMul(a1, 3) ^ a2 ^ a3;
    col[1] = a0 ^ GfMul(a1, 2) ^ GfMul(a2, 3) ^ a3;
    col[2] = a0 ^ a1 ^ GfMul(a2, 2) ^ GfMul(a3, 3);
    col[3] = GfMul(a0, 3) ^ a1 ^ a2 ^ GfMul(a3, 2);
  }
}

void InvMixColumns(uint8_t s[16]) {
  for (int c = 0; c < 4; ++c) {
    uint8_t* col = s + 4 * c;
    uint8_t a0 = col[0], a1 = col[1], a2 = col[2], a3 = col[3];
    col[0] = GfMul(a0, 14) ^ GfMul(a1, 11) ^ GfMul(a2, 13) ^ GfMul(a3, 9);
    col[1] = GfMul(a0, 9) ^ GfMul(a1, 14) ^ GfMul(a2, 11) ^ GfMul(a3, 13);
    col[2] = GfMul(a0, 13) ^ GfMul(a1, 9) ^ GfMul(a2, 14) ^ GfMul(a3, 11);
    col[3] = GfMul(a0, 11) ^ GfMul(a1, 13) ^ GfMul(a2, 9) ^ GfMul(a3, 14);
  }
}

void AddRoundKey(uint8_t s[16], const uint8_t* rk) {
  for (int i = 0; i < 16; ++i) s[i] ^= rk[i];
}

}  // namespace

Result<Aes> Aes::Create(ByteView key) {
  int nk;  // key length in 32-bit words
  switch (key.size()) {
    case 16: nk = 4; break;
    case 24: nk = 6; break;
    case 32: nk = 8; break;
    default:
      return Status::InvalidArgument("AES key must be 16, 24 or 32 bytes");
  }
  Aes aes;
  aes.rounds_ = nk + 6;
  const int total_words = 4 * (aes.rounds_ + 1);

  uint8_t* w = aes.round_keys_.data();
  std::memcpy(w, key.data(), key.size());

  const auto& t = Tables();
  uint8_t rcon = 0x01;
  for (int i = nk; i < total_words; ++i) {
    uint8_t temp[4];
    std::memcpy(temp, w + 4 * (i - 1), 4);
    if (i % nk == 0) {
      // RotWord + SubWord + Rcon.
      uint8_t first = temp[0];
      temp[0] = t.sbox[temp[1]] ^ rcon;
      temp[1] = t.sbox[temp[2]];
      temp[2] = t.sbox[temp[3]];
      temp[3] = t.sbox[first];
      rcon = GfMul(rcon, 2);
    } else if (nk > 6 && i % nk == 4) {
      for (int j = 0; j < 4; ++j) temp[j] = t.sbox[temp[j]];
    }
    for (int j = 0; j < 4; ++j) {
      w[4 * i + j] = w[4 * (i - nk) + j] ^ temp[j];
    }
  }
  return aes;
}

void Aes::EncryptBlock(const uint8_t in[16], uint8_t out[16]) const {
  uint8_t s[16];
  std::memcpy(s, in, 16);
  AddRoundKey(s, round_keys_.data());
  for (int r = 1; r < rounds_; ++r) {
    SubBytes(s);
    ShiftRows(s);
    MixColumns(s);
    AddRoundKey(s, round_keys_.data() + 16 * r);
  }
  SubBytes(s);
  ShiftRows(s);
  AddRoundKey(s, round_keys_.data() + 16 * rounds_);
  std::memcpy(out, s, 16);
}

void Aes::DecryptBlock(const uint8_t in[16], uint8_t out[16]) const {
  uint8_t s[16];
  std::memcpy(s, in, 16);
  AddRoundKey(s, round_keys_.data() + 16 * rounds_);
  for (int r = rounds_ - 1; r >= 1; --r) {
    InvShiftRows(s);
    InvSubBytes(s);
    AddRoundKey(s, round_keys_.data() + 16 * r);
    InvMixColumns(s);
  }
  InvShiftRows(s);
  InvSubBytes(s);
  AddRoundKey(s, round_keys_.data());
  std::memcpy(out, s, 16);
}

}  // namespace confide::crypto
