/// \file keccak.h
/// \brief Keccak-256 (the pre-FIPS Ethereum variant, pad 0x01) from scratch.
///
/// Used by the EVM SHA3 opcode, contract addresses, and the Crypto-Hash
/// synthetic workload (paper §6.1 runs SHA-256 and Keccak 100×).

#pragma once

#include <array>
#include <cstdint>

#include "common/bytes.h"
#include "crypto/sha256.h"

namespace confide::crypto {

/// \brief Incremental Keccak-256 sponge (rate 136 bytes, capacity 512 bits).
class Keccak256 {
 public:
  Keccak256() { Reset(); }

  void Reset();
  void Update(ByteView data);
  Hash256 Finish();

  /// \brief One-shot convenience.
  static Hash256 Digest(ByteView data);

 private:
  static constexpr size_t kRate = 136;

  void Permute();
  void Absorb(const uint8_t* block);

  uint64_t state_[25];
  uint8_t buf_[kRate];
  size_t buf_len_ = 0;
};

}  // namespace confide::crypto
