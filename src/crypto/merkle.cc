#include "crypto/merkle.h"

namespace confide::crypto {

Hash256 MerkleTree::HashLeaf(ByteView leaf) {
  Sha256 ctx;
  uint8_t prefix = 0x00;
  ctx.Update(ByteView(&prefix, 1));
  ctx.Update(leaf);
  return ctx.Finish();
}

Hash256 MerkleTree::HashInterior(const Hash256& left, const Hash256& right) {
  Sha256 ctx;
  uint8_t prefix = 0x01;
  ctx.Update(ByteView(&prefix, 1));
  ctx.Update(HashView(left));
  ctx.Update(HashView(right));
  return ctx.Finish();
}

MerkleTree::MerkleTree(const std::vector<Bytes>& leaves) : leaf_count_(leaves.size()) {
  std::vector<Hash256> level;
  if (leaves.empty()) {
    levels_.push_back({Sha256::Digest(ByteView{})});
    return;
  }
  level.reserve(leaves.size());
  for (const Bytes& leaf : leaves) level.push_back(HashLeaf(leaf));
  levels_.push_back(level);
  while (levels_.back().size() > 1) {
    const auto& prev = levels_.back();
    std::vector<Hash256> next;
    next.reserve((prev.size() + 1) / 2);
    for (size_t i = 0; i < prev.size(); i += 2) {
      const Hash256& left = prev[i];
      const Hash256& right = (i + 1 < prev.size()) ? prev[i + 1] : prev[i];
      next.push_back(HashInterior(left, right));
    }
    levels_.push_back(std::move(next));
  }
}

Result<MerkleProof> MerkleTree::Prove(size_t index) const {
  if (index >= leaf_count_) {
    return Status::OutOfRange("merkle leaf index out of range");
  }
  MerkleProof proof;
  proof.leaf_index = index;
  size_t pos = index;
  for (size_t lvl = 0; lvl + 1 < levels_.size(); ++lvl) {
    const auto& nodes = levels_[lvl];
    size_t sibling = (pos % 2 == 0) ? pos + 1 : pos - 1;
    if (sibling >= nodes.size()) sibling = pos;  // odd node pairs with itself
    proof.steps.push_back({nodes[sibling], sibling < pos});
    pos /= 2;
  }
  return proof;
}

bool MerkleTree::Verify(const Hash256& root, ByteView leaf, const MerkleProof& proof) {
  Hash256 acc = HashLeaf(leaf);
  for (const auto& step : proof.steps) {
    acc = step.sibling_is_left ? HashInterior(step.sibling, acc)
                               : HashInterior(acc, step.sibling);
  }
  return acc == root;
}

}  // namespace confide::crypto
