/// \file gcm.h
/// \brief AES-GCM authenticated encryption (NIST SP 800-38D) from scratch.
///
/// This is the AEAD used by CONFIDE's D-Protocol (state/code encryption
/// with associated data = contract identity, owner, security version), by
/// T-Protocol envelopes, and by the TEE simulator's page sealing.

#pragma once

#include "common/bytes.h"
#include "common/status.h"
#include "crypto/aes.h"

namespace confide::crypto {

/// \brief GCM tag length in bytes.
inline constexpr size_t kGcmTagSize = 16;
/// \brief Recommended IV length in bytes.
inline constexpr size_t kGcmIvSize = 12;

/// \brief AES-GCM context bound to one key.
class AesGcm {
 public:
  /// \brief Builds a context from a 16 or 32-byte AES key.
  static Result<AesGcm> Create(ByteView key);

  /// \brief Encrypts `plaintext` with `iv` (12 bytes recommended) and
  /// authenticates `aad`. Returns ciphertext || 16-byte tag.
  Result<Bytes> Seal(ByteView iv, ByteView plaintext, ByteView aad) const;

  /// \brief Decrypts Seal() output; fails with CryptoError when the tag or
  /// AAD does not verify.
  Result<Bytes> Open(ByteView iv, ByteView sealed, ByteView aad) const;

 private:
  explicit AesGcm(Aes aes);

  struct Block {
    uint64_t hi = 0;
    uint64_t lo = 0;
  };

  Block GhashMul(const Block& x) const;
  Block Ghash(ByteView aad, ByteView ciphertext) const;
  void Ctr(const uint8_t j0[16], ByteView in, uint8_t* out) const;

  Aes aes_;
  Block h_;  // hash subkey E(K, 0^128)
};

}  // namespace confide::crypto
