#include "crypto/gcm.h"

#include <cstring>

#include "common/endian.h"
#include "common/metrics.h"

namespace confide::crypto {

namespace {

struct GcmMetrics {
  metrics::Counter* seal_ops = metrics::GetCounter("crypto.gcm.seal.count");
  metrics::Counter* seal_bytes = metrics::GetCounter("crypto.gcm.seal.bytes");
  metrics::Counter* open_ops = metrics::GetCounter("crypto.gcm.open.count");
  metrics::Counter* open_bytes = metrics::GetCounter("crypto.gcm.open.bytes");
  metrics::Counter* auth_failures =
      metrics::GetCounter("crypto.gcm.auth_failure.count");

  static const GcmMetrics& Get() {
    static const GcmMetrics instruments;
    return instruments;
  }
};

void Inc32(uint8_t block[16]) {
  uint32_t ctr = LoadBe32(block + 12);
  StoreBe32(block + 12, ctr + 1);
}

}  // namespace

AesGcm::AesGcm(Aes aes) : aes_(std::move(aes)) {
  uint8_t zero[16] = {0};
  uint8_t h[16];
  aes_.EncryptBlock(zero, h);
  h_.hi = LoadBe64(h);
  h_.lo = LoadBe64(h + 8);
}

Result<AesGcm> AesGcm::Create(ByteView key) {
  if (key.size() != 16 && key.size() != 32) {
    return Status::InvalidArgument("AES-GCM key must be 16 or 32 bytes");
  }
  CONFIDE_ASSIGN_OR_RETURN(Aes aes, Aes::Create(key));
  return AesGcm(std::move(aes));
}

// Multiplies x by the hash subkey in GF(2^128) (bit-reflected as per GCM).
AesGcm::Block AesGcm::GhashMul(const Block& x) const {
  Block z;
  Block v = h_;
  for (int i = 0; i < 128; ++i) {
    uint64_t bit =
        (i < 64) ? (x.hi >> (63 - i)) & 1 : (x.lo >> (127 - i)) & 1;
    if (bit) {
      z.hi ^= v.hi;
      z.lo ^= v.lo;
    }
    bool lsb = v.lo & 1;
    v.lo = (v.lo >> 1) | (v.hi << 63);
    v.hi >>= 1;
    if (lsb) v.hi ^= 0xe100000000000000ULL;
  }
  return z;
}

AesGcm::Block AesGcm::Ghash(ByteView aad, ByteView ciphertext) const {
  Block y;
  auto absorb = [&](ByteView data) {
    for (size_t pos = 0; pos < data.size(); pos += 16) {
      uint8_t block[16] = {0};
      size_t n = std::min<size_t>(16, data.size() - pos);
      std::memcpy(block, data.data() + pos, n);
      y.hi ^= LoadBe64(block);
      y.lo ^= LoadBe64(block + 8);
      y = GhashMul(y);
    }
  };
  absorb(aad);
  absorb(ciphertext);
  // Length block: [len(AAD)]64 || [len(C)]64, in bits.
  y.hi ^= uint64_t(aad.size()) * 8;
  y.lo ^= uint64_t(ciphertext.size()) * 8;
  y = GhashMul(y);
  return y;
}

void AesGcm::Ctr(const uint8_t j0[16], ByteView in, uint8_t* out) const {
  uint8_t counter[16];
  std::memcpy(counter, j0, 16);
  uint8_t keystream[16];
  for (size_t pos = 0; pos < in.size(); pos += 16) {
    Inc32(counter);
    aes_.EncryptBlock(counter, keystream);
    size_t n = std::min<size_t>(16, in.size() - pos);
    for (size_t i = 0; i < n; ++i) out[pos + i] = in[pos + i] ^ keystream[i];
  }
}

Result<Bytes> AesGcm::Seal(ByteView iv, ByteView plaintext, ByteView aad) const {
  GcmMetrics::Get().seal_ops->Increment();
  GcmMetrics::Get().seal_bytes->Increment(plaintext.size());
  uint8_t j0[16] = {0};
  if (iv.size() == kGcmIvSize) {
    std::memcpy(j0, iv.data(), kGcmIvSize);
    j0[15] = 1;
  } else if (!iv.empty()) {
    Block g = Ghash(ByteView{}, iv);
    // GHASH(IV || pad || [0]64 || [len(IV)]64) — Ghash() appended the length
    // block with aad-len 0 and data-len len(IV), which matches the spec.
    StoreBe64(j0, g.hi);
    StoreBe64(j0 + 8, g.lo);
  } else {
    return Status::InvalidArgument("GCM IV must be non-empty");
  }

  Bytes out(plaintext.size() + kGcmTagSize);
  Ctr(j0, plaintext, out.data());

  Block s = Ghash(aad, ByteView(out.data(), plaintext.size()));
  uint8_t tag[16];
  StoreBe64(tag, s.hi);
  StoreBe64(tag + 8, s.lo);
  uint8_t e_j0[16];
  aes_.EncryptBlock(j0, e_j0);
  for (int i = 0; i < 16; ++i) tag[i] ^= e_j0[i];
  std::memcpy(out.data() + plaintext.size(), tag, kGcmTagSize);
  return out;
}

Result<Bytes> AesGcm::Open(ByteView iv, ByteView sealed, ByteView aad) const {
  GcmMetrics::Get().open_ops->Increment();
  if (sealed.size() < kGcmTagSize) {
    GcmMetrics::Get().auth_failures->Increment();
    return Status::CryptoError("GCM ciphertext shorter than tag");
  }
  GcmMetrics::Get().open_bytes->Increment(sealed.size() - kGcmTagSize);
  ByteView ciphertext = sealed.first(sealed.size() - kGcmTagSize);
  ByteView tag = sealed.last(kGcmTagSize);

  uint8_t j0[16] = {0};
  if (iv.size() == kGcmIvSize) {
    std::memcpy(j0, iv.data(), kGcmIvSize);
    j0[15] = 1;
  } else if (!iv.empty()) {
    Block g = Ghash(ByteView{}, iv);
    StoreBe64(j0, g.hi);
    StoreBe64(j0 + 8, g.lo);
  } else {
    return Status::InvalidArgument("GCM IV must be non-empty");
  }

  Block s = Ghash(aad, ciphertext);
  uint8_t expected[16];
  StoreBe64(expected, s.hi);
  StoreBe64(expected + 8, s.lo);
  uint8_t e_j0[16];
  aes_.EncryptBlock(j0, e_j0);
  for (int i = 0; i < 16; ++i) expected[i] ^= e_j0[i];

  if (!ConstantTimeEqual(ByteView(expected, 16), tag)) {
    GcmMetrics::Get().auth_failures->Increment();
    return Status::CryptoError("GCM authentication tag mismatch");
  }

  Bytes plain(ciphertext.size());
  Ctr(j0, ciphertext, plain.data());
  return plain;
}

}  // namespace confide::crypto
