/// \file hmac.h
/// \brief HMAC-SHA256 (RFC 2104) and HKDF (RFC 5869) from scratch.
///
/// HKDF derives per-transaction keys k_tx from the user root key and the
/// transaction hash (T-Protocol), and session keys from ECDH shared secrets
/// (K-Protocol MAP channels).

#pragma once

#include "common/bytes.h"
#include "crypto/sha256.h"

namespace confide::crypto {

/// \brief HMAC-SHA256 of `data` under `key`.
Hash256 HmacSha256(ByteView key, ByteView data);

/// \brief HKDF-Extract: PRK = HMAC(salt, ikm).
Hash256 HkdfExtract(ByteView salt, ByteView ikm);

/// \brief HKDF-Expand to `out_len` bytes (out_len <= 255 * 32).
Bytes HkdfExpand(const Hash256& prk, ByteView info, size_t out_len);

/// \brief Extract-then-expand convenience.
Bytes Hkdf(ByteView salt, ByteView ikm, ByteView info, size_t out_len);

}  // namespace confide::crypto
