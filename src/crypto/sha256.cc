#include "crypto/sha256.h"

#include <cstring>

#include "common/endian.h"
#include "common/metrics.h"

namespace confide::crypto {

namespace {

constexpr uint32_t kK[64] = {
    0x428a2f98, 0x71374491, 0xb5c0fbcf, 0xe9b5dba5, 0x3956c25b, 0x59f111f1,
    0x923f82a4, 0xab1c5ed5, 0xd807aa98, 0x12835b01, 0x243185be, 0x550c7dc3,
    0x72be5d74, 0x80deb1fe, 0x9bdc06a7, 0xc19bf174, 0xe49b69c1, 0xefbe4786,
    0x0fc19dc6, 0x240ca1cc, 0x2de92c6f, 0x4a7484aa, 0x5cb0a9dc, 0x76f988da,
    0x983e5152, 0xa831c66d, 0xb00327c8, 0xbf597fc7, 0xc6e00bf3, 0xd5a79147,
    0x06ca6351, 0x14292967, 0x27b70a85, 0x2e1b2138, 0x4d2c6dfc, 0x53380d13,
    0x650a7354, 0x766a0abb, 0x81c2c92e, 0x92722c85, 0xa2bfe8a1, 0xa81a664b,
    0xc24b8b70, 0xc76c51a3, 0xd192e819, 0xd6990624, 0xf40e3585, 0x106aa070,
    0x19a4c116, 0x1e376c08, 0x2748774c, 0x34b0bcb5, 0x391c0cb3, 0x4ed8aa4a,
    0x5b9cca4f, 0x682e6ff3, 0x748f82ee, 0x78a5636f, 0x84c87814, 0x8cc70208,
    0x90befffa, 0xa4506ceb, 0xbef9a3f7, 0xc67178f2,
};

}  // namespace

void Sha256::Reset() {
  state_ = {0x6a09e667, 0xbb67ae85, 0x3c6ef372, 0xa54ff53a,
            0x510e527f, 0x9b05688c, 0x1f83d9ab, 0x5be0cd19};
  total_len_ = 0;
  buf_len_ = 0;
}

void Sha256::Compress(const uint8_t block[64]) {
  uint32_t w[64];
  for (int i = 0; i < 16; ++i) w[i] = LoadBe32(block + 4 * i);
  for (int i = 16; i < 64; ++i) {
    uint32_t s0 = RotR32(w[i - 15], 7) ^ RotR32(w[i - 15], 18) ^ (w[i - 15] >> 3);
    uint32_t s1 = RotR32(w[i - 2], 17) ^ RotR32(w[i - 2], 19) ^ (w[i - 2] >> 10);
    w[i] = w[i - 16] + s0 + w[i - 7] + s1;
  }

  uint32_t a = state_[0], b = state_[1], c = state_[2], d = state_[3];
  uint32_t e = state_[4], f = state_[5], g = state_[6], h = state_[7];

  for (int i = 0; i < 64; ++i) {
    uint32_t s1 = RotR32(e, 6) ^ RotR32(e, 11) ^ RotR32(e, 25);
    uint32_t ch = (e & f) ^ (~e & g);
    uint32_t t1 = h + s1 + ch + kK[i] + w[i];
    uint32_t s0 = RotR32(a, 2) ^ RotR32(a, 13) ^ RotR32(a, 22);
    uint32_t maj = (a & b) ^ (a & c) ^ (b & c);
    uint32_t t2 = s0 + maj;
    h = g; g = f; f = e; e = d + t1;
    d = c; c = b; b = a; a = t1 + t2;
  }

  state_[0] += a; state_[1] += b; state_[2] += c; state_[3] += d;
  state_[4] += e; state_[5] += f; state_[6] += g; state_[7] += h;
}

void Sha256::Update(ByteView data) {
  total_len_ += data.size();
  size_t pos = 0;
  if (buf_len_ > 0) {
    size_t take = std::min(data.size(), size_t(64) - buf_len_);
    std::memcpy(buf_ + buf_len_, data.data(), take);
    buf_len_ += take;
    pos = take;
    if (buf_len_ == 64) {
      Compress(buf_);
      buf_len_ = 0;
    }
  }
  while (pos + 64 <= data.size()) {
    Compress(data.data() + pos);
    pos += 64;
  }
  if (pos < data.size()) {
    std::memcpy(buf_, data.data() + pos, data.size() - pos);
    buf_len_ = data.size() - pos;
  }
}

Hash256 Sha256::Finish() {
  uint64_t bit_len = total_len_ * 8;
  uint8_t pad[72];
  size_t pad_len = (buf_len_ < 56) ? (56 - buf_len_) : (120 - buf_len_);
  pad[0] = 0x80;
  std::memset(pad + 1, 0, pad_len - 1);
  StoreBe64(pad + pad_len, bit_len);
  Update(ByteView(pad, pad_len + 8));

  Hash256 out;
  for (int i = 0; i < 8; ++i) StoreBe32(out.data() + 4 * i, state_[i]);
  return out;
}

Hash256 Sha256::Digest(ByteView data) {
  static metrics::Counter* ops = metrics::GetCounter("crypto.sha256.count");
  static metrics::Counter* bytes = metrics::GetCounter("crypto.sha256.bytes");
  ops->Increment();
  bytes->Increment(data.size());
  Sha256 ctx;
  ctx.Update(data);
  return ctx.Finish();
}

}  // namespace confide::crypto
