#include "crypto/drbg.h"

#include <cstring>

#include "common/endian.h"
#include "crypto/sha256.h"

namespace confide::crypto {

namespace {

inline void QuarterRound(uint32_t& a, uint32_t& b, uint32_t& c, uint32_t& d) {
  a += b; d ^= a; d = RotL32(d, 16);
  c += d; b ^= c; b = RotL32(b, 12);
  a += b; d ^= a; d = RotL32(d, 8);
  c += d; b ^= c; b = RotL32(b, 7);
}

// ChaCha20 block function (RFC 7539) with a 64-bit counter and zero nonce —
// used as a PRG, not for encryption.
void ChaChaBlock(const uint8_t key[32], uint64_t counter, uint8_t out[64]) {
  uint32_t state[16];
  state[0] = 0x61707865; state[1] = 0x3320646e;
  state[2] = 0x79622d32; state[3] = 0x6b206574;
  for (int i = 0; i < 8; ++i) state[4 + i] = LoadLe32(key + 4 * i);
  state[12] = uint32_t(counter);
  state[13] = uint32_t(counter >> 32);
  state[14] = 0;
  state[15] = 0;

  uint32_t x[16];
  std::memcpy(x, state, sizeof(x));
  for (int round = 0; round < 10; ++round) {
    QuarterRound(x[0], x[4], x[8], x[12]);
    QuarterRound(x[1], x[5], x[9], x[13]);
    QuarterRound(x[2], x[6], x[10], x[14]);
    QuarterRound(x[3], x[7], x[11], x[15]);
    QuarterRound(x[0], x[5], x[10], x[15]);
    QuarterRound(x[1], x[6], x[11], x[12]);
    QuarterRound(x[2], x[7], x[8], x[13]);
    QuarterRound(x[3], x[4], x[9], x[14]);
  }
  for (int i = 0; i < 16; ++i) {
    StoreLe32(out + 4 * i, x[i] + state[i]);
  }
}

}  // namespace

Drbg::Drbg(ByteView seed) {
  Hash256 h = Sha256::Digest(seed);
  std::memcpy(key_, h.data(), 32);
}

Drbg::Drbg(uint64_t seed) {
  uint8_t buf[8];
  StoreLe64(buf, seed);
  Hash256 h = Sha256::Digest(ByteView(buf, 8));
  std::memcpy(key_, h.data(), 32);
}

void Drbg::Refill() {
  ChaChaBlock(key_, counter_++, block_);
  block_pos_ = 0;
}

void Drbg::Fill(uint8_t* out, size_t len) {
  size_t pos = 0;
  while (pos < len) {
    if (block_pos_ == 64) Refill();
    size_t take = std::min(len - pos, size_t(64) - block_pos_);
    std::memcpy(out + pos, block_ + block_pos_, take);
    block_pos_ += take;
    pos += take;
  }
}

Bytes Drbg::Generate(size_t len) {
  Bytes out(len);
  Fill(out.data(), len);
  return out;
}

uint64_t Drbg::NextU64() {
  uint8_t buf[8];
  Fill(buf, 8);
  return LoadLe64(buf);
}

uint64_t Drbg::NextBounded(uint64_t bound) {
  // Rejection sampling to avoid modulo bias.
  uint64_t limit = bound * (UINT64_MAX / bound);
  uint64_t v;
  do {
    v = NextU64();
  } while (v >= limit);
  return v % bound;
}

}  // namespace confide::crypto
