/// \file secp256k1.h
/// \brief secp256k1 elliptic-curve cryptography from scratch.
///
/// Provides ECDSA (transaction signatures, attestation report signatures)
/// and ECDH (T-Protocol envelope key agreement, K-Protocol MAP channels).
/// Field/scalar arithmetic uses 4x64-bit limbs with special-form reduction
/// for p = 2^256 - 2^32 - 977; points use Jacobian coordinates.
///
/// This is a correctness-first portable implementation (not constant-time
/// hardened — the host is a simulator, not production silicon).

#pragma once

#include <array>
#include <cstdint>
#include <optional>

#include "common/bytes.h"
#include "common/status.h"
#include "crypto/drbg.h"
#include "crypto/sha256.h"

namespace confide::crypto {

/// \brief 32-byte big-endian scalar (private key).
using PrivateKey = std::array<uint8_t, 32>;

/// \brief Uncompressed public key: 32-byte X || 32-byte Y (big-endian).
using PublicKey = std::array<uint8_t, 64>;

/// \brief ECDSA signature: 32-byte r || 32-byte s (big-endian), s normalized
/// to the low half-order.
using Signature = std::array<uint8_t, 64>;

/// \brief Key pair container.
struct KeyPair {
  PrivateKey priv;
  PublicKey pub;
};

/// \brief Derives a valid key pair from a DRBG (rejection-samples until the
/// scalar is in [1, n-1]).
KeyPair GenerateKeyPair(Drbg* rng);

/// \brief Computes the public key for a private key; fails on zero or
/// out-of-range scalars.
Result<PublicKey> DerivePublicKey(const PrivateKey& priv);

/// \brief Returns true iff `pub` encodes a point on the curve.
bool IsValidPublicKey(const PublicKey& pub);

/// \brief ECDSA-signs a 32-byte message digest. Nonces are deterministic
/// (RFC-6979 flavoured: HMAC over key || digest), so signatures are
/// reproducible across runs.
Result<Signature> EcdsaSign(const PrivateKey& priv, const Hash256& digest);

/// \brief Verifies an ECDSA signature over a 32-byte digest.
bool EcdsaVerify(const PublicKey& pub, const Hash256& digest, const Signature& sig);

/// \brief ECDH: SHA-256 of the shared point's X coordinate.
Result<Hash256> EcdhSharedSecret(const PrivateKey& priv, const PublicKey& pub);

/// \brief 20-byte address derived Ethereum-style: last 20 bytes of
/// Keccak-256(pubkey).
std::array<uint8_t, 20> PublicKeyToAddress(const PublicKey& pub);

}  // namespace confide::crypto
