#include "crypto/keccak.h"

#include <cstring>

#include "common/endian.h"

namespace confide::crypto {

namespace {

constexpr uint64_t kRoundConstants[24] = {
    0x0000000000000001ULL, 0x0000000000008082ULL, 0x800000000000808aULL,
    0x8000000080008000ULL, 0x000000000000808bULL, 0x0000000080000001ULL,
    0x8000000080008081ULL, 0x8000000000008009ULL, 0x000000000000008aULL,
    0x0000000000000088ULL, 0x0000000080008009ULL, 0x000000008000000aULL,
    0x000000008000808bULL, 0x800000000000008bULL, 0x8000000000008089ULL,
    0x8000000000008003ULL, 0x8000000000008002ULL, 0x8000000000000080ULL,
    0x000000000000800aULL, 0x800000008000000aULL, 0x8000000080008081ULL,
    0x8000000000008080ULL, 0x0000000080000001ULL, 0x8000000080008008ULL,
};

constexpr int kRotations[25] = {
    0,  1,  62, 28, 27,  //
    36, 44, 6,  55, 20,  //
    3,  10, 43, 25, 39,  //
    41, 45, 15, 21, 8,   //
    18, 2,  61, 56, 14,
};

}  // namespace

void Keccak256::Reset() {
  std::memset(state_, 0, sizeof(state_));
  buf_len_ = 0;
}

void Keccak256::Permute() {
  uint64_t* a = state_;
  for (int round = 0; round < 24; ++round) {
    // Theta.
    uint64_t c[5], d[5];
    for (int x = 0; x < 5; ++x) {
      c[x] = a[x] ^ a[x + 5] ^ a[x + 10] ^ a[x + 15] ^ a[x + 20];
    }
    for (int x = 0; x < 5; ++x) {
      d[x] = c[(x + 4) % 5] ^ RotL64(c[(x + 1) % 5], 1);
      for (int y = 0; y < 5; ++y) a[x + 5 * y] ^= d[x];
    }
    // Rho + Pi.
    uint64_t b[25];
    for (int x = 0; x < 5; ++x) {
      for (int y = 0; y < 5; ++y) {
        b[y + 5 * ((2 * x + 3 * y) % 5)] = RotL64(a[x + 5 * y], kRotations[x + 5 * y]);
      }
    }
    // Chi.
    for (int x = 0; x < 5; ++x) {
      for (int y = 0; y < 5; ++y) {
        a[x + 5 * y] = b[x + 5 * y] ^ (~b[(x + 1) % 5 + 5 * y] & b[(x + 2) % 5 + 5 * y]);
      }
    }
    // Iota.
    a[0] ^= kRoundConstants[round];
  }
}

void Keccak256::Absorb(const uint8_t* block) {
  for (size_t i = 0; i < kRate / 8; ++i) {
    state_[i] ^= LoadLe64(block + 8 * i);
  }
  Permute();
}

void Keccak256::Update(ByteView data) {
  size_t pos = 0;
  if (buf_len_ > 0) {
    size_t take = std::min(data.size(), kRate - buf_len_);
    std::memcpy(buf_ + buf_len_, data.data(), take);
    buf_len_ += take;
    pos = take;
    if (buf_len_ == kRate) {
      Absorb(buf_);
      buf_len_ = 0;
    }
  }
  while (pos + kRate <= data.size()) {
    Absorb(data.data() + pos);
    pos += kRate;
  }
  if (pos < data.size()) {
    std::memcpy(buf_, data.data() + pos, data.size() - pos);
    buf_len_ = data.size() - pos;
  }
}

Hash256 Keccak256::Finish() {
  // Keccak (pre-SHA3) multi-rate padding: 0x01 ... 0x80.
  std::memset(buf_ + buf_len_, 0, kRate - buf_len_);
  buf_[buf_len_] ^= 0x01;
  buf_[kRate - 1] ^= 0x80;
  Absorb(buf_);

  Hash256 out;
  for (int i = 0; i < 4; ++i) StoreLe64(out.data() + 8 * i, state_[i]);
  return out;
}

Hash256 Keccak256::Digest(ByteView data) {
  Keccak256 ctx;
  ctx.Update(data);
  return ctx.Finish();
}

}  // namespace confide::crypto
