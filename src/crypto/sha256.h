/// \file sha256.h
/// \brief SHA-256 (FIPS 180-4), implemented from scratch.
///
/// Used for transaction hashes, enclave measurement, Merkle trees, HMAC and
/// HKDF key derivation throughout CONFIDE.

#pragma once

#include <array>
#include <cstdint>

#include "common/bytes.h"

namespace confide::crypto {

/// \brief 32-byte digest type.
using Hash256 = std::array<uint8_t, 32>;

/// \brief Incremental SHA-256 context.
class Sha256 {
 public:
  Sha256() { Reset(); }

  /// \brief Resets to the initial state.
  void Reset();

  /// \brief Absorbs `data`.
  void Update(ByteView data);

  /// \brief Finalizes and returns the digest. The context must be Reset()
  /// before reuse.
  Hash256 Finish();

  /// \brief One-shot convenience.
  static Hash256 Digest(ByteView data);

 private:
  void Compress(const uint8_t block[64]);

  std::array<uint32_t, 8> state_;
  uint64_t total_len_ = 0;
  uint8_t buf_[64];
  size_t buf_len_ = 0;
};

/// \brief Converts a Hash256 to an owning Bytes buffer.
inline Bytes HashToBytes(const Hash256& h) { return Bytes(h.begin(), h.end()); }

/// \brief Views a Hash256 as bytes.
inline ByteView HashView(const Hash256& h) { return ByteView(h.data(), h.size()); }

}  // namespace confide::crypto
