#include "crypto/hmac.h"

#include <cstring>

namespace confide::crypto {

Hash256 HmacSha256(ByteView key, ByteView data) {
  uint8_t block_key[64] = {0};
  if (key.size() > 64) {
    Hash256 kh = Sha256::Digest(key);
    std::memcpy(block_key, kh.data(), kh.size());
  } else {
    std::memcpy(block_key, key.data(), key.size());
  }

  uint8_t ipad[64], opad[64];
  for (int i = 0; i < 64; ++i) {
    ipad[i] = block_key[i] ^ 0x36;
    opad[i] = block_key[i] ^ 0x5c;
  }

  Sha256 inner;
  inner.Update(ByteView(ipad, 64));
  inner.Update(data);
  Hash256 inner_hash = inner.Finish();

  Sha256 outer;
  outer.Update(ByteView(opad, 64));
  outer.Update(HashView(inner_hash));
  return outer.Finish();
}

Hash256 HkdfExtract(ByteView salt, ByteView ikm) {
  return HmacSha256(salt, ikm);
}

Bytes HkdfExpand(const Hash256& prk, ByteView info, size_t out_len) {
  Bytes out;
  out.reserve(out_len);
  Bytes t;
  uint8_t counter = 1;
  while (out.size() < out_len) {
    Bytes input = Concat(ByteView(t), info, ByteView(&counter, 1));
    Hash256 block = HmacSha256(HashView(prk), input);
    t.assign(block.begin(), block.end());
    size_t take = std::min(t.size(), out_len - out.size());
    out.insert(out.end(), t.begin(), t.begin() + take);
    ++counter;
  }
  return out;
}

Bytes Hkdf(ByteView salt, ByteView ikm, ByteView info, size_t out_len) {
  return HkdfExpand(HkdfExtract(salt, ikm), info, out_len);
}

}  // namespace confide::crypto
