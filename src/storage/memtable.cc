#include "storage/memtable.h"

namespace confide::storage {

int MemTable::RandomHeight() {
  int height = 1;
  // 1/4 branching factor, as in LevelDB.
  while (height < kMaxHeight && rng_.NextBounded(4) == 0) ++height;
  return height;
}

void MemTable::FindGreaterOrEqual(const std::string& key,
                                  std::array<Node*, kMaxHeight>* prev) const {
  Node* node = head_.get();
  for (int level = height_ - 1; level >= 0; --level) {
    while (node->next[level] != nullptr && node->next[level]->key < key) {
      node = node->next[level];
    }
    (*prev)[level] = node;
  }
  for (int level = height_; level < kMaxHeight; ++level) {
    (*prev)[level] = head_.get();
  }
}

void MemTable::Put(const std::string& key, std::optional<Bytes> value) {
  std::array<Node*, kMaxHeight> prev;
  FindGreaterOrEqual(key, &prev);
  Node* existing = prev[0]->next[0];
  if (existing != nullptr && existing->key == key) {
    bytes_ -= existing->value ? existing->value->size() : 0;
    bytes_ += value ? value->size() : 0;
    existing->value = std::move(value);
    return;
  }
  int height = RandomHeight();
  if (height > height_) height_ = height;
  auto node = std::make_unique<Node>();
  node->key = key;
  node->value = std::move(value);
  for (int level = 0; level < height; ++level) {
    node->next[level] = prev[level]->next[level];
    prev[level]->next[level] = node.get();
  }
  bytes_ += key.size() + (node->value ? node->value->size() : 0) + sizeof(Node);
  ++count_;
  nodes_.push_back(std::move(node));
}

Lookup MemTable::Get(const std::string& key) const {
  std::array<Node*, kMaxHeight> prev;
  FindGreaterOrEqual(key, &prev);
  Node* node = prev[0]->next[0];
  if (node != nullptr && node->key == key) {
    return node->value ? Lookup::FoundValue(&*node->value)
                       : Lookup::FoundTombstone();
  }
  return Lookup::NotFound();
}

}  // namespace confide::storage
