/// \file block_store.h
/// \brief Append-only block storage over a KvStore, with a cloud-SSD write
/// latency model (the paper reports ~6 ms average block write latency on
/// cloud SSD, §6.4).

#pragma once

#include <memory>

#include "common/sim_clock.h"
#include "crypto/sha256.h"
#include "storage/kv_store.h"

namespace confide::storage {

/// \brief Disk latency model charged against a SimClock on block writes.
struct SsdModel {
  /// Fixed submission+commit latency per block write (ns). 6 ms default.
  uint64_t write_latency_ns = 6'000'000;
  /// Throughput-dependent extra cost (ns per KiB).
  uint64_t write_ns_per_kib = 4'000;
};

/// \brief Stores serialized blocks addressable by height and by hash.
class BlockStore {
 public:
  /// \brief `clock` may be null to disable latency modelling.
  BlockStore(std::shared_ptr<KvStore> kv, SimClock* clock = nullptr,
             SsdModel ssd = SsdModel{})
      : kv_(std::move(kv)), clock_(clock), ssd_(ssd) {}

  /// \brief Appends a block. Heights must be contiguous from 0.
  Status Append(uint64_t height, const crypto::Hash256& hash, Bytes block);

  /// \brief Stages an append into `batch` (height check + SSD latency
  /// model) without writing; call FinalizeAppend() once the batch has
  /// been durably written. Lets the node commit block data atomically
  /// with state and receipts.
  Status StageAppend(uint64_t height, const crypto::Hash256& hash, Bytes block,
                     WriteBatch* batch);

  /// \brief Completes a staged append (advances the height cursor).
  void FinalizeAppend() { ++next_height_; }

  Result<Bytes> GetByHeight(uint64_t height) const;
  Result<Bytes> GetByHash(const crypto::Hash256& hash) const;

  /// \brief Number of stored blocks (next height to append).
  uint64_t NextHeight() const { return next_height_; }

 private:
  static std::string HeightKey(uint64_t height);
  static std::string HashKey(const crypto::Hash256& hash);

  std::shared_ptr<KvStore> kv_;
  SimClock* clock_;
  SsdModel ssd_;
  uint64_t next_height_ = 0;
};

}  // namespace confide::storage
