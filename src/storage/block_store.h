/// \file block_store.h
/// \brief Append-only block storage over a KvStore, with a cloud-SSD write
/// latency model (the paper reports ~6 ms average block write latency on
/// cloud SSD, §6.4).

#pragma once

#include <memory>
#include <mutex>

#include "common/sim_clock.h"
#include "crypto/sha256.h"
#include "storage/kv_store.h"

namespace confide::storage {

/// \brief Disk latency model charged against a SimClock on block writes.
struct SsdModel {
  /// Fixed submission+commit latency per block write (ns). 6 ms default.
  uint64_t write_latency_ns = 6'000'000;
  /// Throughput-dependent extra cost (ns per KiB).
  uint64_t write_ns_per_kib = 4'000;
};

/// \brief Stores serialized blocks addressable by height and by hash.
class BlockStore {
 public:
  /// \brief `clock` may be null to disable latency modelling.
  BlockStore(std::shared_ptr<KvStore> kv, SimClock* clock = nullptr,
             SsdModel ssd = SsdModel{})
      : kv_(std::move(kv)), clock_(clock), ssd_(ssd) {}

  /// \brief Appends a block. Heights must be contiguous from 0.
  Status Append(uint64_t height, const crypto::Hash256& hash, Bytes block);

  /// \brief Stages an append into `batch` (height check + SSD latency
  /// model) without writing, and advances the *staged* height cursor so
  /// the pipeline can stage block N+1 before block N's batch lands; call
  /// FinalizeAppend() once the batch has been durably written, or
  /// RollbackStaged() to abandon every staged-but-unwritten append. Lets
  /// the node commit block data atomically with state and receipts.
  Status StageAppend(uint64_t height, const crypto::Hash256& hash, Bytes block,
                     WriteBatch* batch);

  /// \brief Completes the oldest staged append (advances the durable
  /// height cursor).
  void FinalizeAppend();

  /// \brief Drops staged-but-unfinalized appends; the staged cursor
  /// rewinds to the durable height (pipeline unwind after a failed
  /// commit).
  void RollbackStaged();

  Result<Bytes> GetByHeight(uint64_t height) const;
  Result<Bytes> GetByHash(const crypto::Hash256& hash) const;

  /// \brief Number of durably stored blocks (next height to finalize).
  uint64_t NextHeight() const;

  /// \brief Next height to stage (== NextHeight() when nothing in flight).
  uint64_t NextStagedHeight() const;

  /// \brief Rebuilds the height cursors from the underlying store after a
  /// restart: blocks land in the same atomic batch as state and receipts,
  /// so the highest contiguous stored height IS the committed prefix.
  /// No-op on an empty (or volatile) store.
  Status RecoverTip();

 private:
  static std::string HeightKey(uint64_t height);
  static std::string HashKey(const crypto::Hash256& hash);

  std::shared_ptr<KvStore> kv_;
  SimClock* clock_;
  SsdModel ssd_;
  mutable std::mutex mutex_;
  uint64_t next_height_ = 0;    ///< durable
  uint64_t staged_height_ = 0;  ///< includes in-flight appends
};

}  // namespace confide::storage
