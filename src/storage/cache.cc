#include "storage/cache.h"

#include <cstdlib>

#include "common/metrics.h"

namespace confide::storage {

namespace {

/// Approximate per-row bookkeeping (LRU node + index entry + Slot).
constexpr size_t kRowOverhead = 64;

struct CacheMetrics {
  metrics::Counter* hits = metrics::GetCounter("storage.cache.hit.count");
  metrics::Counter* misses = metrics::GetCounter("storage.cache.miss.count");
  metrics::Counter* inserts = metrics::GetCounter("storage.cache.insert.count");
  metrics::Counter* evictions = metrics::GetCounter("storage.cache.evict.count");
  metrics::Counter* rejected =
      metrics::GetCounter("storage.cache.admission_reject.count");
  metrics::Counter* invalidations =
      metrics::GetCounter("storage.cache.invalidate.count");
  metrics::Gauge* bytes = metrics::GetGauge("storage.cache.bytes");
  metrics::Gauge* entries = metrics::GetGauge("storage.cache.entries");

  static const CacheMetrics& Get() {
    static const CacheMetrics instruments;
    return instruments;
  }
};

}  // namespace

size_t RowCache::ChargeOf(const std::string& key,
                          const std::optional<Bytes>& value) {
  return key.size() + (value ? value->size() : 0) + kRowOverhead;
}

RowCache::RowCache(size_t budget_bytes)
    : budget_(budget_bytes),
      // Every row is charged at least kRowOverhead bytes, so the entry
      // count can never reach this capacity before the byte budget
      // evicts — the LRU's own count eviction (which would bypass the
      // byte accounting) stays dormant.
      lru_(budget_bytes / kRowOverhead + 2) {}

const RowCache::Row* RowCache::Get(const std::string& key) {
  if (!enabled()) return nullptr;
  const CacheMetrics& m = CacheMetrics::Get();
  Slot* slot = lru_.Get(key);
  if (slot == nullptr) {
    m.misses->Increment();
    return nullptr;
  }
  m.hits->Increment();
  return &slot->row;
}

void RowCache::Insert(const std::string& key, std::optional<Bytes> value) {
  if (!enabled()) return;
  const CacheMetrics& m = CacheMetrics::Get();
  size_t charge = ChargeOf(key, value);
  if (charge > budget_ / 8) {
    m.rejected->Increment();
    return;
  }
  if (Slot* existing = lru_.Get(key)) {
    bytes_ -= existing->charge;
    existing->row.value = std::move(value);
    existing->charge = charge;
    bytes_ += charge;
  } else {
    lru_.Put(key, Slot{{std::move(value)}, charge});
    bytes_ += charge;
    m.inserts->Increment();
  }
  while (bytes_ > budget_) {
    const std::string* victim = lru_.OldestKey();
    if (victim == nullptr) break;
    bytes_ -= lru_.Peek(*victim)->charge;
    lru_.Erase(*victim);
    m.evictions->Increment();
  }
  m.bytes->Set(int64_t(bytes_));
  m.entries->Set(int64_t(lru_.size()));
}

void RowCache::Invalidate(const std::string& key) {
  if (!enabled()) return;
  const Slot* slot = lru_.Peek(key);
  if (slot == nullptr) return;
  bytes_ -= slot->charge;
  lru_.Erase(key);
  const CacheMetrics& m = CacheMetrics::Get();
  m.invalidations->Increment();
  m.bytes->Set(int64_t(bytes_));
  m.entries->Set(int64_t(lru_.size()));
}

void RowCache::Clear() {
  lru_.Clear();
  bytes_ = 0;
  CacheMetrics::Get().bytes->Set(0);
  CacheMetrics::Get().entries->Set(0);
}

size_t ResolveCacheBudget(const std::optional<size_t>& configured,
                          size_t fallback_mb) {
  if (configured.has_value()) return *configured;
  const char* env = std::getenv("CONFIDE_STORAGE_CACHE_MB");
  size_t mb = fallback_mb;
  if (env != nullptr && env[0] != '\0') {
    mb = size_t(std::strtoull(env, nullptr, 10));
  }
  return mb * (size_t(1) << 20);
}

}  // namespace confide::storage
