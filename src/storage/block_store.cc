#include "storage/block_store.h"

#include "common/endian.h"

namespace confide::storage {

std::string BlockStore::HeightKey(uint64_t height) {
  uint8_t be[8];
  StoreBe64(be, height);
  return "blk/h/" + HexEncode(ByteView(be, 8));
}

std::string BlockStore::HashKey(const crypto::Hash256& hash) {
  return "blk/x/" + HexEncode(crypto::HashView(hash));
}

Status BlockStore::StageAppend(uint64_t height, const crypto::Hash256& hash,
                               Bytes block, WriteBatch* batch) {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    if (height != staged_height_) {
      return Status::InvalidArgument("non-contiguous block height");
    }
    ++staged_height_;
  }
  if (clock_ != nullptr) {
    clock_->AdvanceNs(ssd_.write_latency_ns +
                      ssd_.write_ns_per_kib * (block.size() / 1024));
  }
  uint8_t be[8];
  StoreBe64(be, height);
  batch->Put(HashKey(hash), Bytes(be, be + 8));
  batch->Put(HeightKey(height), std::move(block));
  return Status::OK();
}

void BlockStore::FinalizeAppend() {
  std::lock_guard<std::mutex> lock(mutex_);
  ++next_height_;
}

void BlockStore::RollbackStaged() {
  std::lock_guard<std::mutex> lock(mutex_);
  staged_height_ = next_height_;
}

uint64_t BlockStore::NextHeight() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return next_height_;
}

uint64_t BlockStore::NextStagedHeight() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return staged_height_;
}

Status BlockStore::RecoverTip() {
  uint64_t height = 0;
  for (;;) {
    auto block = kv_->Get(HeightKey(height));
    if (block.status().IsNotFound()) break;
    CONFIDE_RETURN_NOT_OK(block.status());
    ++height;
  }
  std::lock_guard<std::mutex> lock(mutex_);
  next_height_ = height;
  staged_height_ = height;
  return Status::OK();
}

Status BlockStore::Append(uint64_t height, const crypto::Hash256& hash, Bytes block) {
  WriteBatch batch;
  CONFIDE_RETURN_NOT_OK(StageAppend(height, hash, std::move(block), &batch));
  Status written = kv_->Write(batch);
  if (!written.ok()) {
    RollbackStaged();
    return written;
  }
  FinalizeAppend();
  return Status::OK();
}

Result<Bytes> BlockStore::GetByHeight(uint64_t height) const {
  return kv_->Get(HeightKey(height));
}

Result<Bytes> BlockStore::GetByHash(const crypto::Hash256& hash) const {
  CONFIDE_ASSIGN_OR_RETURN(Bytes height_bytes, kv_->Get(HashKey(hash)));
  if (height_bytes.size() != 8) return Status::Corruption("bad height index entry");
  return GetByHeight(LoadBe64(height_bytes.data()));
}

}  // namespace confide::storage
