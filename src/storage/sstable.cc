#include "storage/sstable.h"

#include <fcntl.h>
#include <unistd.h>

#include <cstdio>
#include <filesystem>

#include "common/crc32.h"
#include "common/endian.h"
#include "common/metrics.h"

namespace confide::storage {

namespace {

constexpr uint32_t kSsTableMagic = 0xC0F1DE57;
constexpr const char* kManifestName = "MANIFEST";

struct SsTableMetrics {
  metrics::Counter* written = metrics::GetCounter("storage.sst.written.count");
  metrics::Counter* written_bytes =
      metrics::GetCounter("storage.sst.written.bytes");
  metrics::Counter* loaded = metrics::GetCounter("storage.sst.loaded.count");

  static const SsTableMetrics& Get() {
    static const SsTableMetrics instruments;
    return instruments;
  }
};

void AppendU32(Bytes* out, uint32_t v) {
  uint8_t buf[4];
  StoreLe32(buf, v);
  Append(out, ByteView(buf, 4));
}

/// Durably writes `framed` to `path` via tmp-file + rename, then fsyncs
/// the directory so the rename itself survives a crash.
Status AtomicWrite(const std::string& path, ByteView framed) {
  std::string tmp = path + ".tmp";
  std::FILE* file = std::fopen(tmp.c_str(), "wb");
  if (file == nullptr) return Status::Internal("sst: cannot open " + tmp);
  bool ok = std::fwrite(framed.data(), 1, framed.size(), file) == framed.size();
  ok = ok && std::fflush(file) == 0 && ::fsync(::fileno(file)) == 0;
  std::fclose(file);
  if (!ok) {
    std::remove(tmp.c_str());
    return Status::Internal("sst: short write to " + tmp);
  }
  if (std::rename(tmp.c_str(), path.c_str()) != 0) {
    std::remove(tmp.c_str());
    return Status::Internal("sst: cannot rename " + tmp);
  }
  std::string dir = std::filesystem::path(path).parent_path().string();
  if (!dir.empty()) {
    int dfd = ::open(dir.c_str(), O_RDONLY);
    if (dfd >= 0) {
      ::fsync(dfd);
      ::close(dfd);
    }
  }
  return Status::OK();
}

Result<Bytes> ReadFramed(const std::string& path, const char* what) {
  std::FILE* file = std::fopen(path.c_str(), "rb");
  if (file == nullptr) {
    return Status::NotFound(std::string(what) + ": no file at " + path);
  }
  uint8_t header[16];
  if (std::fread(header, 1, 16, file) != 16) {
    std::fclose(file);
    return Status::Corruption(std::string(what) + ": truncated header");
  }
  if (LoadLe32(header) != kSsTableMagic) {
    std::fclose(file);
    return Status::Corruption(std::string(what) + ": bad magic");
  }
  uint32_t crc = LoadLe32(header + 4);
  uint64_t len = LoadLe64(header + 8);
  Bytes payload(len);
  bool ok = std::fread(payload.data(), 1, len, file) == len;
  std::fclose(file);
  if (!ok || Crc32(payload) != crc) {
    return Status::Corruption(std::string(what) + ": corrupt payload");
  }
  return payload;
}

Bytes Frame(ByteView payload) {
  Bytes framed;
  framed.reserve(16 + payload.size());
  AppendU32(&framed, kSsTableMagic);
  AppendU32(&framed, Crc32(payload));
  uint8_t len[8];
  StoreLe64(len, payload.size());
  Append(&framed, ByteView(len, 8));
  Append(&framed, payload);
  return framed;
}

}  // namespace

std::string SsTablePath(const std::string& dir, uint64_t number) {
  return dir + "/" + std::to_string(number) + ".sst";
}

Status WriteSsTable(const std::string& path,
                    const std::vector<RunEntry>& entries,
                    const BloomFilter& bloom) {
  Bytes payload;
  AppendU32(&payload, uint32_t(entries.size()));
  for (const RunEntry& entry : entries) {
    payload.push_back(entry.value ? 1 : 0);
    AppendU32(&payload, uint32_t(entry.key.size()));
    Append(&payload, AsByteView(entry.key));
    if (entry.value) {
      AppendU32(&payload, uint32_t(entry.value->size()));
      Append(&payload, *entry.value);
    }
  }
  Bytes bloom_wire = bloom.empty() ? Bytes{} : bloom.Serialize();
  AppendU32(&payload, uint32_t(bloom_wire.size()));
  Append(&payload, bloom_wire);
  Bytes framed = Frame(payload);
  CONFIDE_RETURN_NOT_OK(AtomicWrite(path, framed));
  SsTableMetrics::Get().written->Increment();
  SsTableMetrics::Get().written_bytes->Increment(framed.size());
  return Status::OK();
}

Result<SsTableContents> ReadSsTable(const std::string& path) {
  CONFIDE_ASSIGN_OR_RETURN(Bytes payload, ReadFramed(path, "sst"));
  SsTableContents contents;
  size_t pos = 0;
  auto read_u32 = [&](uint32_t* out) -> Status {
    if (pos + 4 > payload.size()) return Status::Corruption("sst: truncated u32");
    *out = LoadLe32(payload.data() + pos);
    pos += 4;
    return Status::OK();
  };
  uint32_t count;
  CONFIDE_RETURN_NOT_OK(read_u32(&count));
  contents.entries.reserve(count);
  for (uint32_t i = 0; i < count; ++i) {
    if (pos >= payload.size()) return Status::Corruption("sst: truncated entry");
    uint8_t kind = payload[pos++];
    uint32_t key_len;
    CONFIDE_RETURN_NOT_OK(read_u32(&key_len));
    if (pos + key_len > payload.size()) {
      return Status::Corruption("sst: truncated key");
    }
    RunEntry entry;
    entry.key.assign(reinterpret_cast<const char*>(payload.data() + pos), key_len);
    pos += key_len;
    if (kind == 1) {
      uint32_t value_len;
      CONFIDE_RETURN_NOT_OK(read_u32(&value_len));
      if (pos + value_len > payload.size()) {
        return Status::Corruption("sst: truncated value");
      }
      entry.value = Bytes(payload.begin() + pos, payload.begin() + pos + value_len);
      pos += value_len;
    } else if (kind != 0) {
      return Status::Corruption("sst: unknown entry kind");
    }
    contents.entries.push_back(std::move(entry));
  }
  uint32_t bloom_len;
  CONFIDE_RETURN_NOT_OK(read_u32(&bloom_len));
  if (pos + bloom_len != payload.size()) {
    return Status::Corruption("sst: trailing bytes");
  }
  if (bloom_len > 0) {
    CONFIDE_ASSIGN_OR_RETURN(
        contents.bloom,
        BloomFilter::Deserialize(ByteView(payload.data() + pos, bloom_len)));
  }
  SsTableMetrics::Get().loaded->Increment();
  return contents;
}

Status WriteManifest(const std::string& dir, const std::vector<uint64_t>& live) {
  Bytes payload;
  AppendU32(&payload, uint32_t(live.size()));
  for (uint64_t number : live) {
    uint8_t buf[8];
    StoreLe64(buf, number);
    Append(&payload, ByteView(buf, 8));
  }
  return AtomicWrite(dir + "/" + kManifestName, Frame(payload));
}

Result<std::vector<uint64_t>> ReadManifest(const std::string& dir) {
  auto payload = ReadFramed(dir + "/" + kManifestName, "manifest");
  if (payload.status().IsNotFound()) return std::vector<uint64_t>{};
  CONFIDE_RETURN_NOT_OK(payload.status());
  if (payload->size() < 4) return Status::Corruption("manifest: truncated count");
  uint32_t count = LoadLe32(payload->data());
  if (payload->size() != 4 + size_t(count) * 8) {
    return Status::Corruption("manifest: bad length");
  }
  std::vector<uint64_t> live;
  live.reserve(count);
  for (uint32_t i = 0; i < count; ++i) {
    live.push_back(LoadLe64(payload->data() + 4 + size_t(i) * 8));
  }
  return live;
}

std::vector<uint64_t> ListSsTables(const std::string& dir) {
  std::vector<uint64_t> numbers;
  std::error_code ec;
  for (const auto& entry : std::filesystem::directory_iterator(dir, ec)) {
    if (entry.path().extension() != ".sst") continue;
    const std::string stem = entry.path().stem().string();
    if (stem.empty() ||
        stem.find_first_not_of("0123456789") != std::string::npos) {
      continue;
    }
    numbers.push_back(std::strtoull(stem.c_str(), nullptr, 10));
  }
  return numbers;
}

}  // namespace confide::storage
