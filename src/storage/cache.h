/// \file cache.h
/// \brief Shared row cache for the LSM read path, built on common/lru.h
/// with a byte budget and an admission policy.
///
/// Entries are full rows (key → value, or a negative entry recording a
/// confirmed miss) populated when a point lookup had to probe the sorted
/// runs. The budget is bytes, not entries: each row is charged
/// key + value + bookkeeping overhead and the LRU tail is evicted until
/// the total fits. Admission policy: a row larger than 1/8 of the budget
/// is rejected outright — one oversized blob must not wipe out the whole
/// working set.
///
/// The cache is kept strictly coherent by the store: every write erases
/// the written key under the same lock that mutates the memtable, so a
/// hit can never serve a stale row. Not internally synchronized; the
/// owning LsmKvStore holds its lock around every call.
///
/// Budget knob: `CONFIDE_STORAGE_CACHE_MB` (LsmOptions::cache_bytes wins
/// when set); 0 disables the cache entirely.

#pragma once

#include <optional>
#include <string>

#include "common/bytes.h"
#include "common/lru.h"

namespace confide::storage {

class RowCache {
 public:
  /// \brief A zero budget builds a disabled cache (every call no-ops).
  explicit RowCache(size_t budget_bytes);

  bool enabled() const { return budget_ > 0; }

  /// \brief A cached row: a value, or a confirmed absence (negative
  /// entry, so repeated misses skip the runs too).
  struct Row {
    std::optional<Bytes> value;  ///< nullopt = cached NotFound
  };

  /// \brief Returns the row (refreshing recency) or nullptr.
  const Row* Get(const std::string& key);

  /// \brief Admits a row, evicting LRU rows past the byte budget.
  /// Oversized rows (> budget/8) are rejected.
  void Insert(const std::string& key, std::optional<Bytes> value);

  /// \brief Coherence hook: drops the row for a written key.
  void Invalidate(const std::string& key);

  void Clear();

  size_t bytes() const { return bytes_; }
  size_t entries() const { return lru_.size(); }
  size_t budget() const { return budget_; }

 private:
  struct Slot {
    Row row;
    size_t charge = 0;
  };

  static size_t ChargeOf(const std::string& key,
                         const std::optional<Bytes>& value);

  size_t budget_;
  size_t bytes_ = 0;
  LruCache<std::string, Slot> lru_;
};

/// \brief Resolves the cache budget: `configured` when set, otherwise the
/// CONFIDE_STORAGE_CACHE_MB environment variable, otherwise
/// `fallback_mb` megabytes.
size_t ResolveCacheBudget(const std::optional<size_t>& configured,
                          size_t fallback_mb);

}  // namespace confide::storage
