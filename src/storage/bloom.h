/// \file bloom.h
/// \brief Per-SSTable bloom filter (LevelDB lineage: double hashing over a
/// single 64-bit key hash). Built once when a sorted run is created,
/// serialized into the table footer, and consulted before any binary
/// search so a point lookup skips every run that cannot contain the key.
///
/// Metrics: `storage.bloom.probes` (MayContain calls against non-empty
/// filters), `storage.bloom.negatives` (probes answered "definitely
/// absent" — run probes avoided), `storage.bloom.false_positives`
/// (counted by the caller when a "maybe" probe finds nothing).

#pragma once

#include <string_view>
#include <vector>

#include "common/bytes.h"
#include "common/status.h"

namespace confide::storage {

class BloomFilter {
 public:
  /// An empty filter answers MayContain == true (no information).
  BloomFilter() = default;

  /// \brief Builds a filter sized `bits_per_key * keys.size()` bits with
  /// the probe count that minimizes the false-positive rate
  /// (k = bits_per_key * ln 2, clamped to [1, 30]).
  static BloomFilter Build(const std::vector<std::string_view>& keys,
                           size_t bits_per_key);

  /// \brief Definitely-absent test: false means the key is not in the
  /// table; true means it might be (false-positive rate ~0.8% at 10
  /// bits/key).
  bool MayContain(std::string_view key) const;

  bool empty() const { return bits_.empty(); }
  size_t bit_count() const { return bits_.size() * 8; }

  /// \brief Wire form persisted in the SSTable footer: [u8 probes][bits].
  Bytes Serialize() const;
  static Result<BloomFilter> Deserialize(ByteView wire);

 private:
  Bytes bits_;
  uint8_t num_probes_ = 0;
};

/// \brief 64-bit key hash feeding the double-hashing probe sequence
/// (exposed for tests).
uint64_t BloomHash(std::string_view key);

}  // namespace confide::storage
