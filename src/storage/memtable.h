/// \file memtable.h
/// \brief Skiplist-backed memtable (LevelDB/RocksDB lineage).
///
/// Entries are key → optional value; an empty optional is a tombstone that
/// shadows older sorted runs until compaction drops it.

#pragma once

#include <array>
#include <memory>
#include <optional>
#include <string>

#include "common/bytes.h"
#include "crypto/drbg.h"

namespace confide::storage {

/// \brief Explicit tri-state point-lookup result shared by the memtable
/// and the sorted runs. A probe either finds a live value, finds a
/// tombstone (the key was deleted at this level — stop probing older
/// structures), or finds nothing (fall through to the next structure).
enum class LookupState : uint8_t { kNotFound = 0, kFoundValue, kFoundTombstone };

struct Lookup {
  LookupState state = LookupState::kNotFound;
  const Bytes* value = nullptr;  ///< set iff state == kFoundValue

  static Lookup NotFound() { return {}; }
  static Lookup FoundValue(const Bytes* v) {
    return {LookupState::kFoundValue, v};
  }
  static Lookup FoundTombstone() {
    return {LookupState::kFoundTombstone, nullptr};
  }
  /// \brief Key present at this level (value or tombstone).
  bool found() const { return state != LookupState::kNotFound; }
};

/// \brief Ordered in-memory table. Not internally synchronized; callers
/// (LsmKvStore) hold their own lock.
class MemTable {
 public:
  MemTable() : rng_(0xC0FF1DE) {}

  /// \brief Inserts or overwrites; nullopt records a tombstone.
  void Put(const std::string& key, std::optional<Bytes> value);

  /// \brief Tri-state lookup; the returned value pointer stays valid
  /// until the table is destroyed (nodes are never removed).
  Lookup Get(const std::string& key) const;

  size_t entry_count() const { return count_; }
  size_t approximate_bytes() const { return bytes_; }

  /// \brief In-order visitation of all entries (tombstones included).
  template <typename Fn>
  void ForEach(Fn&& fn) const {
    for (Node* node = head_->next[0]; node != nullptr; node = node->next[0]) {
      fn(node->key, node->value);
    }
  }

 private:
  static constexpr int kMaxHeight = 12;

  struct Node {
    std::string key;
    std::optional<Bytes> value;
    std::array<Node*, kMaxHeight> next{};
  };

  int RandomHeight();
  // Returns the last node < key at every level.
  void FindGreaterOrEqual(const std::string& key,
                          std::array<Node*, kMaxHeight>* prev) const;

  std::unique_ptr<Node> head_ = std::make_unique<Node>();
  std::vector<std::unique_ptr<Node>> nodes_;
  int height_ = 1;
  size_t count_ = 0;
  size_t bytes_ = 0;
  mutable crypto::Drbg rng_;
};

}  // namespace confide::storage
