#include "storage/wal.h"

#include <unistd.h>

#include <algorithm>
#include <cstring>

#include "common/crc32.h"
#include "common/endian.h"
#include "common/fault.h"
#include "common/metrics.h"

namespace confide::storage {

namespace {

struct WalMetrics {
  metrics::Counter* appends = metrics::GetCounter("storage.wal.append.count");
  metrics::Counter* append_bytes = metrics::GetCounter("storage.wal.append.bytes");
  metrics::Counter* syncs = metrics::GetCounter("storage.wal.sync.count");
  metrics::Counter* replayed_batches =
      metrics::GetCounter("storage.wal.replay.batch.count");
  metrics::Counter* resets = metrics::GetCounter("storage.wal.reset.count");
  metrics::Counter* torn_tails =
      metrics::GetCounter("storage.wal.replay.torn_tail.count");
  metrics::Counter* group_commit_syncs =
      metrics::GetCounter("storage.wal.group_commit.syncs");
  metrics::Counter* group_commit_batched =
      metrics::GetCounter("storage.wal.group_commit.batched");

  static const WalMetrics& Get() {
    static const WalMetrics instruments;
    return instruments;
  }
};

}  // namespace

Bytes EncodeBatch(const WriteBatch& batch) {
  Bytes out;
  uint8_t buf[4];
  StoreLe32(buf, uint32_t(batch.ops().size()));
  Append(&out, ByteView(buf, 4));
  for (const auto& op : batch.ops()) {
    out.push_back(uint8_t(op.type));
    StoreLe32(buf, uint32_t(op.key.size()));
    Append(&out, ByteView(buf, 4));
    Append(&out, AsByteView(op.key));
    if (op.type == WriteBatch::OpType::kPut) {
      StoreLe32(buf, uint32_t(op.value.size()));
      Append(&out, ByteView(buf, 4));
      Append(&out, op.value);
    }
  }
  return out;
}

Result<WriteBatch> DecodeBatch(ByteView payload) {
  WriteBatch batch;
  size_t pos = 0;
  auto read_u32 = [&](uint32_t* out) -> Status {
    if (pos + 4 > payload.size()) return Status::Corruption("wal: truncated u32");
    *out = LoadLe32(payload.data() + pos);
    pos += 4;
    return Status::OK();
  };
  uint32_t count;
  CONFIDE_RETURN_NOT_OK(read_u32(&count));
  for (uint32_t i = 0; i < count; ++i) {
    if (pos >= payload.size()) return Status::Corruption("wal: truncated op");
    uint8_t type = payload[pos++];
    uint32_t key_len;
    CONFIDE_RETURN_NOT_OK(read_u32(&key_len));
    if (pos + key_len > payload.size()) return Status::Corruption("wal: truncated key");
    std::string key(reinterpret_cast<const char*>(payload.data() + pos), key_len);
    pos += key_len;
    if (type == uint8_t(WriteBatch::OpType::kPut)) {
      uint32_t val_len;
      CONFIDE_RETURN_NOT_OK(read_u32(&val_len));
      if (pos + val_len > payload.size()) {
        return Status::Corruption("wal: truncated value");
      }
      Bytes value(payload.begin() + pos, payload.begin() + pos + val_len);
      pos += val_len;
      batch.Put(std::move(key), std::move(value));
    } else if (type == uint8_t(WriteBatch::OpType::kDelete)) {
      batch.Delete(std::move(key));
    } else {
      return Status::Corruption("wal: unknown op type");
    }
  }
  if (pos != payload.size()) return Status::Corruption("wal: trailing bytes in batch");
  return batch;
}

Wal::~Wal() {
  if (file_ != nullptr) std::fclose(file_);
}

Result<std::unique_ptr<Wal>> Wal::Open(const std::string& path) {
  if (fault::FaultInjector::Global().ShouldFail("fault.storage.wal_open")) {
    return Status::Unavailable("wal: injected open failure for " + path);
  }
  std::FILE* file = std::fopen(path.c_str(), "ab");
  if (file == nullptr) {
    return Status::Internal("wal: cannot open " + path);
  }
  return std::unique_ptr<Wal>(new Wal(file, path));
}

Status Wal::Append(const WriteBatch& batch) {
  if (tainted_) {
    // A previous append failed partway through its record. If the process
    // survives (no crash) and keeps writing, drop the torn bytes first so
    // the log stays a clean sequence of whole records; a crash instead
    // leaves the torn tail for Replay to skip.
    std::fflush(file_);
    if (::ftruncate(::fileno(file_), off_t(good_offset_)) != 0) {
      return Status::Internal("wal: cannot repair torn tail");
    }
    tainted_ = false;
  }
  std::fseek(file_, 0, SEEK_END);
  long offset = std::ftell(file_);
  Bytes payload = EncodeBatch(batch);
  WalMetrics::Get().appends->Increment();
  WalMetrics::Get().append_bytes->Increment(payload.size() + 8);
  uint8_t header[8];
  StoreLe32(header, Crc32(payload));
  StoreLe32(header + 4, uint32_t(payload.size()));
  uint64_t persist_bytes = 0;
  if (fault::FaultInjector::Global().ShouldFail("fault.storage.wal_torn",
                                                &persist_bytes) &&
      persist_bytes < 8 + payload.size()) {
    // Simulated crash mid-write: only the first `persist_bytes` bytes of
    // the record make it to the file, then the writer "dies". Flush what
    // was written so a reopened replay sees exactly the torn prefix. A
    // crash point at or past the record end is not a torn write at all —
    // every byte landed — so that case falls through to the normal path.
    uint64_t head = std::min<uint64_t>(persist_bytes, 8);
    uint64_t body = std::min<uint64_t>(persist_bytes - head, payload.size());
    if (head > 0) std::fwrite(header, 1, size_t(head), file_);
    if (body > 0) std::fwrite(payload.data(), 1, size_t(body), file_);
    std::fflush(file_);
    tainted_ = persist_bytes > 0;
    good_offset_ = uint64_t(offset);
    return Status::Internal("wal: injected torn write");
  }
  if (std::fwrite(header, 1, 8, file_) != 8 ||
      std::fwrite(payload.data(), 1, payload.size(), file_) != payload.size()) {
    tainted_ = true;
    good_offset_ = uint64_t(offset);
    return Status::Internal("wal: short write");
  }
  ++appends_since_sync_;
  return Status::OK();
}

Status Wal::Sync() {
  WalMetrics::Get().syncs->Increment();
  if (fault::FaultInjector::Global().ShouldFail("fault.storage.wal_sync")) {
    sync_failing_ = true;
    return Status::Unavailable("wal: injected sync failure");
  }
  if (std::fflush(file_) != 0) return Status::Internal("wal: flush failed");
  if (::fsync(::fileno(file_)) != 0) return Status::Internal("wal: fsync failed");
  // Group-commit accounting: every append beyond the first that this one
  // fsync makes durable rode along for free (consecutive blocks' commits
  // coalesced into one device flush).
  if (appends_since_sync_ > 0) {
    WalMetrics::Get().group_commit_syncs->Increment();
    WalMetrics::Get().group_commit_batched->Increment(appends_since_sync_ - 1);
    appends_since_sync_ = 0;
  }
  if (sync_failing_) {
    // A sync succeeded after injected failures: the log is durable again.
    sync_failing_ = false;
    fault::NoteRecovered("fault.storage.wal_sync");
  }
  return Status::OK();
}

Status Wal::Replay(const std::string& path,
                   const std::function<void(const WriteBatch&)>& apply,
                   ReplayStats* stats) {
  std::FILE* file = std::fopen(path.c_str(), "rb");
  ReplayStats local;
  if (file == nullptr) {
    if (stats != nullptr) *stats = local;
    return Status::OK();  // no log yet
  }
  Status status = Status::OK();
  for (;;) {
    uint8_t header[8];
    size_t n = std::fread(header, 1, 8, file);
    if (n == 0) break;  // clean EOF
    if (n < 8) {        // torn header at tail: stop silently
      local.torn_tail = true;
      break;
    }
    uint32_t crc = LoadLe32(header);
    uint32_t len = LoadLe32(header + 4);
    Bytes payload(len);
    if (std::fread(payload.data(), 1, len, file) != len) {  // torn tail
      local.torn_tail = true;
      break;
    }
    if (Crc32(payload) != crc) {
      status = Status::Corruption("wal: crc mismatch");
      break;
    }
    auto batch = DecodeBatch(payload);
    if (!batch.ok()) {
      status = batch.status();
      break;
    }
    WalMetrics::Get().replayed_batches->Increment();
    ++local.records;
    local.good_offset += 8 + len;
    apply(*batch);
  }
  std::fclose(file);
  if (local.torn_tail) {
    WalMetrics::Get().torn_tails->Increment();
    // Surviving a torn tail — replaying the intact prefix and dropping the
    // partial record — is the recovery path for an injected torn write.
    fault::NoteRecovered("fault.storage.wal_torn");
  }
  if (stats != nullptr) *stats = local;
  return status;
}

Status Wal::TruncateTo(const std::string& path, uint64_t offset) {
  std::FILE* file = std::fopen(path.c_str(), "r+b");
  if (file == nullptr) return Status::OK();  // no log to repair
  int fd = ::fileno(file);
  if (::ftruncate(fd, off_t(offset)) != 0 || ::fsync(fd) != 0) {
    std::fclose(file);
    return Status::Internal("wal: repair truncation failed for " + path);
  }
  std::fclose(file);
  return Status::OK();
}

Status Wal::Reset() {
  if (fault::FaultInjector::Global().ShouldFail("fault.storage.wal_reset")) {
    return Status::Unavailable("wal: injected reset failure");
  }
  WalMetrics::Get().resets->Increment();
  std::fclose(file_);
  file_ = std::fopen(path_.c_str(), "wb");
  if (file_ == nullptr) return Status::Internal("wal: cannot truncate");
  // Push the truncation all the way to disk: without the fsync a crash
  // after a memtable flush could resurrect stale records on top of the
  // flushed run and double-apply them on recovery.
  if (std::fflush(file_) != 0 || ::fsync(::fileno(file_)) != 0) {
    return Status::Internal("wal: truncate sync failed");
  }
  return Status::OK();
}

}  // namespace confide::storage
