#include "storage/bloom.h"

#include <algorithm>
#include <cmath>

namespace confide::storage {

uint64_t BloomHash(std::string_view key) {
  // FNV-1a over the key, finished with a splitmix64 avalanche so short
  // sequential keys (the "k0", "k1", ... shape state keys take) spread
  // across the whole bit array.
  uint64_t h = 0xcbf29ce484222325ull;
  for (unsigned char c : key) {
    h ^= c;
    h *= 0x100000001b3ull;
  }
  h ^= h >> 30;
  h *= 0xbf58476d1ce4e5b9ull;
  h ^= h >> 27;
  h *= 0x94d049bb133111ebull;
  h ^= h >> 31;
  return h;
}

BloomFilter BloomFilter::Build(const std::vector<std::string_view>& keys,
                               size_t bits_per_key) {
  BloomFilter filter;
  if (keys.empty() || bits_per_key == 0) return filter;
  size_t bits = std::max<size_t>(64, keys.size() * bits_per_key);
  filter.bits_.assign((bits + 7) / 8, 0);
  bits = filter.bits_.size() * 8;
  filter.num_probes_ = uint8_t(std::clamp<int>(
      int(std::round(double(bits_per_key) * 0.6931)), 1, 30));
  for (std::string_view key : keys) {
    uint64_t h = BloomHash(key);
    // Double hashing: probe_i = h1 + i*h2 (Kirsch–Mitzenmacher).
    uint64_t delta = (h >> 33) | (h << 31);
    for (uint8_t i = 0; i < filter.num_probes_; ++i) {
      size_t bit = size_t(h % bits);
      filter.bits_[bit / 8] |= uint8_t(1u << (bit % 8));
      h += delta;
    }
  }
  return filter;
}

bool BloomFilter::MayContain(std::string_view key) const {
  if (bits_.empty()) return true;  // no filter, no information
  size_t bits = bits_.size() * 8;
  uint64_t h = BloomHash(key);
  uint64_t delta = (h >> 33) | (h << 31);
  for (uint8_t i = 0; i < num_probes_; ++i) {
    size_t bit = size_t(h % bits);
    if ((bits_[bit / 8] & (1u << (bit % 8))) == 0) return false;
    h += delta;
  }
  return true;
}

Bytes BloomFilter::Serialize() const {
  Bytes wire;
  wire.reserve(1 + bits_.size());
  wire.push_back(num_probes_);
  wire.insert(wire.end(), bits_.begin(), bits_.end());
  return wire;
}

Result<BloomFilter> BloomFilter::Deserialize(ByteView wire) {
  if (wire.empty()) return Status::Corruption("bloom: empty wire form");
  BloomFilter filter;
  filter.num_probes_ = wire[0];
  if (filter.num_probes_ == 0 || filter.num_probes_ > 30) {
    return Status::Corruption("bloom: bad probe count");
  }
  filter.bits_.assign(wire.begin() + 1, wire.end());
  if (filter.bits_.empty()) return Status::Corruption("bloom: no bit array");
  return filter;
}

}  // namespace confide::storage
