/// \file wal.h
/// \brief Write-ahead log: batches are framed with CRC-32 and fsync-free
/// appended; replay stops cleanly at the first torn/corrupt record.

#pragma once

#include <cstdio>
#include <string>

#include "common/bytes.h"
#include "common/status.h"
#include "storage/kv_store.h"

namespace confide::storage {

/// \brief Serializes a WriteBatch to its WAL payload.
Bytes EncodeBatch(const WriteBatch& batch);

/// \brief Parses a WAL payload back into a WriteBatch.
Result<WriteBatch> DecodeBatch(ByteView payload);

/// \brief What Replay() found in the log (recovery diagnostics).
struct ReplayStats {
  uint64_t records = 0;      ///< intact records applied
  bool torn_tail = false;    ///< log ended in a partially-written record
  uint64_t good_offset = 0;  ///< byte offset just past the last intact record
};

/// \brief Append-only write-ahead log.
///
/// Fault sites (see common/fault.h): `fault.storage.wal_open`,
/// `fault.storage.wal_torn` (Append persists only `arg` bytes of the
/// record, simulating a crash mid-write; an `arg` at or past the record
/// end means every byte landed, so the append simply succeeds),
/// `fault.storage.wal_sync`, `fault.storage.wal_reset`.
class Wal {
 public:
  ~Wal();
  Wal(const Wal&) = delete;
  Wal& operator=(const Wal&) = delete;

  /// \brief Opens (creating if needed) the log at `path` for appending.
  static Result<std::unique_ptr<Wal>> Open(const std::string& path);

  /// \brief Appends one batch record: [u32 crc][u32 len][payload].
  Status Append(const WriteBatch& batch);

  /// \brief Flushes buffered writes and fsyncs them to the device. When
  /// several appends accumulated since the last sync, one flush makes all
  /// of them durable — the group-commit path; `storage.wal.group_commit.
  /// batched` counts the appends that coalesced this way.
  Status Sync();

  /// \brief Replays every intact record of the log at `path` in order.
  /// Missing file is not an error (empty log). A torn tail record ends the
  /// replay without error (reported via `stats`); a mid-file CRC mismatch
  /// is Corruption.
  static Status Replay(const std::string& path,
                       const std::function<void(const WriteBatch&)>& apply,
                       ReplayStats* stats = nullptr);

  /// \brief Truncates the log at `path` to `offset` bytes and syncs the
  /// truncation to disk. Crash-recovery repair: after Replay reports a
  /// torn tail, cutting the file back to `ReplayStats::good_offset`
  /// removes the partial record so that records appended later are not
  /// preceded by garbage a future Replay would trip over. Missing file
  /// is not an error.
  static Status TruncateTo(const std::string& path, uint64_t offset);

  /// \brief Truncates the log (after a successful memtable flush). The
  /// truncation is synced to disk so a crash right after Reset cannot
  /// resurrect the old log contents.
  Status Reset();

 private:
  Wal(std::FILE* file, std::string path) : file_(file), path_(std::move(path)) {}

  std::FILE* file_;
  std::string path_;
  bool sync_failing_ = false;  ///< last Sync failed (injected); for recovery accounting
  bool tainted_ = false;       ///< last Append left a partial record on disk
  uint64_t good_offset_ = 0;   ///< end of the last whole record
  uint64_t appends_since_sync_ = 0;  ///< group-commit accounting
};

}  // namespace confide::storage
