/// \file sstable.h
/// \brief Durable sorted-run (SSTable) persistence plus the manifest that
/// names the live tables.
///
/// Before this layer existed a memtable flush kept the run in memory only
/// and truncated the WAL, so a crash after any flush silently lost the
/// flushed keys. Now a flush writes the run — entries and its bloom
/// filter — to `<wal_dir>/<number>.sst` before the WAL reset, and the
/// manifest records which table numbers are live (oldest first). Both
/// writes are atomic: data goes to a `.tmp` file, is fsynced, and renamed
/// into place, so a crash at any byte leaves either the old file set or
/// the new one — never a half-written table. Tables not listed in the
/// manifest (a crash between a compaction's table write and its manifest
/// install) are orphans: recovery deletes them.
///
/// File format (all little-endian):
///   [u32 magic][u32 crc over payload][u64 payload_len][payload]
///   payload = [u32 entry_count] entry* [u32 bloom_len][bloom wire]
///   entry   = [u8 kind][u32 key_len][key]([u32 value_len][value] if put)

#pragma once

#include <optional>
#include <string>
#include <vector>

#include "common/bytes.h"
#include "common/status.h"
#include "storage/bloom.h"

namespace confide::storage {

/// \brief Key/value (or tombstone) entry of a sorted run.
struct RunEntry {
  std::string key;
  std::optional<Bytes> value;  // nullopt = tombstone
};

/// \brief `<dir>/<number>.sst`.
std::string SsTablePath(const std::string& dir, uint64_t number);

/// \brief Atomically persists a run: tmp write, fsync, rename.
Status WriteSsTable(const std::string& path,
                    const std::vector<RunEntry>& entries,
                    const BloomFilter& bloom);

struct SsTableContents {
  std::vector<RunEntry> entries;
  BloomFilter bloom;
};

/// \brief Loads and CRC-checks a table written by WriteSsTable.
Result<SsTableContents> ReadSsTable(const std::string& path);

/// \brief Atomically records the live table numbers (oldest first).
Status WriteManifest(const std::string& dir, const std::vector<uint64_t>& live);

/// \brief Reads the manifest; a missing file is an empty table set.
Result<std::vector<uint64_t>> ReadManifest(const std::string& dir);

/// \brief Table numbers present on disk (`*.sst`), live or orphaned.
std::vector<uint64_t> ListSsTables(const std::string& dir);

}  // namespace confide::storage
