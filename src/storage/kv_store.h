/// \file kv_store.h
/// \brief Pluggable key-value storage interface.
///
/// The paper's platform deliberately leaves storage loosely coupled so
/// operators can pick their own KV store (§1, §2.4 "loosely coupling").
/// CONFIDE only sees this interface: contract states and transactions land
/// here, encrypted or plain according to the confidentiality model, and a
/// malicious host is assumed to read the raw database freely (§3.3).

#pragma once

#include <functional>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "common/bytes.h"
#include "common/status.h"

namespace confide::storage {

/// \brief An atomically applied batch of writes (RocksDB-style).
class WriteBatch {
 public:
  void Put(std::string key, Bytes value) {
    ops_.push_back({OpType::kPut, std::move(key), std::move(value)});
  }
  void Delete(std::string key) {
    ops_.push_back({OpType::kDelete, std::move(key), {}});
  }
  void Clear() { ops_.clear(); }
  size_t size() const { return ops_.size(); }

  enum class OpType : uint8_t { kPut = 0, kDelete = 1 };
  struct Op {
    OpType type;
    std::string key;
    Bytes value;
  };
  const std::vector<Op>& ops() const { return ops_; }

 private:
  std::vector<Op> ops_;
};

/// \brief Forward iterator over a consistent view of the store.
class KvIterator {
 public:
  virtual ~KvIterator() = default;
  virtual bool Valid() const = 0;
  virtual void Next() = 0;
  virtual const std::string& key() const = 0;
  virtual const Bytes& value() const = 0;
  /// \brief Positions at the first key >= target.
  virtual void Seek(const std::string& target) = 0;
  virtual void SeekToFirst() = 0;
};

/// \brief Immutable point-in-time view of a store. Reads against a
/// snapshot never touch the store's write lock, so long scans (checkpoint
/// chunking) and batched reads (read-set prefetch) cannot contend with
/// the commit path. Sequence() identifies the pinned write generation:
/// writes sequenced after it are invisible to this view.
class KvSnapshot {
 public:
  virtual ~KvSnapshot() = default;
  virtual Result<Bytes> Get(const std::string& key) const = 0;
  virtual std::unique_ptr<KvIterator> NewIterator() const = 0;
  virtual uint64_t Sequence() const = 0;
};

/// \brief Abstract KV store.
class KvStore {
 public:
  virtual ~KvStore() = default;

  virtual Result<Bytes> Get(const std::string& key) const = 0;
  virtual Status Put(const std::string& key, Bytes value) = 0;
  virtual Status Delete(const std::string& key) = 0;
  virtual Status Write(const WriteBatch& batch) = 0;

  /// \brief Makes every previously acknowledged write durable. Stores
  /// without a durability layer treat it as a no-op. Calling it once
  /// after several Write()s is the group-commit pattern: all their log
  /// records ride one device flush.
  virtual Status Sync() { return Status::OK(); }

  /// \brief Iterator over a consistent snapshot taken at call time.
  virtual std::unique_ptr<KvIterator> NewIterator() const = 0;

  /// \brief Pins a consistent read view. The base implementation
  /// materializes the whole store through NewIterator (correct for any
  /// backend); LSM-style stores override it with a cheap
  /// sequence-pinned structure share.
  virtual std::unique_ptr<KvSnapshot> GetSnapshot() const;

  /// \brief Approximate number of live keys.
  virtual size_t ApproximateCount() const = 0;
};

}  // namespace confide::storage
