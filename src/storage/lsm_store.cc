#include "storage/lsm_store.h"

#include <algorithm>
#include <map>

#include "common/fault.h"
#include "common/metrics.h"

namespace confide::storage {

namespace {

/// Read amplification = structures_probed / reads: every point lookup
/// probes the memtable plus however many sorted runs it has to touch
/// before the key (or its absence) is resolved.
struct LsmMetrics {
  metrics::Counter* reads = metrics::GetCounter("storage.lsm.read.count");
  metrics::Counter* structures_probed =
      metrics::GetCounter("storage.lsm.read.structures_probed");
  metrics::Counter* memtable_hits =
      metrics::GetCounter("storage.lsm.read.memtable_hit.count");
  metrics::Counter* flushes = metrics::GetCounter("storage.memtable.flush.count");
  metrics::Counter* flushed_entries =
      metrics::GetCounter("storage.memtable.flush.entries");
  metrics::Counter* compactions = metrics::GetCounter("storage.compaction.count");
  metrics::Counter* compacted_entries =
      metrics::GetCounter("storage.compaction.entries");
  metrics::Gauge* run_count = metrics::GetGauge("storage.lsm.run_count");

  static const LsmMetrics& Get() {
    static const LsmMetrics instruments;
    return instruments;
  }
};

}  // namespace

std::optional<std::optional<Bytes>> SortedRun::Get(const std::string& key) const {
  auto it = std::lower_bound(
      entries_.begin(), entries_.end(), key,
      [](const RunEntry& entry, const std::string& k) { return entry.key < k; });
  if (it != entries_.end() && it->key == key) return it->value;
  return std::nullopt;
}

Result<std::unique_ptr<LsmKvStore>> LsmKvStore::Open(const LsmOptions& options) {
  return Recover(options, nullptr);
}

Result<std::unique_ptr<LsmKvStore>> LsmKvStore::Recover(const LsmOptions& options,
                                                        RecoveryInfo* info) {
  std::unique_ptr<LsmKvStore> store(new LsmKvStore(options));
  RecoveryInfo local;
  if (!options.wal_dir.empty()) {
    std::string wal_path = options.wal_dir + "/confide.wal";
    ReplayStats stats;
    CONFIDE_RETURN_NOT_OK(Wal::Replay(
        wal_path,
        [&](const WriteBatch& batch) {
          for (const auto& op : batch.ops()) {
            if (op.type == WriteBatch::OpType::kPut) {
              store->mem_.Put(op.key, op.value);
            } else {
              store->mem_.Put(op.key, std::nullopt);
            }
          }
        },
        &stats));
    local.batches_replayed = stats.records;
    local.torn_tail = stats.torn_tail;
    if (stats.torn_tail) {
      // Repair the log on disk before appending resumes: the torn bytes
      // of the partial record must not end up in front of the next
      // record, where a later Replay would read them as a garbage header
      // and lose everything written after this recovery.
      CONFIDE_RETURN_NOT_OK(Wal::TruncateTo(wal_path, stats.good_offset));
    }
    CONFIDE_ASSIGN_OR_RETURN(store->wal_, Wal::Open(wal_path));
    metrics::GetCounter("storage.lsm.recover.count")->Increment();
  }
  if (info != nullptr) *info = local;
  return store;
}

Result<Bytes> LsmKvStore::Get(const std::string& key) const {
  std::lock_guard<std::mutex> lock(mutex_);
  const LsmMetrics& m = LsmMetrics::Get();
  m.reads->Increment();
  uint64_t probed = 1;  // the memtable
  if (auto hit = mem_.Get(key)) {
    m.structures_probed->Increment(probed);
    m.memtable_hits->Increment();
    if (*hit) return **hit;
    return Status::NotFound("key deleted: " + key);
  }
  for (auto it = runs_.rbegin(); it != runs_.rend(); ++it) {  // newest first
    ++probed;
    if (auto hit = (*it)->Get(key)) {
      m.structures_probed->Increment(probed);
      if (*hit) return **hit;
      return Status::NotFound("key deleted: " + key);
    }
  }
  m.structures_probed->Increment(probed);
  return Status::NotFound("key not found: " + key);
}

Status LsmKvStore::ApplyLocked(const WriteBatch& batch) {
  if (wal_ != nullptr) {
    CONFIDE_RETURN_NOT_OK(wal_->Append(batch));
  }
  for (const auto& op : batch.ops()) {
    if (op.type == WriteBatch::OpType::kPut) {
      mem_.Put(op.key, op.value);
    } else {
      mem_.Put(op.key, std::nullopt);
    }
  }
  return MaybeFlushLocked();
}

Status LsmKvStore::Put(const std::string& key, Bytes value) {
  WriteBatch batch;
  batch.Put(key, std::move(value));
  return Write(batch);
}

Status LsmKvStore::Delete(const std::string& key) {
  WriteBatch batch;
  batch.Delete(key);
  return Write(batch);
}

Status LsmKvStore::Write(const WriteBatch& batch) {
  std::lock_guard<std::mutex> lock(mutex_);
  return ApplyLocked(batch);
}

Status LsmKvStore::Sync() {
  std::lock_guard<std::mutex> lock(mutex_);
  if (wal_ == nullptr) return Status::OK();  // volatile store: nothing to sync
  return wal_->Sync();
}

Status LsmKvStore::MaybeFlushLocked() {
  if (mem_.approximate_bytes() < options_.memtable_flush_bytes) {
    return Status::OK();
  }
  // Fail before any structural mutation so a rejected flush leaves the
  // memtable (and its WAL coverage) fully intact.
  if (fault::FaultInjector::Global().ShouldFail("fault.storage.lsm_flush")) {
    return Status::Unavailable("lsm: injected flush failure");
  }
  std::vector<RunEntry> entries;
  entries.reserve(mem_.entry_count());
  mem_.ForEach([&](const std::string& key, const std::optional<Bytes>& value) {
    entries.push_back({key, value});
  });
  LsmMetrics::Get().flushes->Increment();
  LsmMetrics::Get().flushed_entries->Increment(entries.size());
  runs_.push_back(std::make_shared<SortedRun>(std::move(entries)));
  LsmMetrics::Get().run_count->Set(int64_t(runs_.size()));
  mem_ = MemTable();
  if (wal_ != nullptr) {
    // The flushed data lives in the run now; in a full implementation the
    // run would be persisted before the WAL reset. Runs here are held in
    // memory, so the WAL retains durability only for the current memtable.
    CONFIDE_RETURN_NOT_OK(wal_->Reset());
  }
  if (runs_.size() > options_.max_runs) CompactLocked();
  return Status::OK();
}

void LsmKvStore::CompactLocked() {
  // Full merge: newest shadowing oldest, tombstones dropped at the bottom.
  std::map<std::string, std::optional<Bytes>> merged;
  for (const auto& run : runs_) {  // oldest first; later inserts overwrite
    for (const auto& entry : run->entries()) {
      merged[entry.key] = entry.value;
    }
  }
  std::vector<RunEntry> entries;
  entries.reserve(merged.size());
  for (auto& [key, value] : merged) {
    if (value) entries.push_back({key, std::move(value)});
  }
  LsmMetrics::Get().compactions->Increment();
  LsmMetrics::Get().compacted_entries->Increment(entries.size());
  runs_.clear();
  runs_.push_back(std::make_shared<SortedRun>(std::move(entries)));
  LsmMetrics::Get().run_count->Set(int64_t(runs_.size()));
}

Status LsmKvStore::Flush() {
  std::lock_guard<std::mutex> lock(mutex_);
  size_t saved = options_.memtable_flush_bytes;
  options_.memtable_flush_bytes = 0;
  Status status = MaybeFlushLocked();
  options_.memtable_flush_bytes = saved;
  return status;
}

size_t LsmKvStore::RunCount() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return runs_.size();
}

namespace {

/// Snapshot iterator: materializes the merged view at construction.
class SnapshotIterator : public KvIterator {
 public:
  explicit SnapshotIterator(std::map<std::string, Bytes> data)
      : data_(std::move(data)), it_(data_.begin()) {}

  bool Valid() const override { return it_ != data_.end(); }
  void Next() override { ++it_; }
  const std::string& key() const override { return it_->first; }
  const Bytes& value() const override { return it_->second; }
  void Seek(const std::string& target) override { it_ = data_.lower_bound(target); }
  void SeekToFirst() override { it_ = data_.begin(); }

 private:
  std::map<std::string, Bytes> data_;
  std::map<std::string, Bytes>::const_iterator it_;
};

}  // namespace

std::unique_ptr<KvIterator> LsmKvStore::NewIterator() const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::map<std::string, std::optional<Bytes>> merged;
  for (const auto& run : runs_) {
    for (const auto& entry : run->entries()) merged[entry.key] = entry.value;
  }
  mem_.ForEach([&](const std::string& key, const std::optional<Bytes>& value) {
    merged[key] = value;
  });
  std::map<std::string, Bytes> live;
  for (auto& [key, value] : merged) {
    if (value) live.emplace(key, std::move(*value));
  }
  return std::make_unique<SnapshotIterator>(std::move(live));
}

size_t LsmKvStore::ApproximateCount() const {
  std::lock_guard<std::mutex> lock(mutex_);
  size_t count = mem_.entry_count();
  for (const auto& run : runs_) count += run->entries().size();
  return count;
}

}  // namespace confide::storage
