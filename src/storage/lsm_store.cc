#include "storage/lsm_store.h"

#include <algorithm>
#include <cstdio>
#include <filesystem>
#include <map>
#include <string_view>
#include <unordered_set>

#include "common/fault.h"
#include "common/metrics.h"

namespace confide::storage {

namespace {

/// Read amplification = structures_probed / reads: every point lookup
/// probes the memtable plus however many sorted runs it has to touch
/// before the key (or its absence) is resolved. A row-cache hit resolves
/// with zero structures probed; a bloom negative skips a run without
/// counting it as probed.
struct LsmMetrics {
  metrics::Counter* reads = metrics::GetCounter("storage.lsm.read.count");
  metrics::Counter* structures_probed =
      metrics::GetCounter("storage.lsm.read.structures_probed");
  metrics::Counter* memtable_hits =
      metrics::GetCounter("storage.lsm.read.memtable_hit.count");
  metrics::Counter* flushes = metrics::GetCounter("storage.memtable.flush.count");
  metrics::Counter* flushed_entries =
      metrics::GetCounter("storage.memtable.flush.entries");
  metrics::Counter* compactions = metrics::GetCounter("storage.compaction.count");
  metrics::Counter* compacted_entries =
      metrics::GetCounter("storage.compaction.entries");
  metrics::Counter* bloom_probes = metrics::GetCounter("storage.bloom.probes");
  metrics::Counter* bloom_negatives =
      metrics::GetCounter("storage.bloom.negatives");
  metrics::Counter* bloom_false_positives =
      metrics::GetCounter("storage.bloom.false_positives");
  metrics::Counter* snapshots =
      metrics::GetCounter("storage.snapshot.created.count");
  metrics::Counter* snapshot_reads =
      metrics::GetCounter("storage.snapshot.read.count");
  metrics::Counter* orphans_removed =
      metrics::GetCounter("storage.sst.orphans_removed.count");
  metrics::Gauge* run_count = metrics::GetGauge("storage.lsm.run_count");
  metrics::Gauge* sequence = metrics::GetGauge("storage.lsm.sequence");

  static const LsmMetrics& Get() {
    static const LsmMetrics instruments;
    return instruments;
  }
};

/// Frozen point-in-time view: the pinned sequence, a frozen copy of the
/// memtable (bounded by memtable_flush_bytes), and the shared run list.
/// Snapshots and their iterators share one SnapView; the shared_ptr runs
/// keep compacted-away tables alive until the last reader drops them.
struct SnapView {
  uint64_t sequence = 0;
  std::shared_ptr<SortedRun> mem;                // frozen memtable, newest
  std::vector<std::shared_ptr<SortedRun>> runs;  // oldest first
  bool use_bloom = true;
};

/// Probes a frozen view: memtable first, then runs newest to oldest with
/// bloom gating. Shares the read-amplification counters with the store's
/// own Get so snapshot reads are visible in the same metrics.
Result<Bytes> ProbeView(const SnapView& view, const std::string& key) {
  const LsmMetrics& m = LsmMetrics::Get();
  m.reads->Increment();
  m.snapshot_reads->Increment();
  uint64_t probed = 1;  // the frozen memtable
  Lookup hit = view.mem->Get(key);
  if (!hit.found()) {
    for (auto it = view.runs.rbegin(); it != view.runs.rend(); ++it) {
      const SortedRun& run = **it;
      const bool bloom_used = view.use_bloom && !run.bloom().empty();
      if (bloom_used) {
        m.bloom_probes->Increment();
        if (!run.bloom().MayContain(key)) {
          m.bloom_negatives->Increment();
          continue;
        }
      }
      ++probed;
      hit = run.Get(key);
      if (hit.found()) break;
      if (bloom_used) m.bloom_false_positives->Increment();
    }
  }
  m.structures_probed->Increment(probed);
  if (hit.state == LookupState::kFoundValue) return *hit.value;
  if (hit.state == LookupState::kFoundTombstone) {
    return Status::NotFound("key deleted: " + key);
  }
  return Status::NotFound("key not found: " + key);
}

/// K-way merging iterator over a SnapView. Sources are ordered newest
/// first (frozen memtable, then runs back to front); on equal keys the
/// newest source wins and tombstones hide the key entirely. No
/// materialization: memory is O(sources), not O(keys).
class MergingIterator : public KvIterator {
 public:
  explicit MergingIterator(std::shared_ptr<const SnapView> view)
      : view_(std::move(view)) {
    sources_.push_back(&view_->mem->entries());
    for (auto it = view_->runs.rbegin(); it != view_->runs.rend(); ++it) {
      sources_.push_back(&(*it)->entries());
    }
    pos_.assign(sources_.size(), 0);
    Resolve();
  }

  bool Valid() const override { return current_ != nullptr; }
  const std::string& key() const override { return current_->key; }
  const Bytes& value() const override { return *current_->value; }

  void Next() override {
    SkipKey(current_->key);
    Resolve();
  }

  void SeekToFirst() override {
    std::fill(pos_.begin(), pos_.end(), size_t(0));
    Resolve();
  }

  void Seek(const std::string& target) override {
    for (size_t i = 0; i < sources_.size(); ++i) {
      const auto& entries = *sources_[i];
      pos_[i] = size_t(std::lower_bound(
                           entries.begin(), entries.end(), target,
                           [](const RunEntry& entry, const std::string& k) {
                             return entry.key < k;
                           }) -
                       entries.begin());
    }
    Resolve();
  }

 private:
  /// Advances every source past `key` (each source holds unique keys).
  void SkipKey(const std::string& key) {
    for (size_t i = 0; i < sources_.size(); ++i) {
      const auto& entries = *sources_[i];
      if (pos_[i] < entries.size() && entries[pos_[i]].key == key) ++pos_[i];
    }
  }

  /// Positions current_ at the smallest live key >= the cursor: picks the
  /// minimum head key, lets the newest source win ties, and skips keys
  /// whose newest version is a tombstone.
  void Resolve() {
    current_ = nullptr;
    for (;;) {
      const RunEntry* best = nullptr;
      for (size_t i = 0; i < sources_.size(); ++i) {
        const auto& entries = *sources_[i];
        if (pos_[i] >= entries.size()) continue;
        const RunEntry& head = entries[pos_[i]];
        // Strict < keeps the first (newest) source on ties.
        if (best == nullptr || head.key < best->key) best = &head;
      }
      if (best == nullptr) return;
      if (best->value) {
        current_ = best;
        return;
      }
      SkipKey(best->key);
    }
  }

  std::shared_ptr<const SnapView> view_;
  std::vector<const std::vector<RunEntry>*> sources_;  // newest first
  std::vector<size_t> pos_;
  const RunEntry* current_ = nullptr;
};

class LsmSnapshot : public KvSnapshot {
 public:
  explicit LsmSnapshot(std::shared_ptr<const SnapView> view)
      : view_(std::move(view)) {}

  Result<Bytes> Get(const std::string& key) const override {
    return ProbeView(*view_, key);
  }
  std::unique_ptr<KvIterator> NewIterator() const override {
    return std::make_unique<MergingIterator>(view_);
  }
  uint64_t Sequence() const override { return view_->sequence; }

 private:
  std::shared_ptr<const SnapView> view_;
};

/// Freezes the memtable into a (bloom-less) SortedRun.
std::shared_ptr<SortedRun> FreezeMemtable(const MemTable& mem) {
  std::vector<RunEntry> entries;
  entries.reserve(mem.entry_count());
  mem.ForEach([&](const std::string& key, const std::optional<Bytes>& value) {
    entries.push_back({key, value});
  });
  return std::make_shared<SortedRun>(std::move(entries), BloomFilter{});
}

BloomFilter MaybeBuildBloom(const std::vector<RunEntry>& entries,
                            const LsmOptions& options) {
  if (!options.enable_bloom) return {};
  std::vector<std::string_view> keys;
  keys.reserve(entries.size());
  for (const RunEntry& entry : entries) keys.emplace_back(entry.key);
  return BloomFilter::Build(keys, options.bloom_bits_per_key);
}

}  // namespace

Lookup SortedRun::Get(const std::string& key) const {
  auto it = std::lower_bound(
      entries_.begin(), entries_.end(), key,
      [](const RunEntry& entry, const std::string& k) { return entry.key < k; });
  if (it == entries_.end() || it->key != key) return Lookup::NotFound();
  if (it->value) return Lookup::FoundValue(&*it->value);
  return Lookup::FoundTombstone();
}

LsmKvStore::LsmKvStore(const LsmOptions& options)
    : options_(options),
      cache_(ResolveCacheBudget(options.cache_bytes, /*fallback_mb=*/64)) {}

LsmKvStore::~LsmKvStore() {
  std::future<void> inflight;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    inflight = std::move(compaction_future_);
  }
  if (inflight.valid()) inflight.wait();
}

Result<std::unique_ptr<LsmKvStore>> LsmKvStore::Open(const LsmOptions& options) {
  return Recover(options, nullptr);
}

Result<std::unique_ptr<LsmKvStore>> LsmKvStore::Recover(const LsmOptions& options,
                                                        RecoveryInfo* info) {
  std::unique_ptr<LsmKvStore> store(new LsmKvStore(options));
  RecoveryInfo local;
  if (!options.wal_dir.empty()) {
    const std::string& dir = options.wal_dir;
    // Restore the manifest's tables (oldest first), then delete orphans —
    // tables a crash stranded between their write and the manifest
    // install. A manifest that names a missing or corrupt table is a real
    // durability loss and fails recovery loudly.
    CONFIDE_ASSIGN_OR_RETURN(std::vector<uint64_t> live, ReadManifest(dir));
    uint64_t max_number = 0;
    for (uint64_t number : live) {
      CONFIDE_ASSIGN_OR_RETURN(SsTableContents contents,
                               ReadSsTable(SsTablePath(dir, number)));
      store->runs_.push_back(std::make_shared<SortedRun>(
          std::move(contents.entries), std::move(contents.bloom), number));
      max_number = std::max(max_number, number);
      ++local.tables_loaded;
    }
    std::unordered_set<uint64_t> live_set(live.begin(), live.end());
    for (uint64_t number : ListSsTables(dir)) {
      max_number = std::max(max_number, number);
      if (live_set.count(number) != 0) continue;
      std::remove(SsTablePath(dir, number).c_str());
      LsmMetrics::Get().orphans_removed->Increment();
      ++local.orphans_removed;
    }
    std::error_code ec;
    for (const auto& entry : std::filesystem::directory_iterator(dir, ec)) {
      if (entry.path().extension() == ".tmp") {
        std::filesystem::remove(entry.path(), ec);
      }
    }
    store->next_file_number_ = max_number + 1;

    std::string wal_path = dir + "/confide.wal";
    ReplayStats stats;
    CONFIDE_RETURN_NOT_OK(Wal::Replay(
        wal_path,
        [&](const WriteBatch& batch) {
          for (const auto& op : batch.ops()) {
            if (op.type == WriteBatch::OpType::kPut) {
              store->mem_.Put(op.key, op.value);
            } else {
              store->mem_.Put(op.key, std::nullopt);
            }
          }
        },
        &stats));
    local.batches_replayed = stats.records;
    local.torn_tail = stats.torn_tail;
    if (stats.torn_tail) {
      // Repair the log on disk before appending resumes: the torn bytes
      // of the partial record must not end up in front of the next
      // record, where a later Replay would read them as a garbage header
      // and lose everything written after this recovery.
      CONFIDE_RETURN_NOT_OK(Wal::TruncateTo(wal_path, stats.good_offset));
    }
    CONFIDE_ASSIGN_OR_RETURN(store->wal_, Wal::Open(wal_path));
    store->sequence_ = stats.records;
    metrics::GetCounter("storage.lsm.recover.count")->Increment();
    LsmMetrics::Get().run_count->Set(int64_t(store->runs_.size()));
    LsmMetrics::Get().sequence->Set(int64_t(store->sequence_));
  }
  if (info != nullptr) *info = local;
  return store;
}

Result<Bytes> LsmKvStore::Get(const std::string& key) const {
  std::lock_guard<std::mutex> lock(mutex_);
  const LsmMetrics& m = LsmMetrics::Get();
  m.reads->Increment();
  // Row cache first: a hit (positive or negative) resolves the read with
  // zero structures probed. Coherence holds because every write
  // invalidates its key under this same lock.
  if (const RowCache::Row* row = cache_.Get(key)) {
    if (row->value) return *row->value;
    return Status::NotFound("key not found: " + key);
  }
  uint64_t probed = 1;  // the memtable
  Lookup hit = mem_.Get(key);
  if (hit.found()) {
    m.structures_probed->Increment(probed);
    m.memtable_hits->Increment();
    if (hit.state == LookupState::kFoundValue) return *hit.value;
    return Status::NotFound("key deleted: " + key);
  }
  for (auto it = runs_.rbegin(); it != runs_.rend(); ++it) {  // newest first
    const SortedRun& run = **it;
    const bool bloom_used = options_.enable_bloom && !run.bloom().empty();
    if (bloom_used) {
      m.bloom_probes->Increment();
      if (!run.bloom().MayContain(key)) {
        m.bloom_negatives->Increment();
        continue;
      }
    }
    ++probed;
    hit = run.Get(key);
    if (hit.found()) {
      m.structures_probed->Increment(probed);
      if (hit.state == LookupState::kFoundValue) {
        // Populate the cache only from run hits: memtable hits are
        // already cheap and churn under writes.
        cache_.Insert(key, *hit.value);
        return *hit.value;
      }
      cache_.Insert(key, std::nullopt);
      return Status::NotFound("key deleted: " + key);
    }
    if (bloom_used) m.bloom_false_positives->Increment();
  }
  m.structures_probed->Increment(probed);
  cache_.Insert(key, std::nullopt);  // negative entry: miss resolved once
  return Status::NotFound("key not found: " + key);
}

Status LsmKvStore::ApplyLocked(const WriteBatch& batch) {
  if (wal_ != nullptr) {
    CONFIDE_RETURN_NOT_OK(wal_->Append(batch));
  }
  for (const auto& op : batch.ops()) {
    if (op.type == WriteBatch::OpType::kPut) {
      mem_.Put(op.key, op.value);
    } else {
      mem_.Put(op.key, std::nullopt);
    }
    cache_.Invalidate(op.key);
  }
  ++sequence_;
  LsmMetrics::Get().sequence->Set(int64_t(sequence_));
  return MaybeFlushLocked();
}

Status LsmKvStore::Put(const std::string& key, Bytes value) {
  WriteBatch batch;
  batch.Put(key, std::move(value));
  return Write(batch);
}

Status LsmKvStore::Delete(const std::string& key) {
  WriteBatch batch;
  batch.Delete(key);
  return Write(batch);
}

Status LsmKvStore::Write(const WriteBatch& batch) {
  std::lock_guard<std::mutex> lock(mutex_);
  return ApplyLocked(batch);
}

Status LsmKvStore::Sync() {
  std::lock_guard<std::mutex> lock(mutex_);
  if (wal_ == nullptr) return Status::OK();  // volatile store: nothing to sync
  return wal_->Sync();
}

Status LsmKvStore::MaybeFlushLocked() {
  if (mem_.approximate_bytes() < options_.memtable_flush_bytes ||
      mem_.entry_count() == 0) {
    return Status::OK();
  }
  // Fail before any structural mutation so a rejected flush leaves the
  // memtable (and its WAL coverage) fully intact.
  if (fault::FaultInjector::Global().ShouldFail("fault.storage.lsm_flush")) {
    return Status::Unavailable("lsm: injected flush failure");
  }
  std::vector<RunEntry> entries;
  entries.reserve(mem_.entry_count());
  mem_.ForEach([&](const std::string& key, const std::optional<Bytes>& value) {
    entries.push_back({key, value});
  });
  BloomFilter bloom = MaybeBuildBloom(entries, options_);
  uint64_t number = 0;
  if (durable()) {
    // Persist before install: table first, then the manifest naming it.
    // A crash after the table write leaves an orphan (cleaned at
    // recovery, WAL intact); a crash after the manifest but before the
    // WAL reset replays the same keys over the run — idempotent.
    number = next_file_number_++;
    CONFIDE_RETURN_NOT_OK(
        WriteSsTable(SsTablePath(options_.wal_dir, number), entries, bloom));
    std::vector<uint64_t> live;
    live.reserve(runs_.size() + 1);
    for (const auto& run : runs_) live.push_back(run->file_number());
    live.push_back(number);
    CONFIDE_RETURN_NOT_OK(WriteManifest(options_.wal_dir, live));
  }
  LsmMetrics::Get().flushes->Increment();
  LsmMetrics::Get().flushed_entries->Increment(entries.size());
  runs_.push_back(
      std::make_shared<SortedRun>(std::move(entries), std::move(bloom), number));
  LsmMetrics::Get().run_count->Set(int64_t(runs_.size()));
  mem_ = MemTable();
  if (wal_ != nullptr) {
    CONFIDE_RETURN_NOT_OK(wal_->Reset());
  }
  MaybeScheduleCompactionLocked();
  return Status::OK();
}

void LsmKvStore::MaybeScheduleCompactionLocked() {
  if (runs_.size() <= options_.max_runs) return;
  if (options_.compaction_pool == nullptr) {
    // Inline: merge under the store lock, deterministic for tests.
    CompactWithRetries(nullptr);
    return;
  }
  if (compaction_inflight_) return;
  compaction_inflight_ = true;
  compaction_future_ = options_.compaction_pool->Submit([this] {
    std::unique_lock<std::mutex> lock(mutex_);
    CompactWithRetries(&lock);
    compaction_inflight_ = false;
    compaction_cv_.notify_all();
  });
}

void LsmKvStore::CompactWithRetries(std::unique_lock<std::mutex>* lock) {
  // Compaction is maintenance: an attempt that trips a fault site is
  // retried, and when a later attempt succeeds the site is recorded as
  // recovered. An exhausted budget (or a genuine IO error) just leaves
  // the runs for the next flush to re-trigger — it never fails a write.
  std::vector<std::string> tripped;
  for (int attempt = 0; attempt < 4; ++attempt) {
    std::string site;
    Status status = CompactOnce(lock, &site);
    if (status.ok()) {
      std::sort(tripped.begin(), tripped.end());
      tripped.erase(std::unique(tripped.begin(), tripped.end()), tripped.end());
      for (const std::string& recovered : tripped) {
        fault::NoteRecovered(recovered);
      }
      return;
    }
    if (site.empty()) return;  // real IO error: defer to the next trigger
    tripped.push_back(site);
  }
}

Status LsmKvStore::CompactOnce(std::unique_lock<std::mutex>* lock,
                               std::string* failed_site) {
  auto trip = [&](const char* site) {
    if (!fault::FaultInjector::Global().ShouldFail(site)) return false;
    *failed_site = site;
    return true;
  };
  if (runs_.size() <= options_.max_runs) return Status::OK();  // raced: done
  if (trip("fault.storage.compaction.start")) {
    return Status::Unavailable("lsm: injected compaction start failure");
  }
  // Pin the inputs; flushes appending while we merge stay untouched
  // because only the prefix [0, n) is replaced at install.
  std::vector<std::shared_ptr<SortedRun>> inputs = runs_;
  const size_t n = inputs.size();
  const uint64_t number = durable() ? next_file_number_++ : 0;

  if (lock != nullptr) lock->unlock();
  std::vector<RunEntry> entries;
  BloomFilter bloom;
  Status status = [&]() -> Status {
    if (trip("fault.storage.compaction.merge")) {
      return Status::Unavailable("lsm: injected compaction merge failure");
    }
    // Full merge: newest shadowing oldest; tombstones drop because the
    // inputs include the oldest run, so nothing older can resurrect.
    std::map<std::string, std::optional<Bytes>> merged;
    for (const auto& run : inputs) {  // oldest first; later inserts win
      for (const auto& entry : run->entries()) {
        merged[entry.key] = entry.value;
      }
    }
    entries.reserve(merged.size());
    for (auto& [key, value] : merged) {
      if (value) entries.push_back({key, std::move(value)});
    }
    bloom = MaybeBuildBloom(entries, options_);
    if (durable()) {
      if (trip("fault.storage.compaction.write")) {
        return Status::Unavailable("lsm: injected compaction write failure");
      }
      CONFIDE_RETURN_NOT_OK(
          WriteSsTable(SsTablePath(options_.wal_dir, number), entries, bloom));
      // The table is on disk but not yet in the manifest: failing here
      // strands an orphan for recovery to delete.
      if (trip("fault.storage.compaction.install")) {
        return Status::Unavailable("lsm: injected compaction install failure");
      }
    }
    return Status::OK();
  }();
  if (lock != nullptr) lock->lock();
  if (!status.ok()) return status;

  // Install: the merged run replaces the pinned prefix; runs flushed
  // during the merge stay on top. Manifest first — if it cannot be
  // written the old table set stays live and the new table is an orphan.
  if (durable()) {
    std::vector<uint64_t> live;
    live.reserve(runs_.size() - n + 1);
    live.push_back(number);
    for (size_t i = n; i < runs_.size(); ++i) {
      live.push_back(runs_[i]->file_number());
    }
    CONFIDE_RETURN_NOT_OK(WriteManifest(options_.wal_dir, live));
  }
  std::vector<std::shared_ptr<SortedRun>> next;
  next.reserve(runs_.size() - n + 1);
  next.push_back(
      std::make_shared<SortedRun>(std::move(entries), std::move(bloom), number));
  for (size_t i = n; i < runs_.size(); ++i) next.push_back(runs_[i]);
  runs_ = std::move(next);
  LsmMetrics::Get().compactions->Increment();
  LsmMetrics::Get().compacted_entries->Increment(
      runs_.front()->entries().size());
  LsmMetrics::Get().run_count->Set(int64_t(runs_.size()));
  // Replaced tables are no longer named by the manifest; snapshots still
  // pinning them read from memory, so the files can go now.
  for (const auto& input : inputs) {
    if (input->file_number() != 0) {
      std::remove(SsTablePath(options_.wal_dir, input->file_number()).c_str());
    }
  }
  return Status::OK();
}

Status LsmKvStore::Flush() {
  std::lock_guard<std::mutex> lock(mutex_);
  size_t saved = options_.memtable_flush_bytes;
  options_.memtable_flush_bytes = 0;
  Status status = MaybeFlushLocked();
  options_.memtable_flush_bytes = saved;
  return status;
}

size_t LsmKvStore::RunCount() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return runs_.size();
}

uint64_t LsmKvStore::Sequence() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return sequence_;
}

void LsmKvStore::SetCompactionPool(ThreadPool* pool) {
  std::lock_guard<std::mutex> lock(mutex_);
  options_.compaction_pool = pool;
}

void LsmKvStore::WaitForCompaction() {
  std::unique_lock<std::mutex> lock(mutex_);
  compaction_cv_.wait(lock, [&] { return !compaction_inflight_; });
}

std::unique_ptr<KvSnapshot> LsmKvStore::GetSnapshot() const {
  std::lock_guard<std::mutex> lock(mutex_);
  auto view = std::make_shared<SnapView>();
  view->sequence = sequence_;
  view->mem = FreezeMemtable(mem_);
  view->runs = runs_;
  view->use_bloom = options_.enable_bloom;
  LsmMetrics::Get().snapshots->Increment();
  return std::make_unique<LsmSnapshot>(std::move(view));
}

std::unique_ptr<KvIterator> LsmKvStore::NewIterator() const {
  return GetSnapshot()->NewIterator();
}

size_t LsmKvStore::ApproximateCount() const {
  std::lock_guard<std::mutex> lock(mutex_);
  size_t count = mem_.entry_count();
  for (const auto& run : runs_) count += run->entries().size();
  return count;
}

}  // namespace confide::storage
