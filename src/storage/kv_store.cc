#include "storage/kv_store.h"

#include <map>

namespace confide::storage {

namespace {

/// Fallback snapshot: a full copy taken through the store's iterator.
/// Correct for any backend; LSM stores override GetSnapshot with a
/// sequence-pinned structure share instead.
class MaterializedSnapshot : public KvSnapshot {
 public:
  explicit MaterializedSnapshot(std::map<std::string, Bytes> data)
      : data_(std::move(data)) {}

  Result<Bytes> Get(const std::string& key) const override {
    auto it = data_.find(key);
    if (it == data_.end()) return Status::NotFound("key not found: " + key);
    return it->second;
  }

  std::unique_ptr<KvIterator> NewIterator() const override;

  uint64_t Sequence() const override { return 0; }  // no generation info

 private:
  friend class MaterializedIterator;
  std::map<std::string, Bytes> data_;
};

class MaterializedIterator : public KvIterator {
 public:
  explicit MaterializedIterator(std::shared_ptr<const std::map<std::string, Bytes>> data)
      : data_(std::move(data)), it_(data_->begin()) {}

  bool Valid() const override { return it_ != data_->end(); }
  void Next() override { ++it_; }
  const std::string& key() const override { return it_->first; }
  const Bytes& value() const override { return it_->second; }
  void Seek(const std::string& target) override {
    it_ = data_->lower_bound(target);
  }
  void SeekToFirst() override { it_ = data_->begin(); }

 private:
  std::shared_ptr<const std::map<std::string, Bytes>> data_;
  std::map<std::string, Bytes>::const_iterator it_;
};

std::unique_ptr<KvIterator> MaterializedSnapshot::NewIterator() const {
  // Iterators may outlive the snapshot object, so they share the data.
  auto shared = std::make_shared<const std::map<std::string, Bytes>>(data_);
  return std::make_unique<MaterializedIterator>(std::move(shared));
}

}  // namespace

std::unique_ptr<KvSnapshot> KvStore::GetSnapshot() const {
  std::map<std::string, Bytes> data;
  std::unique_ptr<KvIterator> it = NewIterator();
  for (it->SeekToFirst(); it->Valid(); it->Next()) {
    data.emplace(it->key(), it->value());
  }
  return std::make_unique<MaterializedSnapshot>(std::move(data));
}

}  // namespace confide::storage
