/// \file lsm_store.h
/// \brief LSM-style KV store: skiplist memtable + WAL + sorted runs with
/// tombstone-dropping compaction. In-memory by default; pointing it at a
/// directory adds WAL durability with crash-recovery replay.

#pragma once

#include <mutex>
#include <vector>

#include "storage/kv_store.h"
#include "storage/memtable.h"
#include "storage/wal.h"

namespace confide::storage {

/// \brief Tuning knobs.
struct LsmOptions {
  /// Memtable bytes before flush to a sorted run.
  size_t memtable_flush_bytes = 4 << 20;
  /// Sorted runs before a full merge compaction.
  size_t max_runs = 6;
  /// Directory for the WAL; empty string = volatile store.
  std::string wal_dir;
};

/// \brief Key/value (or tombstone) entry of a sorted run.
struct RunEntry {
  std::string key;
  std::optional<Bytes> value;  // nullopt = tombstone
};

/// \brief Immutable sorted run produced by a memtable flush.
class SortedRun {
 public:
  explicit SortedRun(std::vector<RunEntry> entries) : entries_(std::move(entries)) {}

  /// \brief Binary-searched point lookup.
  std::optional<std::optional<Bytes>> Get(const std::string& key) const;

  const std::vector<RunEntry>& entries() const { return entries_; }

 private:
  std::vector<RunEntry> entries_;
};

/// \brief What crash recovery found (Recover() diagnostics).
struct RecoveryInfo {
  uint64_t batches_replayed = 0;  ///< intact WAL records re-applied
  bool torn_tail = false;         ///< WAL ended mid-record (crash mid-write)
};

/// \brief The store. Thread-safe.
class LsmKvStore : public KvStore {
 public:
  /// \brief Opens a store; replays the WAL when `options.wal_dir` is set.
  static Result<std::unique_ptr<LsmKvStore>> Open(const LsmOptions& options);

  /// \brief Open with recovery diagnostics: replays the WAL (tolerating a
  /// torn tail record from a crash mid-append) and reports what it found.
  /// A store that crashed after acknowledging batch k recovers every
  /// batch up to and including k — a prefix-consistent state.
  static Result<std::unique_ptr<LsmKvStore>> Recover(const LsmOptions& options,
                                                     RecoveryInfo* info = nullptr);

  Result<Bytes> Get(const std::string& key) const override;
  Status Put(const std::string& key, Bytes value) override;
  Status Delete(const std::string& key) override;
  Status Write(const WriteBatch& batch) override;
  Status Sync() override;
  std::unique_ptr<KvIterator> NewIterator() const override;
  size_t ApproximateCount() const override;

  /// \brief Forces a memtable flush (tests/benchmarks).
  Status Flush();

  /// \brief Number of sorted runs currently live (tests).
  size_t RunCount() const;

 private:
  explicit LsmKvStore(const LsmOptions& options) : options_(options) {}

  Status ApplyLocked(const WriteBatch& batch);
  Status MaybeFlushLocked();
  void CompactLocked();

  LsmOptions options_;
  mutable std::mutex mutex_;
  MemTable mem_;
  std::vector<std::shared_ptr<SortedRun>> runs_;  // oldest first
  std::unique_ptr<Wal> wal_;
};

}  // namespace confide::storage
