/// \file lsm_store.h
/// \brief LSM-style KV store: skiplist memtable + WAL + sorted runs with
/// tombstone-dropping compaction.
///
/// Read path (PR 6): a byte-budgeted row cache answers hot point lookups
/// without touching any structure, per-run bloom filters skip runs that
/// cannot hold the key, and `GetSnapshot()` pins a sequence-stamped view
/// (frozen memtable + shared run list) so long scans and batched reads
/// proceed without the store lock. Compaction can run on a shared
/// `common::ThreadPool` (`LsmOptions::compaction_pool`); without a pool it
/// stays inline and deterministic.
///
/// Durability: pointing the store at a directory adds WAL replay *and*
/// SSTable persistence — every flushed or compacted run is written to
/// `<wal_dir>/<n>.sst` and recorded in a manifest before the WAL resets,
/// so flushed data now survives a crash (it previously lived only in
/// memory).

#pragma once

#include <condition_variable>
#include <future>
#include <mutex>
#include <optional>
#include <vector>

#include "common/thread_pool.h"
#include "storage/bloom.h"
#include "storage/cache.h"
#include "storage/kv_store.h"
#include "storage/memtable.h"
#include "storage/sstable.h"
#include "storage/wal.h"

namespace confide::storage {

/// \brief Tuning knobs.
struct LsmOptions {
  /// Memtable bytes before flush to a sorted run.
  size_t memtable_flush_bytes = 4 << 20;
  /// Sorted runs before a full merge compaction.
  size_t max_runs = 6;
  /// Directory for the WAL and SSTables; empty string = volatile store.
  std::string wal_dir;
  /// Build a bloom filter per run and consult it before binary search.
  bool enable_bloom = true;
  /// Bloom sizing (~0.8% false-positive rate at 10).
  size_t bloom_bits_per_key = 10;
  /// Row-cache budget in bytes. Unset = `CONFIDE_STORAGE_CACHE_MB`
  /// megabytes (default 64). Zero disables the cache.
  std::optional<size_t> cache_bytes;
  /// Runs compactions on this pool when set (single inflight task);
  /// nullptr keeps compaction inline under the store lock. The pool must
  /// outlive the store (or the store must be destroyed first — it joins
  /// its inflight task on destruction).
  ThreadPool* compaction_pool = nullptr;
};

/// \brief Immutable sorted run produced by a memtable flush or a
/// compaction. `file_number` names its SSTable on disk (0 = memory-only).
class SortedRun {
 public:
  SortedRun(std::vector<RunEntry> entries, BloomFilter bloom,
            uint64_t file_number = 0)
      : entries_(std::move(entries)),
        bloom_(std::move(bloom)),
        file_number_(file_number) {}

  /// \brief Binary-searched point lookup.
  Lookup Get(const std::string& key) const;

  const std::vector<RunEntry>& entries() const { return entries_; }
  const BloomFilter& bloom() const { return bloom_; }
  uint64_t file_number() const { return file_number_; }

 private:
  std::vector<RunEntry> entries_;
  BloomFilter bloom_;
  uint64_t file_number_ = 0;
};

/// \brief What crash recovery found (Recover() diagnostics).
struct RecoveryInfo {
  uint64_t batches_replayed = 0;  ///< intact WAL records re-applied
  bool torn_tail = false;         ///< WAL ended mid-record (crash mid-write)
  uint64_t tables_loaded = 0;     ///< SSTables restored from the manifest
  uint64_t orphans_removed = 0;   ///< unreferenced tables deleted
};

/// \brief The store. Thread-safe.
class LsmKvStore : public KvStore {
 public:
  /// \brief Opens a store; replays the WAL when `options.wal_dir` is set.
  static Result<std::unique_ptr<LsmKvStore>> Open(const LsmOptions& options);

  /// \brief Open with recovery diagnostics: loads the manifest's SSTables,
  /// deletes orphaned tables (a crash between a table write and its
  /// manifest install), then replays the WAL (tolerating a torn tail
  /// record from a crash mid-append) and reports what it found. A store
  /// that crashed after acknowledging batch k recovers every batch up to
  /// and including k — a prefix-consistent state.
  static Result<std::unique_ptr<LsmKvStore>> Recover(const LsmOptions& options,
                                                     RecoveryInfo* info = nullptr);

  ~LsmKvStore() override;  // joins the inflight background compaction

  Result<Bytes> Get(const std::string& key) const override;
  Status Put(const std::string& key, Bytes value) override;
  Status Delete(const std::string& key) override;
  Status Write(const WriteBatch& batch) override;
  Status Sync() override;
  std::unique_ptr<KvIterator> NewIterator() const override;
  std::unique_ptr<KvSnapshot> GetSnapshot() const override;
  size_t ApproximateCount() const override;

  /// \brief Forces a memtable flush (tests/benchmarks). No-op when the
  /// memtable is empty.
  Status Flush();

  /// \brief Number of sorted runs currently live (tests).
  size_t RunCount() const;

  /// \brief Write sequence number: one per applied batch.
  uint64_t Sequence() const;

  /// \brief Late pool wiring for owners that build the store before the
  /// pool (Node::Create). Safe while the store is serving traffic.
  void SetCompactionPool(ThreadPool* pool);

  /// \brief Blocks until no background compaction is queued or running
  /// (tests/benchmarks; inline compaction makes this a no-op).
  void WaitForCompaction();

 private:
  explicit LsmKvStore(const LsmOptions& options);

  Status ApplyLocked(const WriteBatch& batch);
  Status MaybeFlushLocked();
  /// Schedules (pool) or runs (inline) a compaction when over max_runs.
  void MaybeScheduleCompactionLocked();
  /// One merge attempt with fault sites. `lock` non-null = background
  /// path: the merge and table write drop the store lock. On injected
  /// failure returns Unavailable and names the site in `failed_site`.
  Status CompactOnce(std::unique_lock<std::mutex>* lock,
                     std::string* failed_site);
  /// Retry wrapper: attempts CompactOnce a few times, noting
  /// `<site>.recovered` when a later attempt succeeds. Never fails the
  /// caller — an exhausted compaction just waits for the next trigger.
  void CompactWithRetries(std::unique_lock<std::mutex>* lock);
  bool durable() const { return !options_.wal_dir.empty(); }

  LsmOptions options_;
  mutable std::mutex mutex_;
  MemTable mem_;
  std::vector<std::shared_ptr<SortedRun>> runs_;  // oldest first
  std::unique_ptr<Wal> wal_;
  mutable RowCache cache_;  // guarded by mutex_ (Get mutates recency)
  uint64_t sequence_ = 0;
  uint64_t next_file_number_ = 1;
  bool compaction_inflight_ = false;          // pool task queued or running
  std::future<void> compaction_future_;
  std::condition_variable compaction_cv_;
};

}  // namespace confide::storage
