#include "workloads/workloads.h"

#include "common/endian.h"
#include "serialize/flatlite.h"
#include "serialize/json.h"

namespace confide::workloads {

// ---------------------------------------------------------------------------
// Synthetic workloads (Figure 10)
// ---------------------------------------------------------------------------

const char* SyntheticContractSource() {
  return R"CCL(
// (1) String concatenation: joins the 10-byte id and JSON body (§6.1).
fn string_concat() {
  var n = input_size();
  var in = alloc(n + 1);
  read_input(in, n);
  var out = alloc(2 * n + 64);
  var end = bytes_append(out, in, 10);          // id
  end = str_append(end, "|");
  end = bytes_append(end, in + 10, n - 10);     // json body
  end = str_append(end, "|");
  end = bytes_append(end, in, 10);              // id suffix
  var len = end - out;
  set_storage("concat:last", 11, out, len);
  write_output(out, 16);
  return len;
}

// (2) E-notes depository: maps a 10-byte id to a 4 KB payload (§6.1).
fn enotes_deposit() {
  var n = input_size();
  var in = alloc(n);
  read_input(in, n);
  var key = alloc(32);
  var kend = str_append(key, "enote:");
  kend = bytes_append(kend, in, 10);
  set_storage(key, kend - key, in + 10, n - 10);
  return n - 10;
}

// (3) Crypto hash: SHA-256 and Keccak performed 100 times (§6.1),
// chaining each digest back into the message as production contracts do
// when building commitment chains.
fn crypto_hash() {
  var n = input_size();
  var in = alloc(n + 64);
  read_input(in, n);
  var d = alloc(32);
  var i = 0;
  while (i < 100) {
    sha256(in, n, d);
    memcpy(in, d, 32);
    keccak256(in, n, d);
    memcpy(in + 16, d, 32);
    i = i + 1;
  }
  write_output(d, 32);
  return load8(d);
}

// (4) JSON parsing: scans a ~60-kv request for loan/bank info (§6.1).
fn json_parse() {
  var n = input_size();
  var json = alloc(n + 1);
  read_input(json, n);
  var count = json_count_fields(json, n);
  var amount = 0;
  var v = json_find_field(json, n, "loan_amount");
  if (v != 0) { amount = dec_to_u64(v); }
  var bank = alloc(64);
  var blen = 0;
  v = json_find_field(json, n, "bank_name");
  if (v != 0) { blen = json_copy_string(v, bank, 64); }
  var rate = 0;
  v = json_find_field(json, n, "rate_bps");
  if (v != 0) { rate = dec_to_u64(v); }
  write_output(bank, blen);
  return count * 1000000 + amount + rate;
}
)CCL";
}

// ---------------------------------------------------------------------------
// ABS (Figures 9 & 12)
// ---------------------------------------------------------------------------

const char* AbsContractSource() {
  return R"CCL(
// Seeds the validation whitelists (run once at setup).
fn abs_seed_whitelist() {
  set_storage("inst:icbc", 9, "1", 1);
  set_storage("inst:cmb", 8, "1", 1);
  set_storage("inst:abc", 8, "1", 1);
  set_storage("mode:monthly", 12, "1", 1);
  set_storage("mode:quarterly", 14, "1", 1);
  set_storage("class:receivable", 16, "1", 1);
  return 1;
}

fn abs_check_listed(prefix, name, name_len) {
  var key = make_key(prefix, name, name_len);
  var v = alloc(8);
  var n = get_storage(key, strlen(key), v, 8);
  return n > 0;
}

// FlatLite asset fields: 0 id, 1 institution, 2 repay_mode, 3 class,
// 4 amount, 5 rate_bps, 6 term_months, 7 debtor, 8 creditor, 9 blob.
fn abs_transfer() {
  var n = input_size();
  var in = alloc(n);
  read_input(in, n);
  // 1. authentication (whitelisted institution).
  if (abs_check_listed("inst:", flat_bytes_ptr(in, 1), flat_bytes_len(in, 1)) == 0) { abort(1); }
  // 2. asset parsing: ~10 attributes, O(1) offset reads.
  var amount = flat_u64(in, 4);
  var rate = flat_u64(in, 5);
  var term = flat_u64(in, 6);
  // 3. validation: inclusion, numeric comparison, string comparison.
  if (abs_check_listed("mode:", flat_bytes_ptr(in, 2), flat_bytes_len(in, 2)) == 0) { abort(2); }
  if (abs_check_listed("class:", flat_bytes_ptr(in, 3), flat_bytes_len(in, 3)) == 0) { abort(3); }
  if (amount < 1000 || amount > 100000000) { abort(4); }
  if (rate > 5000) { abort(5); }
  if (term < 1 || term > 360) { abort(6); }
  if (flat_bytes_len(in, 7) == 0 || flat_bytes_len(in, 8) == 0) { abort(7); }
  // 4. asset storage: the ~1 KB record lands under "asset:<id>".
  var key = make_key("asset:", flat_bytes_ptr(in, 0), flat_bytes_len(in, 0));
  set_storage(key, strlen(key), in, n);
  var out = alloc(16);
  store64(out, amount);
  write_output(out, 8);
  return amount;
}

// The pre-OPT2 variant: the same flow over a JSON-encoded record, paying
// a linear scan per attribute (~450K interpreted instructions, §6.4).
fn abs_transfer_json() {
  var n = input_size();
  var json = alloc(n + 1);
  read_input(json, n);
  var v = json_find_field(json, n, "institution");
  if (v == 0) { abort(10); }
  var inst = alloc(64);
  var inst_len = json_copy_string(v, inst, 64);
  if (abs_check_listed("inst:", inst, inst_len) == 0) { abort(1); }
  v = json_find_field(json, n, "repay_mode");
  if (v == 0) { abort(11); }
  var mode = alloc(64);
  var mode_len = json_copy_string(v, mode, 64);
  if (abs_check_listed("mode:", mode, mode_len) == 0) { abort(2); }
  v = json_find_field(json, n, "asset_class");
  if (v == 0) { abort(12); }
  var cls = alloc(64);
  var cls_len = json_copy_string(v, cls, 64);
  if (abs_check_listed("class:", cls, cls_len) == 0) { abort(3); }
  v = json_find_field(json, n, "amount");
  if (v == 0) { abort(13); }
  var amount = dec_to_u64(v);
  v = json_find_field(json, n, "rate_bps");
  if (v == 0) { abort(14); }
  var rate = dec_to_u64(v);
  v = json_find_field(json, n, "term_months");
  if (v == 0) { abort(15); }
  var term = dec_to_u64(v);
  if (json_find_field(json, n, "debtor") == 0) { abort(16); }
  if (json_find_field(json, n, "creditor") == 0) { abort(17); }
  v = json_find_field(json, n, "asset_id");
  if (v == 0) { abort(18); }
  var id = alloc(64);
  var id_len = json_copy_string(v, id, 64);
  if (amount < 1000 || amount > 100000000) { abort(4); }
  if (rate > 5000) { abort(5); }
  if (term < 1 || term > 360) { abort(6); }
  var key = make_key("asset:", id, id_len);
  set_storage(key, strlen(key), json, n);
  var out = alloc(16);
  store64(out, amount);
  write_output(out, 8);
  return amount;
}
)CCL";
}

// ---------------------------------------------------------------------------
// SCF-AR (Figure 8, Table 1)
// ---------------------------------------------------------------------------

std::vector<std::pair<std::string, const char*>> ScfArContracts() {
  return {
      {"scf.gateway", R"CCL(
// Entry point of every AR flow (paper Figure 8).
fn transfer() {
  var n = input_size();
  var in = alloc(n + 1);
  read_input(in, n);
  var out = alloc(64);
  var m = call_named("scf.manager", "dispatch", in, n, out, 64);
  write_output(out, m);
  return 0;
}
)CCL"},

      {"scf.manager", R"CCL(
// Parses the request and dispatches to the service contracts.
fn dispatch() {
  var n = input_size();
  var in = alloc(n + 1);
  read_input(in, n);
  var end = in + n;
  var asset = line_at(in, end, 0);
  var asset_len = line_len(asset, end);
  var from = line_at(in, end, 1);
  var from_len = line_len(from, end);
  var to = line_at(in, end, 2);
  var to_len = line_len(to, end);
  var amount = dec_to_u64(line_at(in, end, 3));

  // Policy checks.
  if (amount > state_get_u64("policy:max")) { abort(1); }
  if (amount < state_get_u64("policy:min")) { abort(2); }
  var tranches = state_get_u64("policy:tranches");
  if (tranches == 0) { tranches = 6; }

  // Authenticate both parties (creditworthiness, Figure 1).
  var out = alloc(64);
  if (call_named("scf.account", "check", from, from_len, out, 8) == 0) { abort(3); }
  if (load8(out) != 49) { abort(3); }
  if (call_named("scf.account", "check", to, to_len, out, 8) == 0) { abort(4); }
  if (load8(out) != 49) { abort(4); }

  // Validate the receivable certificate.
  var vargs = alloc(asset_len + 1 + from_len);
  var ve = bytes_append(vargs, asset, asset_len);
  store8(ve, 10);
  bytes_append(ve + 1, from, from_len);
  if (call_named("scf.asset", "validate", vargs, asset_len + 1 + from_len, out, 8) == 0) { abort(5); }
  if (load8(out) != 49) { abort(5); }

  // Validate the move tranche by tranche (read-only per tranche; the
  // settlement persists once at commit — real AR flows batch the writes).
  var piece = amount / tranches;
  var t = 0;
  var fee_total = 0;
  var dec = alloc(32);
  while (t < tranches) {
    var dl = u64_to_dec(piece, dec);
    call_named("scf.fee", "calc", dec, dl, out, 16);
    fee_total = fee_total + load64(out);
    var margs = alloc(asset_len + 1 + 32);
    var me = bytes_append(margs, asset, asset_len);
    store8(me, 10);
    var ml = u64_to_dec(piece, me + 1);
    call_named("scf.transfer", "move", margs, asset_len + 1 + ml, out, 8);
    t = t + 1;
  }
  // Persist the total movement once.
  var cargs = alloc(asset_len + 1 + 32);
  var ce = bytes_append(cargs, asset, asset_len);
  store8(ce, 10);
  var cl = u64_to_dec(amount, ce + 1);
  call_named("scf.transfer", "commit", cargs, asset_len + 1 + cl, out, 8);

  // Settle balances once (netting), clear and audit.
  var sargs = alloc(from_len + 1 + to_len + 1 + 32);
  var se = bytes_append(sargs, from, from_len);
  store8(se, 10);
  se = bytes_append(se + 1, to, to_len);
  store8(se, 10);
  var sl = u64_to_dec(amount, se + 1);
  var sargs_len = (se + 1 + sl) - sargs;
  if (call_named("scf.account", "settle", sargs, sargs_len, out, 8) == 0) { abort(6); }
  call_named("scf.clearing", "record", in, n, out, 8);
  call_named("scf.audit", "log", asset, asset_len, out, 8);

  var result = alloc(16);
  store64(result, amount - fee_total);
  write_output(result, 8);
  return amount;
}

fn seed() {
  state_put_u64("policy:max", 100000000);
  state_put_u64("policy:min", 10);
  state_put_u64("policy:tranches", 6);
  return 1;
}
)CCL"},

      {"scf.account", R"CCL(
// Account service: status/kyc/limit checks + netted settlement.
fn check() {
  var n = input_size();
  var name = alloc(n + 1);
  read_input(name, n);
  var k = make_key2("acct:", name, n, ":status");
  if (state_get_u64(k) != 1) { write_output("0", 1); return 0; }
  k = make_key2("acct:", name, n, ":kyc");
  if (state_get_u64(k) != 1) { write_output("0", 1); return 0; }
  k = make_key2("acct:", name, n, ":limit");
  var limit = state_get_u64(k);
  var out = alloc(32);
  var m = call_named("scf.risk", "score", name, n, out, 16);
  if (m == 0) { write_output("0", 1); return 0; }
  var score = load64(out);
  if (score > limit) { write_output("0", 1); return 0; }
  write_output("1", 1);
  return 1;
}

fn settle() {
  var n = input_size();
  var in = alloc(n + 1);
  read_input(in, n);
  var end = in + n;
  var from = line_at(in, end, 0);
  var from_len = line_len(from, end);
  var to = line_at(in, end, 1);
  var to_len = line_len(to, end);
  var amount = dec_to_u64(line_at(in, end, 2));
  var kf = make_key2("acct:", from, from_len, ":bal");
  var kt = make_key2("acct:", to, to_len, ":bal");
  var bf = state_get_u64(kf);
  if (bf < amount) { write_output("0", 1); return 0; }
  state_put_u64(kf, bf - amount);
  state_put_u64(kt, state_get_u64(kt) + amount);
  write_output("1", 1);
  return 1;
}

fn seed() {
  // Seeds one account named by the input with history records.
  var n = input_size();
  var name = alloc(n + 1);
  read_input(name, n);
  state_put_u64(make_key2("acct:", name, n, ":status"), 1);
  state_put_u64(make_key2("acct:", name, n, ":kyc"), 1);
  state_put_u64(make_key2("acct:", name, n, ":limit"), 1000000);
  state_put_u64(make_key2("acct:", name, n, ":bal"), 100000000);
  var i = 0;
  var idx = alloc(8);
  while (i < 20) {
    store64(idx, i);
    var k = make_key2("hist:", name, n, ":");
    var e = k + strlen(k);
    var dl = u64_to_dec(i, e);
    store8(e + dl, 0);
    state_put_u64(k, 10 + i);
    i = i + 1;
  }
  return 1;
}
)CCL"},

      {"scf.risk", R"CCL(
// Risk scoring over the account's trading history (trustable data on
// chain reduces counterparty risk, paper §1).
fn score() {
  var n = input_size();
  var name = alloc(n + 1);
  read_input(name, n);
  var total = 0;
  var i = 0;
  var dec = alloc(24);
  while (i < 20) {
    var k = make_key2("hist:", name, n, ":");
    var e = k + strlen(k);
    var dl = u64_to_dec(i, e);
    store8(e + dl, 0);
    total = total + state_get_u64(k);
    i = i + 1;
  }
  var out = alloc(8);
  store64(out, total / 20);
  write_output(out, 8);
  return total;
}
)CCL"},

      {"scf.asset", R"CCL(
// Receivable certificate validation.
fn validate() {
  var n = input_size();
  var in = alloc(n + 1);
  read_input(in, n);
  var end = in + n;
  var asset = line_at(in, end, 0);
  var asset_len = line_len(asset, end);
  var owner = line_at(in, end, 1);
  var owner_len = line_len(owner, end);

  if (state_get_u64(make_key2("ar:", asset, asset_len, ":state")) != 1) {
    write_output("0", 1);
    return 0;
  }
  // Owner check: stored owner name must match byte-for-byte.
  var stored = alloc(64);
  var k = make_key2("ar:", asset, asset_len, ":owner");
  var sl = get_storage(k, strlen(k), stored, 64);
  if (sl != owner_len) { write_output("0", 1); return 0; }
  if (bytes_eq(stored, owner, owner_len) == 0) { write_output("0", 1); return 0; }
  state_get_u64(make_key2("ar:", asset, asset_len, ":class"));

  var out = alloc(8);
  if (call_named("scf.provenance", "verify", asset, asset_len, out, 8) == 0) {
    write_output("0", 1);
    return 0;
  }
  call_named("scf.audit", "log", asset, asset_len, out, 8);
  write_output("1", 1);
  return 1;
}

fn seed() {
  // input: "<asset>\n<owner>"
  var n = input_size();
  var in = alloc(n + 1);
  read_input(in, n);
  var end = in + n;
  var asset = line_at(in, end, 0);
  var asset_len = line_len(asset, end);
  var owner = line_at(in, end, 1);
  var owner_len = line_len(owner, end);
  state_put_u64(make_key2("ar:", asset, asset_len, ":state"), 1);
  state_put_u64(make_key2("ar:", asset, asset_len, ":class"), 3);
  state_put_u64(make_key2("ar:", asset, asset_len, ":face"), 1000000);
  var k = make_key2("ar:", asset, asset_len, ":owner");
  set_storage(k, strlen(k), owner, owner_len);
  var i = 0;
  while (i < 20) {
    var hk = make_key2("prov:", asset, asset_len, ":");
    var e = hk + strlen(hk);
    var dl = u64_to_dec(i, e);
    store8(e + dl, 0);
    state_put_u64(hk, i + 1);
    i = i + 1;
  }
  return 1;
}
)CCL"},

      {"scf.provenance", R"CCL(
// Walks the certificate's provenance chain (invoices, purchase orders —
// the pivotal steps of Figure 1).
fn verify() {
  var n = input_size();
  var asset = alloc(n + 1);
  read_input(asset, n);
  var i = 0;
  var ok = 1;
  while (i < 20) {
    var k = make_key2("prov:", asset, n, ":");
    var e = k + strlen(k);
    var dl = u64_to_dec(i, e);
    store8(e + dl, 0);
    if (state_get_u64(k) != i + 1) { ok = 0; }
    i = i + 1;
  }
  var out = alloc(8);
  store64(out, ok);
  write_output(out, 8);
  return ok;
}
)CCL"},

      {"scf.fee", R"CCL(
fn calc() {
  var n = input_size();
  var dec = alloc(n + 1);
  read_input(dec, n);
  var amount = dec_to_u64(dec);
  var rate = state_get_u64("fee:bps");
  if (rate == 0) { rate = 25; }
  var out = alloc(8);
  store64(out, amount * rate / 10000);
  write_output(out, 8);
  return 0;
}

fn seed() {
  state_put_u64("fee:bps", 25);
  return 1;
}
)CCL"},

      {"scf.transfer", R"CCL(
// Validates one tranche of the move (read-only: limits, state, class,
// prior movement) and consults the recent ledger window.
fn move() {
  var n = input_size();
  var in = alloc(n + 1);
  read_input(in, n);
  var end = in + n;
  var asset = line_at(in, end, 0);
  var asset_len = line_len(asset, end);
  var piece = dec_to_u64(line_at(in, end, 1));

  // Reads are against this service's own movement-tracking namespace.
  var moved = state_get_u64(make_key2("ar:", asset, asset_len, ":moved"));
  state_get_u64(make_key2("ar:", asset, asset_len, ":hold"));
  state_get_u64(make_key2("ar:", asset, asset_len, ":lock"));
  state_get_u64(make_key2("ar:", asset, asset_len, ":face"));

  var out = alloc(8);
  call_named("scf.ledger", "window", asset, asset_len, out, 8);
  store64(out, moved + piece);
  write_output(out, 8);
  return 0;
}

// Persists the total movement once per transfer and journals it.
fn commit() {
  var n = input_size();
  var in = alloc(n + 1);
  read_input(in, n);
  var end = in + n;
  var asset = line_at(in, end, 0);
  var asset_len = line_len(asset, end);
  var amount = dec_to_u64(line_at(in, end, 1));
  var k = make_key2("ar:", asset, asset_len, ":moved");
  var moved = state_get_u64(k);
  state_put_u64(k, moved + amount);
  var out = alloc(8);
  call_named("scf.ledger", "append", asset, asset_len, out, 8);
  store64(out, moved + amount);
  write_output(out, 8);
  return 0;
}
)CCL"},

      {"scf.ledger", R"CCL(
// Read-only scan of the recent activity window (duplicate detection).
fn window() {
  var n = input_size();
  var tag = alloc(n + 1);
  read_input(tag, n);
  var seq = state_get_u64("ledger:seq");
  var i = 0;
  while (i < 5) {
    var k = make_key("ledger:e", tag, 0);
    var e = k + strlen(k);
    var at = 0;
    if (seq > i) { at = seq - 1 - i; }
    var dl = u64_to_dec(at, e);
    store8(e + dl, 0);
    state_get_u64(k);
    i = i + 1;
  }
  var out = alloc(8);
  store64(out, seq);
  write_output(out, 8);
  return 0;
}

// Appends one journal entry.
fn append() {
  var n = input_size();
  var tag = alloc(n + 1);
  read_input(tag, n);
  var seq = state_get_u64("ledger:seq");
  var key = make_key("ledger:e", tag, 0);
  var e = key + strlen(key);
  var dl = u64_to_dec(seq, e);
  store8(e + dl, 0);
  state_put_u64(key, seq);
  state_put_u64("ledger:seq", seq + 1);
  var out = alloc(8);
  store64(out, seq);
  write_output(out, 8);
  return 0;
}
)CCL"},

      {"scf.clearing", R"CCL(
// Final clearing record for the transfer.
fn record() {
  var n = input_size();
  var in = alloc(n + 1);
  read_input(in, n);
  var end = in + n;
  var asset = line_at(in, end, 0);
  var asset_len = line_len(asset, end);
  var k = make_key2("clr:", asset, asset_len, ":done");
  var done = state_get_u64(k);
  state_put_u64(k, done + 1);
  write_output("1", 1);
  return 1;
}
)CCL"},

      {"scf.audit", R"CCL(
// Audit trail entry (asset-level statistics for third parties, §4).
fn log() {
  var n = input_size();
  var tag = alloc(n + 1);
  read_input(tag, n);
  var k = make_key("audit:", tag, n);
  var count = state_get_u64(k);
  state_put_u64(k, count + 1);
  write_output("1", 1);
  return 1;
}
)CCL"},
  };
}

// ---------------------------------------------------------------------------
// Input generators
// ---------------------------------------------------------------------------

namespace {

std::string RandomWord(crypto::Drbg* rng, size_t len) {
  static const char kAlpha[] = "abcdefghijklmnopqrstuvwxyz0123456789";
  std::string out;
  out.reserve(len);
  for (size_t i = 0; i < len; ++i) {
    out.push_back(kAlpha[rng->NextBounded(sizeof(kAlpha) - 1)]);
  }
  return out;
}

}  // namespace

std::string MakeJsonRecord(crypto::Drbg* rng, int n_keys) {
  serialize::JsonValue obj{serialize::JsonValue::Object{}};
  for (int i = 0; i < n_keys; ++i) {
    std::string key = "field_" + std::to_string(i) + "_" + RandomWord(rng, 4);
    if (rng->NextBounded(3) == 0) {
      obj.Set(std::move(key), int64_t(rng->NextBounded(1'000'000)));
    } else {
      obj.Set(std::move(key), RandomWord(rng, 8 + rng->NextBounded(16)));
    }
  }
  return serialize::JsonWrite(obj);
}

Bytes MakeStringConcatInput(crypto::Drbg* rng) {
  std::string id = RandomWord(rng, 10);
  std::string json = MakeJsonRecord(rng, 35);
  return Concat(AsByteView(id), AsByteView(json));
}

Bytes MakeENotesInput(crypto::Drbg* rng) {
  std::string id = RandomWord(rng, 10);
  Bytes payload = rng->Generate(4096);
  // Keep the payload printable-ish (an invoice scan in practice).
  for (uint8_t& byte : payload) byte = uint8_t('a' + byte % 26);
  return Concat(AsByteView(id), payload);
}

Bytes MakeCryptoHashInput(crypto::Drbg* rng) { return rng->Generate(64); }

Bytes MakeJsonParseInput(crypto::Drbg* rng) {
  serialize::JsonValue obj{serialize::JsonValue::Object{}};
  obj.Set("loan_amount", int64_t(50'000 + rng->NextBounded(1'000'000)));
  obj.Set("bank_name", "bank-" + RandomWord(rng, 8));
  obj.Set("rate_bps", int64_t(100 + rng->NextBounded(400)));
  for (int i = 0; i < 57; ++i) {
    obj.Set("attr_" + std::to_string(i), RandomWord(rng, 8 + rng->NextBounded(20)));
  }
  return ToBytes(serialize::JsonWrite(obj));
}

Bytes MakeAbsAssetFlat(crypto::Drbg* rng, uint64_t asset_seq) {
  serialize::FlatLiteBuilder builder(10);
  builder.SetString(0, "ar-" + std::to_string(asset_seq));
  builder.SetString(1, "icbc");
  builder.SetString(2, "monthly");
  builder.SetString(3, "receivable");
  builder.SetU64(4, 10'000 + rng->NextBounded(1'000'000));
  builder.SetU64(5, 100 + rng->NextBounded(400));
  builder.SetU64(6, 6 + rng->NextBounded(60));
  builder.SetString(7, "debtor-" + RandomWord(rng, 12));
  builder.SetString(8, "creditor-" + RandomWord(rng, 12));
  Bytes blob = rng->Generate(820);  // pads the record to ~1 KB (§6.1)
  builder.SetBytes(9, blob);
  return builder.Finish();
}

Bytes MakeAbsAssetJson(crypto::Drbg* rng, uint64_t asset_seq) {
  serialize::JsonValue obj{serialize::JsonValue::Object{}};
  obj.Set("asset_id", "ar-" + std::to_string(asset_seq));
  obj.Set("institution", "icbc");
  obj.Set("repay_mode", "monthly");
  obj.Set("asset_class", "receivable");
  obj.Set("amount", int64_t(10'000 + rng->NextBounded(1'000'000)));
  obj.Set("rate_bps", int64_t(100 + rng->NextBounded(400)));
  obj.Set("term_months", int64_t(6 + rng->NextBounded(60)));
  obj.Set("debtor", "debtor-" + RandomWord(rng, 12));
  obj.Set("creditor", "creditor-" + RandomWord(rng, 12));
  // The production request format carries ~60 key-values (§6.1); the
  // contract must scan past them to reach each field it needs.
  for (int i = 0; i < 50; ++i) {
    obj.Set("ext_" + std::to_string(i), RandomWord(rng, 10 + rng->NextBounded(12)));
  }
  obj.Set("blob", RandomWord(rng, 300));
  return ToBytes(serialize::JsonWrite(obj));
}

Bytes MakeScfTransferInput(crypto::Drbg* rng, uint64_t seq) {
  std::string request = "ar-cert-" + std::to_string(seq % 4) + "\n" +
                        "supplier-alpha\n" + "bank-one\n" +
                        std::to_string(600 + rng->NextBounded(5'000));
  return ToBytes(request);
}

}  // namespace confide::workloads
