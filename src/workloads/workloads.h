/// \file workloads.h
/// \brief The paper's evaluation workloads (§6): contract sources in CCL
/// and matching input generators.
///
///  * **Synthetic** (§6.1, Figure 10): string concatenation, E-notes
///    depository (4 KB), crypto hash (100× SHA-256 + Keccak), JSON
///    parsing (~60 key-values).
///  * **ABS** (§6.1/6.4, Figures 9 & 12): asset transfer with
///    authentication, parsing (JSON or Flatbuffers-style), validation
///    (inclusion, numeric, string comparisons) and ~1 KB storage.
///  * **SCF-AR** (§6.3, Figure 8, Table 1): the hierarchical supply-chain
///    finance flow — Gateway → Manager → service contracts — profiled at
///    ~31 contract calls, ~151 GetStorage, ~9 SetStorage per transfer.

#pragma once

#include <string>
#include <vector>

#include "chain/types.h"
#include "common/bytes.h"
#include "crypto/drbg.h"

namespace confide::workloads {

// ---------------------------------------------------------------------------
// Contract sources (CCL — compile for either VM via lang::Compile)
// ---------------------------------------------------------------------------

/// \brief Entries: string_concat, enotes_deposit, crypto_hash, json_parse.
const char* SyntheticContractSource();

/// \brief Entries: abs_transfer (FlatLite input, post-OPT2),
/// abs_transfer_json (JSON input, pre-OPT2), abs_seed_whitelist.
const char* AbsContractSource();

/// \brief The SCF-AR contract suite: (service name, source) pairs. Deploy
/// each at chain::NamedAddress(name). The flow entry is
/// "transfer" on "scf.gateway"; seed accounts first via "seed" entries.
std::vector<std::pair<std::string, const char*>> ScfArContracts();

// ---------------------------------------------------------------------------
// Input generators
// ---------------------------------------------------------------------------

/// \brief JSON object with `n_keys` string/number members.
std::string MakeJsonRecord(crypto::Drbg* rng, int n_keys);

/// \brief String-concatenation input: 10-byte id + 35-kv JSON (§6.1 (1)).
Bytes MakeStringConcatInput(crypto::Drbg* rng);

/// \brief E-notes input: 10-byte id + 4 KB payload (§6.1 (2)).
Bytes MakeENotesInput(crypto::Drbg* rng);

/// \brief Crypto-hash input: a 64-byte message (§6.1 (3)).
Bytes MakeCryptoHashInput(crypto::Drbg* rng);

/// \brief JSON-parsing input: ~60-kv request with loan/bank info (§6.1 (4)).
Bytes MakeJsonParseInput(crypto::Drbg* rng);

/// \brief ABS asset record with ~10 attributes in FlatLite form, ~1 KB.
Bytes MakeAbsAssetFlat(crypto::Drbg* rng, uint64_t asset_seq);

/// \brief Same record as JSON text (the pre-OPT2 encoding).
Bytes MakeAbsAssetJson(crypto::Drbg* rng, uint64_t asset_seq);

/// \brief SCF-AR transfer request: "<asset>\n<from>\n<to>\n<amount>".
Bytes MakeScfTransferInput(crypto::Drbg* rng, uint64_t seq);

}  // namespace confide::workloads
