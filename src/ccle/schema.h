/// \file schema.h
/// \brief CCLe schema: the confidential smart-contract language extension.
///
/// CCLe (paper §4) is a FlatBuffers-flavoured IDL with two extra
/// attributes: `confidential` marks data that must only exist in plain
/// text inside the enclave, and `map` declares key:value composite fields
/// (the account:asset model). The parser propagates `confidential`
/// recursively into composite types, exactly as the paper describes: "the
/// composite data types will be parsed recursively, and all the primitive
/// data in it will be set confidential attribute".
///
/// Example (paper Listing 1):
///
///   attribute "map";
///   attribute "confidential";
///   table Demo {
///     owner: string;
///     admin: [Administrator];
///     account_map: [Account](map);
///   }
///   table Account {
///     user_id: string;
///     organization: string(confidential);
///     asset_map: [Asset](map, confidential);
///   }
///   root_type Demo;

#pragma once

#include <string>
#include <unordered_map>
#include <vector>

#include "common/status.h"

namespace confide::ccle {

/// \brief Primitive and composite field types.
enum class FieldType : uint8_t {
  kUByte,
  kUInt,
  kULong,
  kString,
  kTable,   ///< nested table (named in `table_type`)
};

/// \brief One table field.
struct FieldDef {
  std::string name;
  FieldType type = FieldType::kULong;
  std::string table_type;   ///< for kTable (element type when vector/map)
  bool is_vector = false;   ///< `[T]`
  bool is_map = false;      ///< `(map)` — vector of key:value entries
  bool confidential = false;
  uint32_t index = 0;       ///< FlatLite slot
};

/// \brief One `table` declaration.
struct TableDef {
  std::string name;
  std::vector<FieldDef> fields;

  const FieldDef* FindField(std::string_view field_name) const {
    for (const FieldDef& field : fields) {
      if (field.name == field_name) return &field;
    }
    return nullptr;
  }
};

/// \brief A parsed schema.
struct Schema {
  std::unordered_map<std::string, TableDef> tables;
  std::string root_type;

  const TableDef* FindTable(std::string_view name) const {
    auto it = tables.find(std::string(name));
    return it == tables.end() ? nullptr : &it->second;
  }
};

/// \brief Parses CCLe schema text. Validates that referenced table types
/// exist, the root type is declared, attributes are declared before use,
/// and there are no reference cycles (tables must form a DAG).
Result<Schema> ParseSchema(std::string_view source);

}  // namespace confide::ccle
