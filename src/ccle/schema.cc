#include "ccle/schema.h"

#include <cctype>
#include <functional>
#include <set>

namespace confide::ccle {

namespace {

struct SchemaParser {
  std::string_view text;
  size_t pos = 0;
  int line = 1;

  Status Error(const std::string& what) const {
    return Status::InvalidArgument("ccle schema: " + what + " at line " +
                                   std::to_string(line));
  }

  void SkipWs() {
    while (pos < text.size()) {
      char c = text[pos];
      if (c == '\n') {
        ++line;
        ++pos;
      } else if (c == ' ' || c == '\t' || c == '\r') {
        ++pos;
      } else if (c == '/' && pos + 1 < text.size() && text[pos + 1] == '/') {
        while (pos < text.size() && text[pos] != '\n') ++pos;
      } else {
        break;
      }
    }
  }

  bool AtEnd() {
    SkipWs();
    return pos >= text.size();
  }

  bool Consume(char c) {
    SkipWs();
    if (pos < text.size() && text[pos] == c) {
      ++pos;
      return true;
    }
    return false;
  }

  Status Expect(char c) {
    if (Consume(c)) return Status::OK();
    return Error(std::string("expected '") + c + "'");
  }

  Result<std::string> Ident() {
    SkipWs();
    if (pos >= text.size() || !(std::isalpha(uint8_t(text[pos])) || text[pos] == '_')) {
      return Error("expected identifier");
    }
    size_t start = pos;
    while (pos < text.size() &&
           (std::isalnum(uint8_t(text[pos])) || text[pos] == '_')) {
      ++pos;
    }
    return std::string(text.substr(start, pos - start));
  }

  Result<std::string> QuotedString() {
    SkipWs();
    if (pos >= text.size() || text[pos] != '"') return Error("expected string");
    ++pos;
    size_t start = pos;
    while (pos < text.size() && text[pos] != '"') ++pos;
    if (pos >= text.size()) return Error("unterminated string");
    std::string s(text.substr(start, pos - start));
    ++pos;
    return s;
  }

  bool PeekKeyword(std::string_view kw) {
    SkipWs();
    if (text.substr(pos, kw.size()) != kw) return false;
    size_t after = pos + kw.size();
    if (after < text.size() &&
        (std::isalnum(uint8_t(text[after])) || text[after] == '_')) {
      return false;
    }
    pos = after;
    return true;
  }
};

Result<FieldType> TypeFromName(const std::string& name, bool* is_table) {
  *is_table = false;
  if (name == "ubyte") return FieldType::kUByte;
  if (name == "uint") return FieldType::kUInt;
  if (name == "ulong") return FieldType::kULong;
  if (name == "string") return FieldType::kString;
  *is_table = true;
  return FieldType::kTable;
}

// Detects reference cycles among tables via DFS.
Status CheckAcyclic(const Schema& schema) {
  enum class Mark { kWhite, kGray, kBlack };
  std::unordered_map<std::string, Mark> marks;
  std::function<Status(const std::string&)> visit =
      [&](const std::string& name) -> Status {
    Mark& mark = marks[name];
    if (mark == Mark::kGray) {
      return Status::InvalidArgument("ccle schema: cycle through table " + name);
    }
    if (mark == Mark::kBlack) return Status::OK();
    mark = Mark::kGray;
    const TableDef* table = schema.FindTable(name);
    for (const FieldDef& field : table->fields) {
      if (field.type == FieldType::kTable) {
        CONFIDE_RETURN_NOT_OK(visit(field.table_type));
      }
    }
    marks[name] = Mark::kBlack;
    return Status::OK();
  };
  for (const auto& [name, table] : schema.tables) {
    CONFIDE_RETURN_NOT_OK(visit(name));
  }
  return Status::OK();
}

}  // namespace

Result<Schema> ParseSchema(std::string_view source) {
  SchemaParser p{source};
  Schema schema;
  std::set<std::string> declared_attributes;

  while (!p.AtEnd()) {
    if (p.PeekKeyword("attribute")) {
      CONFIDE_ASSIGN_OR_RETURN(std::string attr, p.QuotedString());
      CONFIDE_RETURN_NOT_OK(p.Expect(';'));
      declared_attributes.insert(attr);
      continue;
    }
    if (p.PeekKeyword("root_type")) {
      CONFIDE_ASSIGN_OR_RETURN(schema.root_type, p.Ident());
      CONFIDE_RETURN_NOT_OK(p.Expect(';'));
      continue;
    }
    if (p.PeekKeyword("table")) {
      TableDef table;
      CONFIDE_ASSIGN_OR_RETURN(table.name, p.Ident());
      if (schema.tables.count(table.name)) {
        return p.Error("duplicate table " + table.name);
      }
      CONFIDE_RETURN_NOT_OK(p.Expect('{'));
      uint32_t index = 0;
      while (!p.Consume('}')) {
        FieldDef field;
        field.index = index++;
        CONFIDE_ASSIGN_OR_RETURN(field.name, p.Ident());
        CONFIDE_RETURN_NOT_OK(p.Expect(':'));
        if (p.Consume('[')) {
          field.is_vector = true;
          CONFIDE_ASSIGN_OR_RETURN(std::string type_name, p.Ident());
          bool is_table = false;
          CONFIDE_ASSIGN_OR_RETURN(field.type, TypeFromName(type_name, &is_table));
          if (is_table) field.table_type = type_name;
          CONFIDE_RETURN_NOT_OK(p.Expect(']'));
        } else {
          CONFIDE_ASSIGN_OR_RETURN(std::string type_name, p.Ident());
          bool is_table = false;
          CONFIDE_ASSIGN_OR_RETURN(field.type, TypeFromName(type_name, &is_table));
          if (is_table) field.table_type = type_name;
        }
        // Optional attribute list: (map), (confidential), (map, confidential).
        if (p.Consume('(')) {
          do {
            CONFIDE_ASSIGN_OR_RETURN(std::string attr, p.Ident());
            if (!declared_attributes.count(attr)) {
              return p.Error("attribute '" + attr + "' used before declaration");
            }
            if (attr == "map") {
              field.is_map = true;
            } else if (attr == "confidential") {
              field.confidential = true;
            } else {
              return p.Error("unknown attribute '" + attr + "'");
            }
          } while (p.Consume(','));
          CONFIDE_RETURN_NOT_OK(p.Expect(')'));
        }
        CONFIDE_RETURN_NOT_OK(p.Expect(';'));
        if (field.is_map && !field.is_vector) {
          return p.Error("map attribute requires a vector type for field " +
                         field.name);
        }
        table.fields.push_back(std::move(field));
      }
      schema.tables[table.name] = std::move(table);
      continue;
    }
    return p.Error("expected 'attribute', 'table' or 'root_type'");
  }

  // Validation: referenced tables exist; root type exists.
  for (const auto& [name, table] : schema.tables) {
    for (const FieldDef& field : table.fields) {
      if (field.type == FieldType::kTable &&
          !schema.tables.count(field.table_type)) {
        return Status::InvalidArgument("ccle schema: unknown table type '" +
                                       field.table_type + "' in " + name);
      }
    }
  }
  if (schema.root_type.empty()) {
    return Status::InvalidArgument("ccle schema: missing root_type");
  }
  if (!schema.tables.count(schema.root_type)) {
    return Status::InvalidArgument("ccle schema: root_type '" +
                                   schema.root_type + "' not declared");
  }
  CONFIDE_RETURN_NOT_OK(CheckAcyclic(schema));
  return schema;
}

}  // namespace confide::ccle
