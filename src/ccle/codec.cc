#include "ccle/codec.h"

#include "common/endian.h"
#include "serialize/flatlite.h"

namespace confide::ccle {

namespace {

using serialize::FlatLiteBuilder;
using serialize::FlatLiteView;

Bytes ScalarBytes(uint64_t v) {
  Bytes out(8);
  StoreLe64(out.data(), v);
  return out;
}

// ---------------------------------------------------------------------------
// Encoder
// ---------------------------------------------------------------------------

class Encoder {
 public:
  Encoder(const Schema& schema, FieldCipher* cipher, ByteView context)
      : schema_(schema), cipher_(cipher), context_(context) {}

  Result<Bytes> EncodeTable(const TableDef& table, const Value& value,
                            const std::string& path, bool inherited_conf) {
    if (value.kind() != Value::Kind::kTable) {
      return Status::InvalidArgument("ccle: expected table value at " + path);
    }
    FlatLiteBuilder builder(uint32_t(table.fields.size()));
    for (const FieldDef& field : table.fields) {
      const Value* fv = value.FindField(field.name);
      if (fv == nullptr) continue;  // absent field
      bool conf = inherited_conf || field.confidential;
      std::string fpath = path + "." + field.name;

      if (field.is_map) {
        if (fv->kind() != Value::Kind::kMap) {
          return Status::InvalidArgument("ccle: expected map at " + fpath);
        }
        std::vector<Bytes> encoded_entries;
        for (const auto& [key, entry_value] : fv->entries()) {
          FlatLiteBuilder entry(2);
          entry.SetString(0, key);  // map keys stay public (lookup index)
          CONFIDE_ASSIGN_OR_RETURN(
              Bytes elem,
              EncodeElement(field, entry_value, fpath + "[" + key + "]", conf));
          entry.SetBytes(1, elem);
          encoded_entries.push_back(entry.Finish());
        }
        builder.SetVector(field.index, encoded_entries);
      } else if (field.is_vector) {
        if (fv->kind() != Value::Kind::kVector) {
          return Status::InvalidArgument("ccle: expected vector at " + fpath);
        }
        std::vector<Bytes> encoded;
        for (size_t i = 0; i < fv->items().size(); ++i) {
          CONFIDE_ASSIGN_OR_RETURN(
              Bytes elem,
              EncodeElement(field, fv->items()[i],
                            fpath + "[" + std::to_string(i) + "]", conf));
          encoded.push_back(std::move(elem));
        }
        builder.SetVector(field.index, encoded);
      } else {
        CONFIDE_ASSIGN_OR_RETURN(Bytes elem, EncodeElement(field, *fv, fpath, conf));
        // Scalars in plain, non-confidential form use the scalar slot;
        // everything else is a bytes slot.
        if (!conf && field.type != FieldType::kTable &&
            field.type != FieldType::kString) {
          builder.SetU64(field.index, fv->AsUInt());
        } else {
          builder.SetBytes(field.index, elem);
        }
      }
    }
    return builder.Finish();
  }

 private:
  // Encodes one element (scalar / string / nested table), sealing it when
  // confidential. For tables, confidentiality recurses into the leaves.
  Result<Bytes> EncodeElement(const FieldDef& field, const Value& value,
                              const std::string& path, bool conf) {
    switch (field.type) {
      case FieldType::kUByte:
      case FieldType::kUInt:
      case FieldType::kULong: {
        if (value.kind() != Value::Kind::kUInt) {
          return Status::InvalidArgument("ccle: expected scalar at " + path);
        }
        Bytes plain = ScalarBytes(value.AsUInt());
        if (conf) return Seal(plain, path);
        return plain;
      }
      case FieldType::kString: {
        if (value.kind() != Value::Kind::kString) {
          return Status::InvalidArgument("ccle: expected string at " + path);
        }
        Bytes plain = ToBytes(value.AsString());
        if (conf) return Seal(plain, path);
        return plain;
      }
      case FieldType::kTable: {
        const TableDef* nested = schema_.FindTable(field.table_type);
        if (nested == nullptr) {
          return Status::Internal("ccle: unresolved table " + field.table_type);
        }
        // Recursion carries the confidential bit to nested leaves.
        return EncodeTable(*nested, value, path, conf);
      }
    }
    return Status::Internal("ccle: unhandled field type");
  }

  Result<Bytes> Seal(ByteView plain, const std::string& path) {
    Bytes aad = Concat(context_, AsByteView(path));
    return cipher_->Encrypt(plain, aad);
  }

  const Schema& schema_;
  FieldCipher* cipher_;
  ByteView context_;
};

// ---------------------------------------------------------------------------
// Decoder
// ---------------------------------------------------------------------------

class Decoder {
 public:
  // cipher == nullptr -> redacted (audit) mode.
  Decoder(const Schema& schema, FieldCipher* cipher, ByteView context)
      : schema_(schema), cipher_(cipher), context_(context) {}

  Result<Value> DecodeTable(const TableDef& table, ByteView buffer,
                            const std::string& path, bool inherited_conf) {
    CONFIDE_ASSIGN_OR_RETURN(FlatLiteView view, FlatLiteView::Parse(buffer));
    Value value = Value::Table();
    for (const FieldDef& field : table.fields) {
      if (!view.Has(field.index)) continue;
      bool conf = inherited_conf || field.confidential;
      std::string fpath = path + "." + field.name;

      if (field.is_map) {
        CONFIDE_ASSIGN_OR_RETURN(uint32_t count, view.GetVectorSize(field.index));
        Value map = Value::Map();
        for (uint32_t i = 0; i < count; ++i) {
          CONFIDE_ASSIGN_OR_RETURN(ByteView entry_bytes,
                                   view.GetVectorElement(field.index, i));
          CONFIDE_ASSIGN_OR_RETURN(FlatLiteView entry, FlatLiteView::Parse(entry_bytes));
          CONFIDE_ASSIGN_OR_RETURN(std::string_view key, entry.GetString(0));
          CONFIDE_ASSIGN_OR_RETURN(ByteView elem, entry.GetBytes(1));
          CONFIDE_ASSIGN_OR_RETURN(
              Value entry_value,
              DecodeElement(field, elem, fpath + "[" + std::string(key) + "]", conf));
          map.SetEntry(std::string(key), std::move(entry_value));
        }
        value.SetField(field.name, std::move(map));
      } else if (field.is_vector) {
        CONFIDE_ASSIGN_OR_RETURN(uint32_t count, view.GetVectorSize(field.index));
        Value vec = Value::Vector();
        for (uint32_t i = 0; i < count; ++i) {
          CONFIDE_ASSIGN_OR_RETURN(ByteView elem, view.GetVectorElement(field.index, i));
          CONFIDE_ASSIGN_OR_RETURN(
              Value item,
              DecodeElement(field, elem, fpath + "[" + std::to_string(i) + "]", conf));
          vec.Append(std::move(item));
        }
        value.SetField(field.name, std::move(vec));
      } else if (!conf && field.type != FieldType::kTable &&
                 field.type != FieldType::kString) {
        CONFIDE_ASSIGN_OR_RETURN(uint64_t scalar, view.GetU64(field.index));
        value.SetField(field.name, Value::UInt(scalar));
      } else {
        CONFIDE_ASSIGN_OR_RETURN(ByteView elem, view.GetBytes(field.index));
        CONFIDE_ASSIGN_OR_RETURN(Value item, DecodeElement(field, elem, fpath, conf));
        value.SetField(field.name, std::move(item));
      }
    }
    return value;
  }

 private:
  Result<Value> DecodeElement(const FieldDef& field, ByteView elem,
                              const std::string& path, bool conf) {
    if (field.type == FieldType::kTable) {
      const TableDef* nested = schema_.FindTable(field.table_type);
      if (nested == nullptr) {
        return Status::Internal("ccle: unresolved table " + field.table_type);
      }
      return DecodeTable(*nested, elem, path, conf);
    }
    Bytes plain;
    if (conf) {
      if (cipher_ == nullptr) return Value::Redacted();
      Bytes aad = Concat(context_, AsByteView(path));
      CONFIDE_ASSIGN_OR_RETURN(plain, cipher_->Decrypt(elem, aad));
    } else {
      plain = ToBytes(elem);
    }
    if (field.type == FieldType::kString) {
      return Value::String(ToString(plain));
    }
    if (plain.size() != 8) {
      return Status::Corruption("ccle: scalar payload is not 8 bytes at " + path);
    }
    return Value::UInt(LoadLe64(plain.data()));
  }

  const Schema& schema_;
  FieldCipher* cipher_;
  ByteView context_;
};

size_t CountLeaves(const Schema& schema, const TableDef& table, const Value& value,
                   bool inherited_conf) {
  size_t count = 0;
  for (const FieldDef& field : table.fields) {
    const Value* fv = value.FindField(field.name);
    if (fv == nullptr) continue;
    bool conf = inherited_conf || field.confidential;
    auto count_element = [&](const Value& element) -> size_t {
      if (field.type == FieldType::kTable) {
        const TableDef* nested = schema.FindTable(field.table_type);
        return nested ? CountLeaves(schema, *nested, element, conf) : 0;
      }
      return conf ? 1 : 0;
    };
    if (field.is_map) {
      for (const auto& [key, entry] : fv->entries()) count += count_element(entry);
    } else if (field.is_vector) {
      for (const Value& item : fv->items()) count += count_element(item);
    } else {
      count += count_element(*fv);
    }
  }
  return count;
}

}  // namespace

Result<Bytes> EncodeSecure(const Schema& schema, const Value& value,
                           FieldCipher* cipher, ByteView context) {
  const TableDef* root = schema.FindTable(schema.root_type);
  if (root == nullptr) return Status::Internal("ccle: schema has no root");
  Encoder encoder(schema, cipher, context);
  return encoder.EncodeTable(*root, value, schema.root_type, /*inherited=*/false);
}

Result<Value> DecodeSecure(const Schema& schema, ByteView buffer,
                           FieldCipher* cipher, ByteView context) {
  const TableDef* root = schema.FindTable(schema.root_type);
  if (root == nullptr) return Status::Internal("ccle: schema has no root");
  Decoder decoder(schema, cipher, context);
  return decoder.DecodeTable(*root, buffer, schema.root_type, /*inherited=*/false);
}

Result<Value> DecodeRedacted(const Schema& schema, ByteView buffer) {
  const TableDef* root = schema.FindTable(schema.root_type);
  if (root == nullptr) return Status::Internal("ccle: schema has no root");
  Decoder decoder(schema, /*cipher=*/nullptr, ByteView{});
  return decoder.DecodeTable(*root, buffer, schema.root_type, /*inherited=*/false);
}

size_t CountConfidentialLeaves(const Schema& schema, const Value& value) {
  const TableDef* root = schema.FindTable(schema.root_type);
  if (root == nullptr) return 0;
  return CountLeaves(schema, *root, value, false);
}

}  // namespace confide::ccle
