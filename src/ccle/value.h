/// \file value.h
/// \brief Runtime value tree for CCLe-typed data.
///
/// Contract state described by a CCLe schema is manipulated as a Value
/// tree in the engine and (de)serialized by the confidential codec. A
/// redacted leaf is what a third-party auditor sees in place of a
/// confidential field when reading without the state key (paper §4's
/// audit motivation).

#pragma once

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "common/bytes.h"
#include "common/status.h"

namespace confide::ccle {

/// \brief A dynamically typed CCLe value.
class Value {
 public:
  enum class Kind : uint8_t {
    kUInt,      ///< ubyte/uint/ulong
    kString,
    kTable,     ///< named fields
    kVector,    ///< homogeneous elements
    kMap,       ///< string key -> Value
    kRedacted,  ///< confidential content, key not available
  };

  Value() : kind_(Kind::kUInt) {}

  static Value UInt(uint64_t v) {
    Value value;
    value.kind_ = Kind::kUInt;
    value.uint_ = v;
    return value;
  }
  static Value String(std::string s) {
    Value value;
    value.kind_ = Kind::kString;
    value.str_ = std::move(s);
    return value;
  }
  static Value Table() {
    Value value;
    value.kind_ = Kind::kTable;
    return value;
  }
  static Value Vector() {
    Value value;
    value.kind_ = Kind::kVector;
    return value;
  }
  static Value Map() {
    Value value;
    value.kind_ = Kind::kMap;
    return value;
  }
  static Value Redacted() {
    Value value;
    value.kind_ = Kind::kRedacted;
    return value;
  }

  Kind kind() const { return kind_; }
  bool is_redacted() const { return kind_ == Kind::kRedacted; }

  uint64_t AsUInt() const { return uint_; }
  const std::string& AsString() const { return str_; }

  /// \brief Table field access (insertion order preserved).
  void SetField(std::string name, Value value) {
    for (auto& [k, v] : fields_) {
      if (k == name) {
        v = std::move(value);
        return;
      }
    }
    fields_.emplace_back(std::move(name), std::move(value));
  }
  const Value* FindField(std::string_view name) const {
    for (const auto& [k, v] : fields_) {
      if (k == name) return &v;
    }
    return nullptr;
  }
  const std::vector<std::pair<std::string, Value>>& fields() const { return fields_; }

  /// \brief Vector element access.
  void Append(Value value) { items_.push_back(std::move(value)); }
  const std::vector<Value>& items() const { return items_; }

  /// \brief Map entry access (insertion order preserved).
  void SetEntry(std::string key, Value value) {
    for (auto& [k, v] : entries_) {
      if (k == key) {
        v = std::move(value);
        return;
      }
    }
    entries_.emplace_back(std::move(key), std::move(value));
  }
  const Value* FindEntry(std::string_view key) const {
    for (const auto& [k, v] : entries_) {
      if (k == key) return &v;
    }
    return nullptr;
  }
  const std::vector<std::pair<std::string, Value>>& entries() const { return entries_; }

  bool operator==(const Value& other) const {
    return kind_ == other.kind_ && uint_ == other.uint_ && str_ == other.str_ &&
           fields_ == other.fields_ && items_ == other.items_ &&
           entries_ == other.entries_;
  }

 private:
  Kind kind_;
  uint64_t uint_ = 0;
  std::string str_;
  std::vector<std::pair<std::string, Value>> fields_;   // kTable
  std::vector<Value> items_;                            // kVector
  std::vector<std::pair<std::string, Value>> entries_;  // kMap
};

}  // namespace confide::ccle
