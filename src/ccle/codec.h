/// \file codec.h
/// \brief The CCLe confidential codec: schema-driven FlatLite
/// serialization where exactly the confidential leaves are encrypted.
///
/// The paper's key cost observation (§4): "instead of encrypting the whole
/// contract states, only sensitive ones are encrypted/decrypted with
/// additional authentication metadata, which greatly saves computation
/// cost." The codec walks the schema; a field marked `confidential` (or
/// nested under one — the attribute propagates recursively) has its
/// primitive leaves sealed individually through a FieldCipher, with the
/// field path bound as associated data so ciphertexts cannot be swapped
/// between fields without detection.

#pragma once

#include <functional>

#include "ccle/schema.h"
#include "ccle/value.h"
#include "common/bytes.h"
#include "common/status.h"

namespace confide::ccle {

/// \brief Pluggable leaf cipher. In production this is the SDM's
/// D-Protocol engine (AES-GCM under k_states with contract identity in
/// the AAD); tests may supply simpler implementations.
class FieldCipher {
 public:
  virtual ~FieldCipher() = default;
  /// \brief Seals `plain` binding `aad`.
  virtual Result<Bytes> Encrypt(ByteView plain, ByteView aad) = 0;
  /// \brief Opens `sealed`; must fail on wrong AAD or tampering.
  virtual Result<Bytes> Decrypt(ByteView sealed, ByteView aad) = 0;
};

/// \brief Serializes `value` (of the schema's root type) to FlatLite,
/// encrypting confidential leaves through `cipher`. `context` prefixes
/// every leaf's AAD (the engine passes contract identity + owner +
/// security version, per D-Protocol).
Result<Bytes> EncodeSecure(const Schema& schema, const Value& value,
                           FieldCipher* cipher, ByteView context);

/// \brief Full decode: confidential leaves are decrypted via `cipher`.
Result<Value> DecodeSecure(const Schema& schema, ByteView buffer,
                           FieldCipher* cipher, ByteView context);

/// \brief Audit decode: no key required; public fields are returned in the
/// clear and confidential leaves come back as Value::Redacted(). This is
/// the third-party-audit view the paper motivates CCLe with.
Result<Value> DecodeRedacted(const Schema& schema, ByteView buffer);

/// \brief Counts the confidential leaves a secure encode would encrypt
/// (used by benchmarks to report crypto-op savings of field-level vs
/// whole-state encryption).
size_t CountConfidentialLeaves(const Schema& schema, const Value& value);

}  // namespace confide::ccle
