#!/usr/bin/env python3
"""CI gate for the storage read-path benchmark.

Reads the metrics.json written by bench_storage and the checked-in
thresholds (bench/storage_perf_thresholds.json), and fails when the
optimized read amplification, the baseline/optimized improvement ratio,
or the optimized get p99 regresses past a bound.

Usage: check_storage_perf.py <metrics.json> <thresholds.json>
"""

import json
import sys


def main() -> int:
    if len(sys.argv) != 3:
        print(__doc__, file=sys.stderr)
        return 2
    with open(sys.argv[1]) as f:
        metrics = json.load(f)
    with open(sys.argv[2]) as f:
        thresholds = json.load(f)

    gauges = metrics.get("gauges", {})

    def gauge(name):
        if name not in gauges:
            print(f"FAIL: metrics.json has no gauge {name!r} "
                  "(bench_storage did not finish?)")
            return None
        return gauges[name]

    opt_amp = gauge("storage.bench.optimized.read_amplification_milli")
    base_amp = gauge("storage.bench.baseline.read_amplification_milli")
    ratio = gauge("storage.bench.improvement_ratio_milli")
    p99 = gauge("storage.bench.optimized.get_p99_ns")
    if None in (opt_amp, base_amp, ratio, p99):
        return 1

    print(f"baseline  read_amp {base_amp / 1000:.3f}")
    print(f"optimized read_amp {opt_amp / 1000:.3f}  p99 {p99} ns")
    print(f"improvement ratio  {ratio / 1000:.2f}x")

    failures = []
    bound = thresholds["max_optimized_read_amplification_milli"]
    if opt_amp > bound:
        failures.append(
            f"optimized read amplification {opt_amp / 1000:.3f} exceeds "
            f"threshold {bound / 1000:.3f}")
    bound = thresholds["min_improvement_ratio_milli"]
    if ratio < bound:
        failures.append(
            f"improvement ratio {ratio / 1000:.2f}x below required "
            f"{bound / 1000:.2f}x")
    bound = thresholds["max_optimized_get_p99_ns"]
    if p99 > bound:
        failures.append(f"optimized get p99 {p99} ns exceeds {bound} ns")

    for failure in failures:
        print(f"FAIL: {failure}")
    if not failures:
        print("OK: storage read-path within thresholds")
    return 1 if failures else 0


if __name__ == "__main__":
    sys.exit(main())
