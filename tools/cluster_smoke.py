#!/usr/bin/env python3
"""End-to-end smoke test for a real multi-process CONFIDE cluster.

Boots N `confided` node processes (shared consortium seed, framed TCP
transport) plus one `confide_gateway` HTTP front end, drives a mixed
confidential/plaintext load through `bench_load`, then asserts the
deployment-shaped invariants that the in-process test suites cannot:

  1. every process comes up and prints its readiness line;
  2. the load driver sustains at least one RPS step against the gateway
     (which itself verifies sealed receipts open with the client key and
     that all nodes report identical tip hashes);
  3. a direct /v1/status poll after the run confirms convergence again,
     from outside the load driver;
  4. the bench metrics snapshot (metrics.json) is well-formed and
     carries the bench.load.* series CI archives per commit.

With --kill-leader the smoke additionally rehearses leader failover
(docs/OPERATIONS.md §Failover): after the first load phase it SIGKILLs
node 0 (the view-0 leader), waits for the survivors to elect a
successor via the heartbeat detector (the gateway's /v1/status reports
each node's view and leader), then runs a second load phase — with a
fresh contract prefix, since the first phase's contracts are already
deployed — that must sustain its RPS gate against the re-formed
cluster. The final convergence check then requires exactly the
survivors to agree (the killed node must report reachable=false).

Everything binds to 127.0.0.1 on ephemeral ports picked up-front, so
parallel CI jobs on one runner do not collide. All child processes are
torn down on exit — including on failure — so a wedged node cannot hang
the CI job past its timeout.

Usage:
  cluster_smoke.py [--build-dir build] [--nodes 3] [--seed 21]
                   [--rps 25,50] [--duration-s 2]
                   [--out metrics.json] [--kill-leader]
"""

import argparse
import json
import os
import re
import select
import socket
import subprocess
import sys
import time
import urllib.request

NODE_READY_RE = re.compile(r"confided: node (\d+) ready on port (\d+)")
GATEWAY_READY_RE = re.compile(r"confide_gateway: ready on port (\d+)")


def pick_ports(count):
    """Reserves `count` distinct ephemeral ports (bind :0, then close).

    There is a small race between closing and the child re-binding, but
    a fresh CI container has nothing else grabbing ports.
    """
    socks = [socket.socket() for _ in range(count)]
    for s in socks:
        s.bind(("127.0.0.1", 0))
    ports = [s.getsockname()[1] for s in socks]
    for s in socks:
        s.close()
    return ports


def await_line(proc, pattern, what, timeout_s=30):
    """Reads `proc` stdout until `pattern` matches; returns the match."""
    deadline = time.monotonic() + timeout_s
    while time.monotonic() < deadline:
        if proc.poll() is not None:
            raise RuntimeError(f"{what} exited early (rc={proc.returncode})")
        # select keeps the timeout real even if the child prints nothing.
        ready, _, _ = select.select([proc.stdout], [], [], 0.2)
        if not ready:
            continue
        line = proc.stdout.readline()
        if not line:
            continue
        sys.stdout.write(line)
        match = pattern.search(line)
        if match:
            return match
    raise RuntimeError(f"timed out waiting for readiness line from {what}")


def http_json(url, timeout_s=10):
    with urllib.request.urlopen(url, timeout=timeout_s) as resp:
        return json.loads(resp.read())


def await_failover(gateway_url, n_nodes, dead_node, timeout_s=90):
    """Polls /v1/status until the survivors agree on a view >= 1 whose
    leader is not `dead_node`; returns that view."""
    deadline = time.monotonic() + timeout_s
    while time.monotonic() < deadline:
        try:
            nodes = http_json(f"{gateway_url}/v1/status")["nodes"]
        except OSError:
            time.sleep(0.5)
            continue
        live = [n for n in nodes if n.get("reachable")]
        views = {n.get("view") for n in live}
        leaders = {n.get("leader") for n in live}
        if len(live) == n_nodes - 1 and len(views) == 1 and len(leaders) == 1:
            view, leader = views.pop(), leaders.pop()
            if view is not None and view >= 1 and leader != dead_node:
                return view
        time.sleep(0.5)
    raise RuntimeError(
        f"survivors never elected a leader other than node {dead_node}"
    )


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--build-dir", default="build")
    parser.add_argument("--nodes", type=int, default=3)
    parser.add_argument("--seed", type=int, default=21)
    parser.add_argument("--rps", default="25,50")
    parser.add_argument("--duration-s", default="2")
    parser.add_argument("--confidential-pct", default="50")
    parser.add_argument("--out", default="metrics.json")
    parser.add_argument(
        "--kill-leader",
        action="store_true",
        help="SIGKILL node 0 after the first load phase, wait for the "
        "survivors to elect a successor, then run a second load phase",
    )
    args = parser.parse_args()
    if args.kill_leader and args.nodes < 4:
        # n=4 is the smallest cluster where the election needs a real
        # multi-party quorum (2f+1 = 3); at n<=3 the PBFT-lite quorum
        # degenerates to 1 and the rehearsal would prove nothing.
        print("cluster_smoke: --kill-leader needs --nodes >= 4", file=sys.stderr)
        return 2

    confided = os.path.join(args.build_dir, "src", "net", "confided")
    gateway_bin = os.path.join(args.build_dir, "src", "net", "confide_gateway")
    bench_load = os.path.join(args.build_dir, "bench", "bench_load")
    for binary in (confided, gateway_bin, bench_load):
        if not os.path.exists(binary):
            print(f"cluster_smoke: missing binary {binary}", file=sys.stderr)
            return 2

    node_ports = pick_ports(args.nodes)
    peers = ",".join(f"127.0.0.1:{p}" for p in node_ports)
    procs = []
    try:
        for node_id, port in enumerate(node_ports):
            proc = subprocess.Popen(
                [
                    confided,
                    f"--node-id={node_id}",
                    f"--peers={peers}",
                    "--listen-host=127.0.0.1",
                    f"--seed={args.seed}",
                    "--block-max-bytes=65536",
                    "--tick-ms=20",
                ],
                stdout=subprocess.PIPE,
                stderr=subprocess.STDOUT,
                text=True,
            )
            procs.append((f"confided[{node_id}]", proc))
            match = await_line(proc, NODE_READY_RE, f"confided node {node_id}")
            assert int(match.group(2)) == port

        gw_proc = subprocess.Popen(
            [gateway_bin, f"--nodes={peers}", "--listen=127.0.0.1:0"],
            stdout=subprocess.PIPE,
            stderr=subprocess.STDOUT,
            text=True,
        )
        procs.append(("confide_gateway", gw_proc))
        gw_port = int(
            await_line(gw_proc, GATEWAY_READY_RE, "confide_gateway").group(1)
        )
        gateway_url = f"http://127.0.0.1:{gw_port}"

        health = urllib.request.urlopen(f"{gateway_url}/healthz", timeout=10)
        if health.read() != b"ok":
            print("cluster_smoke: gateway /healthz not ok", file=sys.stderr)
            return 1

        # The load driver submits the mixed workload, sweeps the RPS
        # steps, verifies sampled sealed receipts open, and exits
        # non-zero on divergence or an unsustained sweep.
        env = dict(os.environ, CONFIDE_METRICS_OUT=args.out)
        rc = subprocess.call(
            [
                bench_load,
                f"--gateway={gateway_url}",
                f"--seed={args.seed}",
                f"--rps={args.rps}",
                f"--duration-s={args.duration_s}",
                f"--confidential-pct={args.confidential_pct}",
            ],
            env=env,
        )
        if rc != 0:
            print(f"cluster_smoke: bench_load failed (rc={rc})", file=sys.stderr)
            return 1

        survivors = args.nodes
        if args.kill_leader:
            # Failover rehearsal: SIGKILL the view-0 leader mid-flight,
            # wait for the heartbeat detector to elect a successor, then
            # prove the re-formed cluster still takes load. The second
            # phase deploys under a fresh contract prefix — the first
            # phase's addresses are already taken.
            leader_name, leader_proc = procs[0]
            print(f"cluster_smoke: SIGKILL {leader_name} (view-0 leader)")
            leader_proc.kill()
            leader_proc.wait()
            view = await_failover(gateway_url, args.nodes, dead_node=0)
            print(f"cluster_smoke: survivors elected view {view}")
            rc = subprocess.call(
                [
                    bench_load,
                    f"--gateway={gateway_url}",
                    f"--seed={args.seed}",
                    f"--rps={args.rps}",
                    f"--duration-s={args.duration_s}",
                    f"--confidential-pct={args.confidential_pct}",
                    "--contracts=bench2",
                ],
                env=env,
            )
            if rc != 0:
                print(f"cluster_smoke: post-failover bench_load failed "
                      f"(rc={rc})", file=sys.stderr)
                return 1
            survivors = args.nodes - 1

        # Independent convergence check, outside the load driver. With
        # --kill-leader the dead node must show up unreachable and every
        # survivor must agree on height and tip.
        status = http_json(f"{gateway_url}/v1/status")
        nodes = status["nodes"]
        if len(nodes) != args.nodes:
            print(f"cluster_smoke: expected {args.nodes} nodes in /v1/status, "
                  f"got {len(nodes)}", file=sys.stderr)
            return 1
        live = [n for n in nodes if n["reachable"]]
        if len(live) != survivors:
            print(f"cluster_smoke: expected {survivors} reachable nodes: "
                  f"{nodes}", file=sys.stderr)
            return 1
        tips = {(n["height"], n["tip_hash"]) for n in live}
        if len(tips) != 1:
            print(f"cluster_smoke: cluster diverged: {nodes}", file=sys.stderr)
            return 1
        height, tip = next(iter(tips))
        if height == 0:
            print("cluster_smoke: cluster never committed a block",
                  file=sys.stderr)
            return 1

        with open(args.out) as metrics_file:
            metrics = json.load(metrics_file)
        gauges = metrics.get("gauges", {})
        if gauges.get("bench.load.max_sustained_rps", 0) <= 0:
            print("cluster_smoke: metrics.json missing sustained-rps gauge",
                  file=sys.stderr)
            return 1

        print(f"cluster_smoke: OK — {survivors} nodes converged at height "
              f"{height} tip {tip[:16]}, metrics in {args.out}")
        return 0
    finally:
        for name, proc in procs:
            if proc.poll() is None:
                proc.terminate()
        deadline = time.monotonic() + 10
        for name, proc in procs:
            try:
                proc.wait(timeout=max(0.1, deadline - time.monotonic()))
            except subprocess.TimeoutExpired:
                print(f"cluster_smoke: killing unresponsive {name}",
                      file=sys.stderr)
                proc.kill()


if __name__ == "__main__":
    sys.exit(main())
