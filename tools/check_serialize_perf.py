#!/usr/bin/env python3
"""CI gate for the serialization decode benchmark.

Reads the metrics.json written by bench_serialize and the checked-in
thresholds (bench/serialize_perf_thresholds.json), and fails when the
zero-copy view decode's speedup over the owning decode drops below the
required ratio for any record shape, or the view decode's absolute
throughput collapses.

Usage: check_serialize_perf.py <metrics.json> <thresholds.json>
"""

import json
import sys


def main() -> int:
    if len(sys.argv) != 3:
        print(__doc__, file=sys.stderr)
        return 2
    with open(sys.argv[1]) as f:
        metrics = json.load(f)
    with open(sys.argv[2]) as f:
        thresholds = json.load(f)

    gauges = metrics.get("gauges", {})

    def gauge(name):
        if name not in gauges:
            print(f"FAIL: metrics.json has no gauge {name!r} "
                  "(bench_serialize did not finish?)")
            return None
        return gauges[name]

    failures = []
    missing = False
    for record in ("tx", "receipt", "abs"):
        speedup = gauge(f"serialize.bench.{record}.decode_speedup_milli")
        owning = gauge(f"serialize.bench.{record}.owning_decode_ops_per_sec")
        view = gauge(f"serialize.bench.{record}.view_decode_ops_per_sec")
        if None in (speedup, owning, view):
            missing = True
            continue
        print(f"{record:8s} owning {owning:>12,} ops/s  view {view:>12,} "
              f"ops/s  speedup {speedup / 1000:.2f}x")
        bound = thresholds[f"min_{record}_decode_speedup_milli"]
        if speedup < bound:
            failures.append(
                f"{record} view/owning decode speedup {speedup / 1000:.2f}x "
                f"below required {bound / 1000:.2f}x")
        bound = thresholds["min_view_decode_ops_per_sec"]
        if view < bound:
            failures.append(
                f"{record} view decode {view:,} ops/s below required "
                f"{bound:,} ops/s")
    if missing:
        return 1

    for failure in failures:
        print(f"FAIL: {failure}")
    if not failures:
        print("OK: serialization decode paths within thresholds")
    return 1 if failures else 0


if __name__ == "__main__":
    sys.exit(main())
