#!/usr/bin/env python3
"""Checks chaos-run fault reports for injection coverage and recovery.

The fault-injection framework names every failure it can inject with a
`fault.*` site string declared in src/ and reports two counters per site:
`<site>.injected` (the fault actually fired) and `<site>.recovered` (the
code under test survived it and said so). CONFIDE_FAULT_REPORT makes the
chaos suite dump those counters as JSON on exit; CI archives one report
per seed.

This checker fails the build when the chaos matrix has quietly lost
coverage:

  1. Every site declared in the sources must have fired (injected > 0)
     in the union of the given reports. A site nobody can trigger any
     more is dead chaos code — the failure path it guards is untested.
  2. Every site whose contract includes recovery (RECOVERABLE_SITES)
     must also report recovered > 0 in the union. Fired-but-never-
     recovered means the suite only proves the fault happens, not that
     the system survives it.
  3. Per report: at least one site fired, and the deterministic
     state-sync and compaction scenarios must have both fired and
     recovered (they are armed unconditionally for every seed).

Usage:
  check_fault_report.py [--src DIR] report.json [report.json ...]
"""

import argparse
import json
import re
import sys
from pathlib import Path

# Sites whose contract is fire-AND-recover: the scenario that arms them
# asserts the system comes back (retry, failover, re-provision, reseal).
# Sites not listed here model failures whose "recovery" is refusing to
# proceed (e.g. a detected-stale bootstrap) or is observed elsewhere.
RECOVERABLE_SITES = {
    "fault.chain.leader_crash",
    "fault.chain.pipeline.stall",
    "fault.chain.sync.chunk_corrupt",
    "fault.chain.sync.chunk_drop",
    "fault.chain.sync.equivocating_certificate",
    "fault.chain.sync.forged_certificate",
    "fault.chain.sync.provider_dead",
    "fault.chain.sync.stale_certificate",
    "fault.confide.provision",
    "fault.net.connect.fail",
    "fault.net.recv.corrupt",
    "fault.net.send.drop",
    "fault.net.send.truncate",
    "fault.net.view.election_crash",
    "fault.net.view.stale_newview",
    "fault.net.view.viewchange_drop",
    "fault.storage.compaction.install",
    "fault.storage.compaction.merge",
    "fault.storage.compaction.start",
    "fault.storage.compaction.write",
    "fault.storage.wal_sync",
    "fault.storage.wal_torn",
    "fault.tee.counter.persist",
    "fault.tee.counter.rollback",
    "fault.tee.enclave_crash",
}

# Deterministically-armed scenario groups checked per report (every seed
# runs them): prefix -> require recovery too.
PER_REPORT_GROUPS = {
    "fault.chain.sync.": True,
    "fault.net.": True,
    "fault.storage.compaction.": True,
}

SITE_RE = re.compile(r'"(fault\.[a-z0-9_.]+)"')


def declared_sites(src_dirs):
    sites = set()
    for src in src_dirs:
        for path in Path(src).rglob("*"):
            if path.suffix not in (".cc", ".h"):
                continue
            sites.update(SITE_RE.findall(path.read_text(errors="replace")))
    return sites


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--src",
        action="append",
        default=None,
        help="source dir to scan for declared fault.* sites "
        "(default: src/ next to this script's parent)",
    )
    parser.add_argument("reports", nargs="+", help="fault-report JSON files")
    args = parser.parse_args()

    src_dirs = args.src or [str(Path(__file__).resolve().parent.parent / "src")]
    declared = declared_sites(src_dirs)
    if not declared:
        print(f"error: no fault.* sites declared under {src_dirs}", file=sys.stderr)
        return 2

    union = {}
    errors = []
    for report_path in args.reports:
        with open(report_path) as report_file:
            counts = json.load(report_file)
        for name, value in counts.items():
            union[name] = union.get(name, 0) + value

        fired = sorted(
            name[: -len(".injected")]
            for name, value in counts.items()
            if name.endswith(".injected") and value > 0
        )
        if not fired:
            errors.append(f"{report_path}: no fault sites fired at all")
            continue
        for prefix, needs_recovery in PER_REPORT_GROUPS.items():
            group = [site for site in fired if site.startswith(prefix)]
            if not group:
                errors.append(f"{report_path}: no {prefix}* site fired")
            elif needs_recovery and not any(
                counts.get(site + ".recovered", 0) > 0 for site in group
            ):
                errors.append(
                    f"{report_path}: {prefix}* fired but none recovered"
                )
        print(f"{report_path}: {len(fired)} sites fired")

    for site in sorted(declared):
        if union.get(site + ".injected", 0) == 0:
            errors.append(
                f"declared site {site} never fired in any report "
                "(dead chaos coverage)"
            )
        elif site in RECOVERABLE_SITES and union.get(site + ".recovered", 0) == 0:
            errors.append(
                f"recoverable site {site} fired but never reported recovery"
            )
    unknown = sorted(
        site for site in RECOVERABLE_SITES if site not in declared
    )
    if unknown:
        errors.append(
            "RECOVERABLE_SITES entries not declared in src/ (stale list?): "
            + ", ".join(unknown)
        )

    if errors:
        print("\nFAULT COVERAGE CHECK FAILED:", file=sys.stderr)
        for error in errors:
            print(f"  - {error}", file=sys.stderr)
        return 1
    print(
        f"OK: all {len(declared)} declared sites fired; "
        f"{len(RECOVERABLE_SITES)} recoverable sites recovered"
    )
    return 0


if __name__ == "__main__":
    sys.exit(main())
