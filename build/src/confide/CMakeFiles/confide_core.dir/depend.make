# Empty dependencies file for confide_core.
# This may be replaced when dependencies are built.
