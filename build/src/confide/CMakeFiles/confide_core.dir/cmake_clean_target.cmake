file(REMOVE_RECURSE
  "libconfide_core.a"
)
