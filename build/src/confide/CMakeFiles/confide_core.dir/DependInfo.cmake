
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/confide/client.cc" "src/confide/CMakeFiles/confide_core.dir/client.cc.o" "gcc" "src/confide/CMakeFiles/confide_core.dir/client.cc.o.d"
  "/root/repo/src/confide/cs_enclave.cc" "src/confide/CMakeFiles/confide_core.dir/cs_enclave.cc.o" "gcc" "src/confide/CMakeFiles/confide_core.dir/cs_enclave.cc.o.d"
  "/root/repo/src/confide/engines.cc" "src/confide/CMakeFiles/confide_core.dir/engines.cc.o" "gcc" "src/confide/CMakeFiles/confide_core.dir/engines.cc.o.d"
  "/root/repo/src/confide/key_manager.cc" "src/confide/CMakeFiles/confide_core.dir/key_manager.cc.o" "gcc" "src/confide/CMakeFiles/confide_core.dir/key_manager.cc.o.d"
  "/root/repo/src/confide/protocol.cc" "src/confide/CMakeFiles/confide_core.dir/protocol.cc.o" "gcc" "src/confide/CMakeFiles/confide_core.dir/protocol.cc.o.d"
  "/root/repo/src/confide/system.cc" "src/confide/CMakeFiles/confide_core.dir/system.cc.o" "gcc" "src/confide/CMakeFiles/confide_core.dir/system.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/confide_common.dir/DependInfo.cmake"
  "/root/repo/build/src/crypto/CMakeFiles/confide_crypto.dir/DependInfo.cmake"
  "/root/repo/build/src/serialize/CMakeFiles/confide_serialize.dir/DependInfo.cmake"
  "/root/repo/build/src/tee/CMakeFiles/confide_tee.dir/DependInfo.cmake"
  "/root/repo/build/src/vm/CMakeFiles/confide_vm.dir/DependInfo.cmake"
  "/root/repo/build/src/chain/CMakeFiles/confide_chain.dir/DependInfo.cmake"
  "/root/repo/build/src/ccle/CMakeFiles/confide_ccle.dir/DependInfo.cmake"
  "/root/repo/build/src/storage/CMakeFiles/confide_storage.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
