file(REMOVE_RECURSE
  "CMakeFiles/confide_core.dir/client.cc.o"
  "CMakeFiles/confide_core.dir/client.cc.o.d"
  "CMakeFiles/confide_core.dir/cs_enclave.cc.o"
  "CMakeFiles/confide_core.dir/cs_enclave.cc.o.d"
  "CMakeFiles/confide_core.dir/engines.cc.o"
  "CMakeFiles/confide_core.dir/engines.cc.o.d"
  "CMakeFiles/confide_core.dir/key_manager.cc.o"
  "CMakeFiles/confide_core.dir/key_manager.cc.o.d"
  "CMakeFiles/confide_core.dir/protocol.cc.o"
  "CMakeFiles/confide_core.dir/protocol.cc.o.d"
  "CMakeFiles/confide_core.dir/system.cc.o"
  "CMakeFiles/confide_core.dir/system.cc.o.d"
  "libconfide_core.a"
  "libconfide_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/confide_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
