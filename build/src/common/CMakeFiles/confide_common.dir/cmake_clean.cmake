file(REMOVE_RECURSE
  "CMakeFiles/confide_common.dir/bytes.cc.o"
  "CMakeFiles/confide_common.dir/bytes.cc.o.d"
  "CMakeFiles/confide_common.dir/crc32.cc.o"
  "CMakeFiles/confide_common.dir/crc32.cc.o.d"
  "CMakeFiles/confide_common.dir/logging.cc.o"
  "CMakeFiles/confide_common.dir/logging.cc.o.d"
  "CMakeFiles/confide_common.dir/status.cc.o"
  "CMakeFiles/confide_common.dir/status.cc.o.d"
  "libconfide_common.a"
  "libconfide_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/confide_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
