# Empty compiler generated dependencies file for confide_common.
# This may be replaced when dependencies are built.
