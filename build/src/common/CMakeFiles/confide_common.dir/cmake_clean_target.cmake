file(REMOVE_RECURSE
  "libconfide_common.a"
)
