file(REMOVE_RECURSE
  "libconfide_workloads.a"
)
