file(REMOVE_RECURSE
  "CMakeFiles/confide_workloads.dir/workloads.cc.o"
  "CMakeFiles/confide_workloads.dir/workloads.cc.o.d"
  "libconfide_workloads.a"
  "libconfide_workloads.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/confide_workloads.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
