# Empty dependencies file for confide_workloads.
# This may be replaced when dependencies are built.
