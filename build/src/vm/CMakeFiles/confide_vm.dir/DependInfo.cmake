
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/vm/cvm/builder.cc" "src/vm/CMakeFiles/confide_vm.dir/cvm/builder.cc.o" "gcc" "src/vm/CMakeFiles/confide_vm.dir/cvm/builder.cc.o.d"
  "/root/repo/src/vm/cvm/bytecode.cc" "src/vm/CMakeFiles/confide_vm.dir/cvm/bytecode.cc.o" "gcc" "src/vm/CMakeFiles/confide_vm.dir/cvm/bytecode.cc.o.d"
  "/root/repo/src/vm/cvm/interpreter.cc" "src/vm/CMakeFiles/confide_vm.dir/cvm/interpreter.cc.o" "gcc" "src/vm/CMakeFiles/confide_vm.dir/cvm/interpreter.cc.o.d"
  "/root/repo/src/vm/evm/evm.cc" "src/vm/CMakeFiles/confide_vm.dir/evm/evm.cc.o" "gcc" "src/vm/CMakeFiles/confide_vm.dir/evm/evm.cc.o.d"
  "/root/repo/src/vm/evm/uint256.cc" "src/vm/CMakeFiles/confide_vm.dir/evm/uint256.cc.o" "gcc" "src/vm/CMakeFiles/confide_vm.dir/evm/uint256.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/confide_common.dir/DependInfo.cmake"
  "/root/repo/build/src/crypto/CMakeFiles/confide_crypto.dir/DependInfo.cmake"
  "/root/repo/build/src/serialize/CMakeFiles/confide_serialize.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
