# Empty compiler generated dependencies file for confide_vm.
# This may be replaced when dependencies are built.
