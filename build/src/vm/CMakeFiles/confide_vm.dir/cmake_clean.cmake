file(REMOVE_RECURSE
  "CMakeFiles/confide_vm.dir/cvm/builder.cc.o"
  "CMakeFiles/confide_vm.dir/cvm/builder.cc.o.d"
  "CMakeFiles/confide_vm.dir/cvm/bytecode.cc.o"
  "CMakeFiles/confide_vm.dir/cvm/bytecode.cc.o.d"
  "CMakeFiles/confide_vm.dir/cvm/interpreter.cc.o"
  "CMakeFiles/confide_vm.dir/cvm/interpreter.cc.o.d"
  "CMakeFiles/confide_vm.dir/evm/evm.cc.o"
  "CMakeFiles/confide_vm.dir/evm/evm.cc.o.d"
  "CMakeFiles/confide_vm.dir/evm/uint256.cc.o"
  "CMakeFiles/confide_vm.dir/evm/uint256.cc.o.d"
  "libconfide_vm.a"
  "libconfide_vm.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/confide_vm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
