file(REMOVE_RECURSE
  "libconfide_vm.a"
)
