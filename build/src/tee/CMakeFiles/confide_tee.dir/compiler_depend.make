# Empty compiler generated dependencies file for confide_tee.
# This may be replaced when dependencies are built.
