file(REMOVE_RECURSE
  "CMakeFiles/confide_tee.dir/attestation.cc.o"
  "CMakeFiles/confide_tee.dir/attestation.cc.o.d"
  "CMakeFiles/confide_tee.dir/enclave.cc.o"
  "CMakeFiles/confide_tee.dir/enclave.cc.o.d"
  "CMakeFiles/confide_tee.dir/epc.cc.o"
  "CMakeFiles/confide_tee.dir/epc.cc.o.d"
  "libconfide_tee.a"
  "libconfide_tee.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/confide_tee.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
