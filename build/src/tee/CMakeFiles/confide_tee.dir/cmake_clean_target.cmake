file(REMOVE_RECURSE
  "libconfide_tee.a"
)
