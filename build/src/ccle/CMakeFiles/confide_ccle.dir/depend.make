# Empty dependencies file for confide_ccle.
# This may be replaced when dependencies are built.
