
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/ccle/codec.cc" "src/ccle/CMakeFiles/confide_ccle.dir/codec.cc.o" "gcc" "src/ccle/CMakeFiles/confide_ccle.dir/codec.cc.o.d"
  "/root/repo/src/ccle/schema.cc" "src/ccle/CMakeFiles/confide_ccle.dir/schema.cc.o" "gcc" "src/ccle/CMakeFiles/confide_ccle.dir/schema.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/confide_common.dir/DependInfo.cmake"
  "/root/repo/build/src/serialize/CMakeFiles/confide_serialize.dir/DependInfo.cmake"
  "/root/repo/build/src/crypto/CMakeFiles/confide_crypto.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
