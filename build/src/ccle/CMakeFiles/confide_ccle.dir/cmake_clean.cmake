file(REMOVE_RECURSE
  "CMakeFiles/confide_ccle.dir/codec.cc.o"
  "CMakeFiles/confide_ccle.dir/codec.cc.o.d"
  "CMakeFiles/confide_ccle.dir/schema.cc.o"
  "CMakeFiles/confide_ccle.dir/schema.cc.o.d"
  "libconfide_ccle.a"
  "libconfide_ccle.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/confide_ccle.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
