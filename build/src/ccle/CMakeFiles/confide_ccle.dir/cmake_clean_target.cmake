file(REMOVE_RECURSE
  "libconfide_ccle.a"
)
