
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/lang/builtins.cc" "src/lang/CMakeFiles/confide_lang.dir/builtins.cc.o" "gcc" "src/lang/CMakeFiles/confide_lang.dir/builtins.cc.o.d"
  "/root/repo/src/lang/codegen_cvm.cc" "src/lang/CMakeFiles/confide_lang.dir/codegen_cvm.cc.o" "gcc" "src/lang/CMakeFiles/confide_lang.dir/codegen_cvm.cc.o.d"
  "/root/repo/src/lang/codegen_evm.cc" "src/lang/CMakeFiles/confide_lang.dir/codegen_evm.cc.o" "gcc" "src/lang/CMakeFiles/confide_lang.dir/codegen_evm.cc.o.d"
  "/root/repo/src/lang/compiler.cc" "src/lang/CMakeFiles/confide_lang.dir/compiler.cc.o" "gcc" "src/lang/CMakeFiles/confide_lang.dir/compiler.cc.o.d"
  "/root/repo/src/lang/lexer.cc" "src/lang/CMakeFiles/confide_lang.dir/lexer.cc.o" "gcc" "src/lang/CMakeFiles/confide_lang.dir/lexer.cc.o.d"
  "/root/repo/src/lang/parser.cc" "src/lang/CMakeFiles/confide_lang.dir/parser.cc.o" "gcc" "src/lang/CMakeFiles/confide_lang.dir/parser.cc.o.d"
  "/root/repo/src/lang/stdlib.cc" "src/lang/CMakeFiles/confide_lang.dir/stdlib.cc.o" "gcc" "src/lang/CMakeFiles/confide_lang.dir/stdlib.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/confide_common.dir/DependInfo.cmake"
  "/root/repo/build/src/crypto/CMakeFiles/confide_crypto.dir/DependInfo.cmake"
  "/root/repo/build/src/vm/CMakeFiles/confide_vm.dir/DependInfo.cmake"
  "/root/repo/build/src/serialize/CMakeFiles/confide_serialize.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
