file(REMOVE_RECURSE
  "libconfide_lang.a"
)
