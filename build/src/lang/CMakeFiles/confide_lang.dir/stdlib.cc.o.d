src/lang/CMakeFiles/confide_lang.dir/stdlib.cc.o: \
 /root/repo/src/lang/stdlib.cc /usr/include/stdc-predef.h \
 /root/repo/src/lang/stdlib.h
