# Empty compiler generated dependencies file for confide_lang.
# This may be replaced when dependencies are built.
