file(REMOVE_RECURSE
  "CMakeFiles/confide_lang.dir/builtins.cc.o"
  "CMakeFiles/confide_lang.dir/builtins.cc.o.d"
  "CMakeFiles/confide_lang.dir/codegen_cvm.cc.o"
  "CMakeFiles/confide_lang.dir/codegen_cvm.cc.o.d"
  "CMakeFiles/confide_lang.dir/codegen_evm.cc.o"
  "CMakeFiles/confide_lang.dir/codegen_evm.cc.o.d"
  "CMakeFiles/confide_lang.dir/compiler.cc.o"
  "CMakeFiles/confide_lang.dir/compiler.cc.o.d"
  "CMakeFiles/confide_lang.dir/lexer.cc.o"
  "CMakeFiles/confide_lang.dir/lexer.cc.o.d"
  "CMakeFiles/confide_lang.dir/parser.cc.o"
  "CMakeFiles/confide_lang.dir/parser.cc.o.d"
  "CMakeFiles/confide_lang.dir/stdlib.cc.o"
  "CMakeFiles/confide_lang.dir/stdlib.cc.o.d"
  "libconfide_lang.a"
  "libconfide_lang.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/confide_lang.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
