file(REMOVE_RECURSE
  "CMakeFiles/confide_storage.dir/block_store.cc.o"
  "CMakeFiles/confide_storage.dir/block_store.cc.o.d"
  "CMakeFiles/confide_storage.dir/lsm_store.cc.o"
  "CMakeFiles/confide_storage.dir/lsm_store.cc.o.d"
  "CMakeFiles/confide_storage.dir/memtable.cc.o"
  "CMakeFiles/confide_storage.dir/memtable.cc.o.d"
  "CMakeFiles/confide_storage.dir/wal.cc.o"
  "CMakeFiles/confide_storage.dir/wal.cc.o.d"
  "libconfide_storage.a"
  "libconfide_storage.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/confide_storage.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
