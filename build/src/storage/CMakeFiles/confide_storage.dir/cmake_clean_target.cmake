file(REMOVE_RECURSE
  "libconfide_storage.a"
)
