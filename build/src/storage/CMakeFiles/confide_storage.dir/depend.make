# Empty dependencies file for confide_storage.
# This may be replaced when dependencies are built.
