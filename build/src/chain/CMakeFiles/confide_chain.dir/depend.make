# Empty dependencies file for confide_chain.
# This may be replaced when dependencies are built.
