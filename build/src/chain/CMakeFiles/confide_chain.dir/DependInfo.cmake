
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/chain/engine.cc" "src/chain/CMakeFiles/confide_chain.dir/engine.cc.o" "gcc" "src/chain/CMakeFiles/confide_chain.dir/engine.cc.o.d"
  "/root/repo/src/chain/executor.cc" "src/chain/CMakeFiles/confide_chain.dir/executor.cc.o" "gcc" "src/chain/CMakeFiles/confide_chain.dir/executor.cc.o.d"
  "/root/repo/src/chain/network.cc" "src/chain/CMakeFiles/confide_chain.dir/network.cc.o" "gcc" "src/chain/CMakeFiles/confide_chain.dir/network.cc.o.d"
  "/root/repo/src/chain/node.cc" "src/chain/CMakeFiles/confide_chain.dir/node.cc.o" "gcc" "src/chain/CMakeFiles/confide_chain.dir/node.cc.o.d"
  "/root/repo/src/chain/pbft.cc" "src/chain/CMakeFiles/confide_chain.dir/pbft.cc.o" "gcc" "src/chain/CMakeFiles/confide_chain.dir/pbft.cc.o.d"
  "/root/repo/src/chain/state.cc" "src/chain/CMakeFiles/confide_chain.dir/state.cc.o" "gcc" "src/chain/CMakeFiles/confide_chain.dir/state.cc.o.d"
  "/root/repo/src/chain/types.cc" "src/chain/CMakeFiles/confide_chain.dir/types.cc.o" "gcc" "src/chain/CMakeFiles/confide_chain.dir/types.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/confide_common.dir/DependInfo.cmake"
  "/root/repo/build/src/crypto/CMakeFiles/confide_crypto.dir/DependInfo.cmake"
  "/root/repo/build/src/serialize/CMakeFiles/confide_serialize.dir/DependInfo.cmake"
  "/root/repo/build/src/storage/CMakeFiles/confide_storage.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
