file(REMOVE_RECURSE
  "libconfide_chain.a"
)
