file(REMOVE_RECURSE
  "CMakeFiles/confide_chain.dir/engine.cc.o"
  "CMakeFiles/confide_chain.dir/engine.cc.o.d"
  "CMakeFiles/confide_chain.dir/executor.cc.o"
  "CMakeFiles/confide_chain.dir/executor.cc.o.d"
  "CMakeFiles/confide_chain.dir/network.cc.o"
  "CMakeFiles/confide_chain.dir/network.cc.o.d"
  "CMakeFiles/confide_chain.dir/node.cc.o"
  "CMakeFiles/confide_chain.dir/node.cc.o.d"
  "CMakeFiles/confide_chain.dir/pbft.cc.o"
  "CMakeFiles/confide_chain.dir/pbft.cc.o.d"
  "CMakeFiles/confide_chain.dir/state.cc.o"
  "CMakeFiles/confide_chain.dir/state.cc.o.d"
  "CMakeFiles/confide_chain.dir/types.cc.o"
  "CMakeFiles/confide_chain.dir/types.cc.o.d"
  "libconfide_chain.a"
  "libconfide_chain.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/confide_chain.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
