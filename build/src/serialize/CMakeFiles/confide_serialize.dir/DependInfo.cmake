
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/serialize/flatlite.cc" "src/serialize/CMakeFiles/confide_serialize.dir/flatlite.cc.o" "gcc" "src/serialize/CMakeFiles/confide_serialize.dir/flatlite.cc.o.d"
  "/root/repo/src/serialize/json.cc" "src/serialize/CMakeFiles/confide_serialize.dir/json.cc.o" "gcc" "src/serialize/CMakeFiles/confide_serialize.dir/json.cc.o.d"
  "/root/repo/src/serialize/rlp.cc" "src/serialize/CMakeFiles/confide_serialize.dir/rlp.cc.o" "gcc" "src/serialize/CMakeFiles/confide_serialize.dir/rlp.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/confide_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
