file(REMOVE_RECURSE
  "CMakeFiles/confide_serialize.dir/flatlite.cc.o"
  "CMakeFiles/confide_serialize.dir/flatlite.cc.o.d"
  "CMakeFiles/confide_serialize.dir/json.cc.o"
  "CMakeFiles/confide_serialize.dir/json.cc.o.d"
  "CMakeFiles/confide_serialize.dir/rlp.cc.o"
  "CMakeFiles/confide_serialize.dir/rlp.cc.o.d"
  "libconfide_serialize.a"
  "libconfide_serialize.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/confide_serialize.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
