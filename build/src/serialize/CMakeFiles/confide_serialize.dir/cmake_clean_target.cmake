file(REMOVE_RECURSE
  "libconfide_serialize.a"
)
