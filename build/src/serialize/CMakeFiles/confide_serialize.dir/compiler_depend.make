# Empty compiler generated dependencies file for confide_serialize.
# This may be replaced when dependencies are built.
