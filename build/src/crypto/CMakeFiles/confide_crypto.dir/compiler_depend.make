# Empty compiler generated dependencies file for confide_crypto.
# This may be replaced when dependencies are built.
