file(REMOVE_RECURSE
  "CMakeFiles/confide_crypto.dir/aes.cc.o"
  "CMakeFiles/confide_crypto.dir/aes.cc.o.d"
  "CMakeFiles/confide_crypto.dir/drbg.cc.o"
  "CMakeFiles/confide_crypto.dir/drbg.cc.o.d"
  "CMakeFiles/confide_crypto.dir/gcm.cc.o"
  "CMakeFiles/confide_crypto.dir/gcm.cc.o.d"
  "CMakeFiles/confide_crypto.dir/hmac.cc.o"
  "CMakeFiles/confide_crypto.dir/hmac.cc.o.d"
  "CMakeFiles/confide_crypto.dir/keccak.cc.o"
  "CMakeFiles/confide_crypto.dir/keccak.cc.o.d"
  "CMakeFiles/confide_crypto.dir/merkle.cc.o"
  "CMakeFiles/confide_crypto.dir/merkle.cc.o.d"
  "CMakeFiles/confide_crypto.dir/secp256k1.cc.o"
  "CMakeFiles/confide_crypto.dir/secp256k1.cc.o.d"
  "CMakeFiles/confide_crypto.dir/sha256.cc.o"
  "CMakeFiles/confide_crypto.dir/sha256.cc.o.d"
  "libconfide_crypto.a"
  "libconfide_crypto.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/confide_crypto.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
