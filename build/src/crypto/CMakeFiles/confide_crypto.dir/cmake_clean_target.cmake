file(REMOVE_RECURSE
  "libconfide_crypto.a"
)
