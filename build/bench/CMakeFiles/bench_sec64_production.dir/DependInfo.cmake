
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/bench_sec64_production.cpp" "bench/CMakeFiles/bench_sec64_production.dir/bench_sec64_production.cpp.o" "gcc" "bench/CMakeFiles/bench_sec64_production.dir/bench_sec64_production.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/confide/CMakeFiles/confide_core.dir/DependInfo.cmake"
  "/root/repo/build/src/lang/CMakeFiles/confide_lang.dir/DependInfo.cmake"
  "/root/repo/build/src/workloads/CMakeFiles/confide_workloads.dir/DependInfo.cmake"
  "/root/repo/build/src/tee/CMakeFiles/confide_tee.dir/DependInfo.cmake"
  "/root/repo/build/src/ccle/CMakeFiles/confide_ccle.dir/DependInfo.cmake"
  "/root/repo/build/src/vm/CMakeFiles/confide_vm.dir/DependInfo.cmake"
  "/root/repo/build/src/chain/CMakeFiles/confide_chain.dir/DependInfo.cmake"
  "/root/repo/build/src/serialize/CMakeFiles/confide_serialize.dir/DependInfo.cmake"
  "/root/repo/build/src/storage/CMakeFiles/confide_storage.dir/DependInfo.cmake"
  "/root/repo/build/src/crypto/CMakeFiles/confide_crypto.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/confide_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
