# Empty dependencies file for bench_sec64_production.
# This may be replaced when dependencies are built.
