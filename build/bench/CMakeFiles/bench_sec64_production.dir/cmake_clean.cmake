file(REMOVE_RECURSE
  "CMakeFiles/bench_sec64_production.dir/bench_sec64_production.cpp.o"
  "CMakeFiles/bench_sec64_production.dir/bench_sec64_production.cpp.o.d"
  "bench_sec64_production"
  "bench_sec64_production.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_sec64_production.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
