file(REMOVE_RECURSE
  "CMakeFiles/bench_table1_scfar.dir/bench_table1_scfar.cpp.o"
  "CMakeFiles/bench_table1_scfar.dir/bench_table1_scfar.cpp.o.d"
  "bench_table1_scfar"
  "bench_table1_scfar.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table1_scfar.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
