# Empty dependencies file for bench_overhead_decomposition.
# This may be replaced when dependencies are built.
