file(REMOVE_RECURSE
  "CMakeFiles/bench_overhead_decomposition.dir/bench_overhead_decomposition.cpp.o"
  "CMakeFiles/bench_overhead_decomposition.dir/bench_overhead_decomposition.cpp.o.d"
  "bench_overhead_decomposition"
  "bench_overhead_decomposition.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_overhead_decomposition.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
