file(REMOVE_RECURSE
  "CMakeFiles/bench_fig12_abs_opts.dir/bench_fig12_abs_opts.cpp.o"
  "CMakeFiles/bench_fig12_abs_opts.dir/bench_fig12_abs_opts.cpp.o.d"
  "bench_fig12_abs_opts"
  "bench_fig12_abs_opts.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig12_abs_opts.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
