# Empty dependencies file for bench_fig12_abs_opts.
# This may be replaced when dependencies are built.
