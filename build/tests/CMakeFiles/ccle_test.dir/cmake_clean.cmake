file(REMOVE_RECURSE
  "CMakeFiles/ccle_test.dir/ccle_test.cc.o"
  "CMakeFiles/ccle_test.dir/ccle_test.cc.o.d"
  "ccle_test"
  "ccle_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ccle_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
