# Empty dependencies file for ccle_test.
# This may be replaced when dependencies are built.
