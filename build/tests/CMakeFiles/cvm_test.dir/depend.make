# Empty dependencies file for cvm_test.
# This may be replaced when dependencies are built.
