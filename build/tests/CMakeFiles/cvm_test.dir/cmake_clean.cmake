file(REMOVE_RECURSE
  "CMakeFiles/cvm_test.dir/cvm_test.cc.o"
  "CMakeFiles/cvm_test.dir/cvm_test.cc.o.d"
  "cvm_test"
  "cvm_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cvm_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
