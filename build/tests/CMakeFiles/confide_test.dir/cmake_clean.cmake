file(REMOVE_RECURSE
  "CMakeFiles/confide_test.dir/confide_test.cc.o"
  "CMakeFiles/confide_test.dir/confide_test.cc.o.d"
  "confide_test"
  "confide_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/confide_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
