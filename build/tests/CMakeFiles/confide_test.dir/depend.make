# Empty dependencies file for confide_test.
# This may be replaced when dependencies are built.
