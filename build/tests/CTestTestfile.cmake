# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test(common_test "/root/repo/build/tests/common_test")
set_tests_properties(common_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;9;add_test;/root/repo/tests/CMakeLists.txt;12;confide_add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(crypto_test "/root/repo/build/tests/crypto_test")
set_tests_properties(crypto_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;9;add_test;/root/repo/tests/CMakeLists.txt;13;confide_add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(serialize_test "/root/repo/build/tests/serialize_test")
set_tests_properties(serialize_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;9;add_test;/root/repo/tests/CMakeLists.txt;14;confide_add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(tee_test "/root/repo/build/tests/tee_test")
set_tests_properties(tee_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;9;add_test;/root/repo/tests/CMakeLists.txt;15;confide_add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(storage_test "/root/repo/build/tests/storage_test")
set_tests_properties(storage_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;9;add_test;/root/repo/tests/CMakeLists.txt;16;confide_add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(cvm_test "/root/repo/build/tests/cvm_test")
set_tests_properties(cvm_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;9;add_test;/root/repo/tests/CMakeLists.txt;17;confide_add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(evm_test "/root/repo/build/tests/evm_test")
set_tests_properties(evm_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;9;add_test;/root/repo/tests/CMakeLists.txt;18;confide_add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(lang_test "/root/repo/build/tests/lang_test")
set_tests_properties(lang_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;9;add_test;/root/repo/tests/CMakeLists.txt;19;confide_add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(ccle_test "/root/repo/build/tests/ccle_test")
set_tests_properties(ccle_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;9;add_test;/root/repo/tests/CMakeLists.txt;20;confide_add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(chain_test "/root/repo/build/tests/chain_test")
set_tests_properties(chain_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;9;add_test;/root/repo/tests/CMakeLists.txt;21;confide_add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(confide_test "/root/repo/build/tests/confide_test")
set_tests_properties(confide_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;9;add_test;/root/repo/tests/CMakeLists.txt;22;confide_add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(workloads_test "/root/repo/build/tests/workloads_test")
set_tests_properties(workloads_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;9;add_test;/root/repo/tests/CMakeLists.txt;23;confide_add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(security_test "/root/repo/build/tests/security_test")
set_tests_properties(security_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;9;add_test;/root/repo/tests/CMakeLists.txt;24;confide_add_test;/root/repo/tests/CMakeLists.txt;0;")
