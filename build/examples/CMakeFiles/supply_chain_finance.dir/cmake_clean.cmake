file(REMOVE_RECURSE
  "CMakeFiles/supply_chain_finance.dir/supply_chain_finance.cpp.o"
  "CMakeFiles/supply_chain_finance.dir/supply_chain_finance.cpp.o.d"
  "supply_chain_finance"
  "supply_chain_finance.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/supply_chain_finance.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
