# Empty dependencies file for supply_chain_finance.
# This may be replaced when dependencies are built.
