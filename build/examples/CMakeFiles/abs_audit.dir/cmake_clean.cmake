file(REMOVE_RECURSE
  "CMakeFiles/abs_audit.dir/abs_audit.cpp.o"
  "CMakeFiles/abs_audit.dir/abs_audit.cpp.o.d"
  "abs_audit"
  "abs_audit.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/abs_audit.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
