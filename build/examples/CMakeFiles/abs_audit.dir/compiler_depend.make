# Empty compiler generated dependencies file for abs_audit.
# This may be replaced when dependencies are built.
